//! Lexical analysis.

use crate::error::CompileError;

/// A lexical token with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: Tok,
    /// 1-based source line.
    pub line: u32,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Integer literal (decimal, hex `0x…`, or character `'c'`).
    Int(i32),
    /// String literal, with escapes already resolved.
    Str(Vec<u8>),
    /// Identifier or keyword-candidate word.
    Ident(String),
    /// Keyword.
    Kw(Kw),
    /// Punctuation / operator.
    Punct(&'static str),
    /// End of input.
    Eof,
}

/// Keywords of the dialect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kw {
    Int,
    Char,
    Void,
    Struct,
    Static,
    If,
    Else,
    While,
    For,
    Return,
    Break,
    Continue,
    Sizeof,
}

fn keyword(s: &str) -> Option<Kw> {
    Some(match s {
        "int" => Kw::Int,
        "char" => Kw::Char,
        "void" => Kw::Void,
        "struct" => Kw::Struct,
        "static" => Kw::Static,
        "if" => Kw::If,
        "else" => Kw::Else,
        "while" => Kw::While,
        "for" => Kw::For,
        "return" => Kw::Return,
        "break" => Kw::Break,
        "continue" => Kw::Continue,
        "sizeof" => Kw::Sizeof,
        _ => return None,
    })
}

/// Multi-character punctuation, longest first.
const PUNCT2: &[&str] = &["<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "->"];
const PUNCT1: &[&str] = &[
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "~", "&", "|", "^", "(", ")", "{", "}", "[", "]",
    ";", ",", ".", "?", ":",
];

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Lexer<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn skip_trivia(&mut self) -> Result<(), CompileError> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.line;
                    self.bump();
                    self.bump();
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some(b'*'), Some(b'/')) => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => {
                                return Err(CompileError::new(start, "unterminated comment"))
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn escape(&mut self) -> Result<u8, CompileError> {
        let c = self
            .bump()
            .ok_or_else(|| CompileError::new(self.line, "unterminated escape"))?;
        Ok(match c {
            b'n' => b'\n',
            b't' => b'\t',
            b'r' => b'\r',
            b'0' => 0,
            b'\\' => b'\\',
            b'\'' => b'\'',
            b'"' => b'"',
            other => {
                return Err(CompileError::new(
                    self.line,
                    format!("unknown escape '\\{}'", other as char),
                ))
            }
        })
    }
}

/// Tokenizes `source`. The result always ends with [`Tok::Eof`].
///
/// # Errors
///
/// Reports unterminated comments/strings/chars, malformed numbers, and
/// unknown characters, each with its line.
pub fn lex(source: &str) -> Result<Vec<Token>, CompileError> {
    let mut lx = Lexer {
        src: source.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut out = Vec::new();
    loop {
        lx.skip_trivia()?;
        let line = lx.line;
        let Some(c) = lx.peek() else {
            out.push(Token {
                kind: Tok::Eof,
                line,
            });
            return Ok(out);
        };
        let kind = if c.is_ascii_digit() {
            let start = lx.pos;
            let hex = c == b'0' && matches!(lx.peek2(), Some(b'x') | Some(b'X'));
            if hex {
                lx.bump();
                lx.bump();
                let hstart = lx.pos;
                while lx.peek().is_some_and(|c| c.is_ascii_hexdigit()) {
                    lx.bump();
                }
                let text = std::str::from_utf8(&lx.src[hstart..lx.pos]).unwrap();
                let v = u32::from_str_radix(text, 16)
                    .map_err(|_| CompileError::new(line, "bad hex literal"))?;
                Tok::Int(v as i32)
            } else {
                while lx.peek().is_some_and(|c| c.is_ascii_digit()) {
                    lx.bump();
                }
                let text = std::str::from_utf8(&lx.src[start..lx.pos]).unwrap();
                let v: i64 = text
                    .parse()
                    .map_err(|_| CompileError::new(line, "bad number"))?;
                if v > i32::MAX as i64 {
                    return Err(CompileError::new(line, "integer literal out of range"));
                }
                Tok::Int(v as i32)
            }
        } else if c == b'_' || c.is_ascii_alphabetic() {
            let start = lx.pos;
            while lx
                .peek()
                .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric())
            {
                lx.bump();
            }
            let text = std::str::from_utf8(&lx.src[start..lx.pos]).unwrap();
            match keyword(text) {
                Some(kw) => Tok::Kw(kw),
                None => Tok::Ident(text.to_string()),
            }
        } else if c == b'\'' {
            lx.bump();
            let ch = match lx.bump() {
                Some(b'\\') => lx.escape()?,
                Some(b'\'') => return Err(CompileError::new(line, "empty char literal")),
                Some(c) => c,
                None => return Err(CompileError::new(line, "unterminated char literal")),
            };
            if lx.bump() != Some(b'\'') {
                return Err(CompileError::new(line, "unterminated char literal"));
            }
            Tok::Int(ch as i8 as i32)
        } else if c == b'"' {
            lx.bump();
            let mut bytes = Vec::new();
            loop {
                match lx.bump() {
                    Some(b'"') => break,
                    Some(b'\\') => bytes.push(lx.escape()?),
                    Some(b'\n') | None => {
                        return Err(CompileError::new(line, "unterminated string literal"))
                    }
                    Some(c) => bytes.push(c),
                }
            }
            Tok::Str(bytes)
        } else {
            let rest = &source[lx.pos..];
            if let Some(p) = PUNCT2.iter().find(|p| rest.starts_with(**p)) {
                lx.bump();
                lx.bump();
                Tok::Punct(p)
            } else if let Some(p) = PUNCT1.iter().find(|p| rest.starts_with(**p)) {
                lx.bump();
                Tok::Punct(p)
            } else {
                return Err(CompileError::new(
                    line,
                    format!("unexpected character '{}'", c as char),
                ));
            }
        };
        out.push(Token { kind, line });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn numbers_and_idents() {
        assert_eq!(
            kinds("foo 123 0x1f bar_2"),
            vec![
                Tok::Ident("foo".into()),
                Tok::Int(123),
                Tok::Int(31),
                Tok::Ident("bar_2".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn keywords_recognized() {
        assert_eq!(
            kinds("int char struct static sizeof"),
            vec![
                Tok::Kw(Kw::Int),
                Tok::Kw(Kw::Char),
                Tok::Kw(Kw::Struct),
                Tok::Kw(Kw::Static),
                Tok::Kw(Kw::Sizeof),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn two_char_punct_wins() {
        assert_eq!(
            kinds("a <= b << c -> d"),
            vec![
                Tok::Ident("a".into()),
                Tok::Punct("<="),
                Tok::Ident("b".into()),
                Tok::Punct("<<"),
                Tok::Ident("c".into()),
                Tok::Punct("->"),
                Tok::Ident("d".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn char_and_string_literals() {
        assert_eq!(kinds("'A'"), vec![Tok::Int(65), Tok::Eof]);
        assert_eq!(kinds(r"'\n'"), vec![Tok::Int(10), Tok::Eof]);
        assert_eq!(
            kinds(r#""hi\n""#),
            vec![Tok::Str(vec![b'h', b'i', b'\n']), Tok::Eof]
        );
    }

    #[test]
    fn comments_skipped_and_lines_counted() {
        let toks = lex("a // one\n/* two\nthree */ b").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].kind, Tok::Ident("b".into()));
        assert_eq!(toks[1].line, 3);
    }

    #[test]
    fn errors_reported() {
        assert!(lex("\"unterminated").is_err());
        assert!(lex("'a").is_err());
        assert!(lex("''").is_err());
        assert!(lex("/* open").is_err());
        assert!(lex("@").is_err());
        assert!(lex("9999999999").is_err());
        assert!(lex(r"'\q'").is_err());
    }

    #[test]
    fn negative_char_semantics() {
        // Chars are signed, like the target's lb.
        assert_eq!(kinds(r"'\0'"), vec![Tok::Int(0), Tok::Eof]);
        assert_eq!(kinds("'\u{7f}'"), vec![Tok::Int(127), Tok::Eof]);
    }
}
