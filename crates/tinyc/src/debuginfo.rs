//! Debug information emitted alongside generated code.
//!
//! This is the compiler's half of the paper's instrumentation contract:
//! the tracer needs frame layouts and global placements to turn function
//! boundaries into monitor install/remove events, and the session
//! enumerator needs the symbol inventory to generate every
//! `OneLocalAuto` / `AllLocalInFunc` / `OneGlobalStatic` candidate.

use databp_trace::{FrameMap, FrameVar, GlobalSpec};

/// Address-region bit: the store target may be in the stack segment.
pub const REGION_STACK: u8 = 1;
/// Address-region bit: the store target may be in the data segment
/// (file-scope globals, function statics, string literals).
pub const REGION_GLOBAL: u8 = 2;
/// Address-region bit: the store target may be in the heap segment.
pub const REGION_HEAP: u8 = 4;
/// All regions — the top of the write-safety lattice ("could be
/// anywhere").
pub const REGION_ALL: u8 = REGION_STACK | REGION_GLOBAL | REGION_HEAP;
/// No regions — the address is not derived from any tracked object base
/// (constants, comparison results). Distinct from [`REGION_ALL`]: a
/// forged address proves nothing, so such sites are never elided either.
pub const REGION_NONE: u8 = 0;

/// A syntactic summary of one store's address expression, emitted by the
/// code generator. This is the compiler's half of the static write-safety
/// pass: it records *where the address came from* without judging it; the
/// `databp-analysis` crate resolves the dependencies against its
/// points-to masks to classify the site.
///
/// The summary of an address expression is the (term-wise) union over its
/// `+`/`-` terms: direct bases contribute region bits, loads of named
/// scalars contribute dependencies, and anything untrackable sets
/// [`AddrDesc::opaque`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AddrDesc {
    /// Regions the address is *directly* derived from: `&local` sets
    /// [`REGION_STACK`], `&global` sets [`REGION_GLOBAL`], a direct
    /// `malloc`/`realloc` result sets [`REGION_HEAP`].
    pub direct: u8,
    /// Locals of the owning function whose loaded value feeds the
    /// address (`*p`, `p[i]` contribute `p` — and `i`, whose mask is
    /// empty for plain integers).
    pub local_deps: Vec<u16>,
    /// Globals whose loaded value feeds the address.
    pub global_deps: Vec<u32>,
    /// Functions whose return value feeds the address.
    pub call_deps: Vec<u16>,
    /// True when some contribution cannot be tracked (a load through a
    /// computed address, a builtin with no meaningful value). Opaque
    /// sites classify as "may hit" under every plan.
    pub opaque: bool,
}

impl AddrDesc {
    /// The descriptor of a direct store to a frame slot (parameter
    /// spills, named-local assignments).
    pub fn stack_slot() -> AddrDesc {
        AddrDesc {
            direct: REGION_STACK,
            ..AddrDesc::default()
        }
    }
}

/// One traced store instruction, in emission (= pc-ascending) order.
/// Plain, CodePatch, and nop-padded builds of the same program emit the
/// same sites in the same order (only the pcs differ), which is what lets
/// the harness map plain-build trace pcs to CodePatch-build check pcs by
/// index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreSiteInfo {
    /// Byte pc of the store instruction itself.
    pub pc: u32,
    /// Byte pc of the preceding `chk` (CodePatch builds only).
    pub chk_pc: Option<u32>,
    /// Owning function id (resolves [`AddrDesc::local_deps`]).
    pub func: u16,
    /// Store width in bytes (1 for `sb`, 4 for `sw`) — the mask applied
    /// to the written value, which predicate deadness must mirror.
    pub len: u32,
    /// Where the store's effective address comes from.
    pub addr: AddrDesc,
}

/// One local automatic variable (parameters included).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalInfo {
    /// Source name.
    pub name: String,
    /// Variable index within the function (stable across runs).
    pub var: u16,
    /// Frame-pointer-relative byte offset of the variable base.
    pub offset: i32,
    /// Size in bytes.
    pub size: u32,
    /// True for parameters.
    pub is_param: bool,
}

/// One function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncInfo {
    /// Source name.
    pub name: String,
    /// Entry address (byte pc).
    pub entry_pc: u32,
    /// Number of parameters.
    pub params: u16,
    /// Local automatic variables, parameters first.
    pub locals: Vec<LocalInfo>,
}

/// One global, function-static, or string literal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalInfo {
    /// Source name (statics are `func::name`, literals `@strN`).
    pub name: String,
    /// Global id (index).
    pub id: u32,
    /// Beginning address.
    pub ba: u32,
    /// Ending address (exclusive).
    pub ea: u32,
    /// Owning function for `static` locals.
    pub owner: Option<u16>,
    /// True for string-literal storage.
    pub is_literal: bool,
}

/// The paper's Section 9 loop-invariant check optimization, as emitted:
/// one record per (loop, store target).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopOptInfo {
    /// Byte pc of the preliminary check in the loop preheader.
    pub preheader_pc: u32,
    /// Byte pcs of the body checks covered by the preliminary check.
    pub body_pcs: Vec<u32>,
}

/// Everything the tracer, session enumerator, and WMS strategies need to
/// know about a compiled program.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DebugInfo {
    /// Functions; index is the function id.
    pub functions: Vec<FuncInfo>,
    /// Globals; index is the global id.
    pub globals: Vec<GlobalInfo>,
    /// Byte pcs of *implicit* stores (prologue saves, temporary spills)
    /// that must not appear in the trace and are not patched/checked by
    /// the WMS strategies, matching the paper's exclusion of register
    /// spilling. Sorted ascending.
    pub untraced_store_pcs: Vec<u32>,
    /// Byte pcs of `nop` pads preceding traced stores (only when
    /// compiled with `nop_padding`); a dynamic code patcher overwrites
    /// these with checks at run time.
    pub pad_pcs: Vec<u32>,
    /// Loop-invariant check groups (only when compiled with
    /// `loopopt`).
    pub loopopts: Vec<LoopOptInfo>,
    /// SSA-planned dominator-hoisted check groups (only when compiled
    /// with `ssa_hoist`): one preheader `chk` dominating — and licensing
    /// the run-time skip of — each listed body check. Unlike `loopopts`
    /// these cover stores through loop-invariant promotable pointers,
    /// not just named scalars.
    pub hoists: Vec<LoopOptInfo>,
    /// Data segment size in bytes.
    pub data_size: u32,
    /// Static count of traced write instructions (the paper's CodePatch
    /// space-expansion numerator).
    pub traced_store_count: u32,
    /// Every traced store site in emission order (pc ascending), with the
    /// code generator's address summary — the input to the static
    /// write-safety pass in `databp-analysis`.
    pub store_sites: Vec<StoreSiteInfo>,
}

impl DebugInfo {
    /// True if the store at byte address `pc` is an implicit (untraced)
    /// store.
    pub fn is_untraced_store(&self, pc: u32) -> bool {
        self.untraced_store_pcs.binary_search(&pc).is_ok()
    }

    /// Builds the tracer's [`FrameMap`] view.
    pub fn frame_map(&self) -> FrameMap {
        FrameMap {
            funcs: self
                .functions
                .iter()
                .map(|f| {
                    f.locals
                        .iter()
                        .map(|l| FrameVar {
                            var: l.var,
                            offset: l.offset,
                            size: l.size,
                        })
                        .collect()
                })
                .collect(),
        }
    }

    /// Builds the tracer's [`GlobalSpec`] table. String literals are
    /// excluded: they are read-only and never monitor-session candidates.
    pub fn global_specs(&self) -> Vec<GlobalSpec> {
        self.globals
            .iter()
            .filter(|g| !g.is_literal)
            .map(|g| GlobalSpec {
                id: g.id,
                ba: g.ba,
                ea: g.ea,
            })
            .collect()
    }

    /// Looks up a function id by name (example/test convenience).
    pub fn func_id(&self, name: &str) -> Option<u16> {
        self.functions
            .iter()
            .position(|f| f.name == name)
            .map(|i| i as u16)
    }

    /// Looks up a non-literal global by name.
    pub fn global(&self, name: &str) -> Option<&GlobalInfo> {
        self.globals
            .iter()
            .find(|g| g.name == name && !g.is_literal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DebugInfo {
        DebugInfo {
            functions: vec![FuncInfo {
                name: "main".into(),
                entry_pc: 0x10000,
                params: 0,
                locals: vec![LocalInfo {
                    name: "x".into(),
                    var: 0,
                    offset: -12,
                    size: 4,
                    is_param: false,
                }],
            }],
            globals: vec![
                GlobalInfo {
                    name: "g".into(),
                    id: 0,
                    ba: 0x100000,
                    ea: 0x100004,
                    owner: None,
                    is_literal: false,
                },
                GlobalInfo {
                    name: "@str0".into(),
                    id: 1,
                    ba: 0x100004,
                    ea: 0x100007,
                    owner: None,
                    is_literal: true,
                },
            ],
            untraced_store_pcs: vec![0x10004, 0x10008],
            pad_pcs: vec![],
            loopopts: vec![],
            hoists: vec![],
            data_size: 8,
            traced_store_count: 3,
            store_sites: vec![],
        }
    }

    #[test]
    fn untraced_lookup() {
        let d = sample();
        assert!(d.is_untraced_store(0x10004));
        assert!(!d.is_untraced_store(0x1000c));
    }

    #[test]
    fn frame_map_mirrors_locals() {
        let fm = sample().frame_map();
        assert_eq!(fm.vars(0).len(), 1);
        assert_eq!(fm.vars(0)[0].offset, -12);
        assert!(fm.vars(9).is_empty());
    }

    #[test]
    fn global_specs_exclude_literals() {
        let gs = sample().global_specs();
        assert_eq!(gs.len(), 1);
        assert_eq!(gs[0].id, 0);
    }

    #[test]
    fn name_lookups() {
        let d = sample();
        assert_eq!(d.func_id("main"), Some(0));
        assert_eq!(d.func_id("nope"), None);
        assert!(d.global("g").is_some());
        assert!(d.global("@str0").is_none());
    }
}
