//! SSA middle end: the flow-sensitive half of the static write-safety
//! story.
//!
//! The syntactic [`AddrDesc`] fold in codegen is flow-*insensitive*: a
//! pointer assigned `&x` then `&g` summarizes every store through it as
//! "stack or global". This module lowers HIR into SSA form — CFG,
//! dominator tree, dominance frontiers, mem2reg for address-never-taken
//! scalars, constant propagation, and reachability-based DCE — and
//! re-derives each store site's [`AddrDesc`] from the *reaching
//! definition* of its address, so the write-safety fixpoint in
//! `databp-analysis` classifies far more sites as provably stack- or
//! global-only.
//!
//! Three outputs feed downstream consumers:
//!
//! * [`analyze`] — per-site [`SiteFact`]s (refined descriptor + dead
//!   flag), per-function escape/promotion sets, and the value-flow
//!   [`FlowEdge`]s the region fixpoint needs (call arguments, returns,
//!   stores to in-memory named variables).
//! * [`hoist_plans`] — dominator-based check-hoisting plans per loop:
//!   one preheader guard whose verdict licenses eliding the
//!   per-iteration checks it dominates (the bounds-check-elimination
//!   shape from Section 9 of the paper, extended to loop-invariant
//!   pointer targets).
//! * [`dump`] — a deterministic text rendering of the whole pipeline
//!   for `repro tinyc --dump-ssa`.
//!
//! Soundness invariants (relied on by `CodePatch::with_staticopt` and
//! replay-verified by `sim::verify_elided_stores`):
//!
//! * The per-function store-site enumeration mirrors codegen's emission
//!   order exactly (parameter spills first; assignments evaluate value,
//!   then address, then store; `if` walks cond/then/else; loops walk
//!   init/cond/body/step; `&&`/`||` walk left then right), so
//!   `SsaInfo::flat_sites` is index-aligned with
//!   `DebugInfo::store_sites`.
//! * A local is *promotable* (its loads resolve to SSA values) only if
//!   its address never escapes under exactly the rules of the analysis
//!   solver's benign-position walk, and its type is a word scalar.
//! * Constant folding is value-exact (wrapping arithmetic, signed
//!   compares); division, remainder, and shifts are never folded.
//! * A hoisted pointer target requires the pointer to be promotable
//!   (no aliased writes possible) and never reassigned anywhere in the
//!   loop, so its value — and the guarded address — is loop-invariant.

use std::mem;

use databp_machine::DATA_BASE;

use crate::debuginfo::{AddrDesc, REGION_GLOBAL, REGION_HEAP, REGION_STACK};
use crate::hir::{BinOp, Builtin, Expr, ExprKind, FuncDef, Hir, Stmt, UnOp};
use crate::types::Type;

// ---- public results ----

/// What SSA analysis concluded about one traced store site.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SiteFact {
    /// Refined address descriptor (reaching-definition based; at least
    /// as tight as the syntactic summary in `DebugInfo::store_sites`).
    pub desc: AddrDesc,
    /// The stored value, when constant propagation proves it a
    /// compile-time constant at this site (raw, unmasked — callers mask
    /// to the site's store width). Feeds predicate deadness: a monitor
    /// predicate that is provably false for this value never fires here.
    pub value_const: Option<i32>,
    /// True when the store is statically unreachable (dead branch or
    /// code after a terminator): its check can be elided under any
    /// plan.
    pub dead: bool,
}

/// Where a value-flow edge lands in the region fixpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowTarget {
    /// A named local slot `(fid, var)` — in-memory locals and callee
    /// parameters (call-argument edges).
    Local(u16, u16),
    /// A global slot.
    Global(u32),
    /// The return value of function `fid`.
    Ret(u16),
}

/// One value-flow edge: `desc` (evaluated in function `fid`) flows into
/// `target`. Replaces the flow-insensitive solver's own HIR walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowEdge {
    /// Function the source value was computed in (resolves local deps).
    pub fid: u16,
    /// Summary of the flowing value.
    pub desc: AddrDesc,
    /// Destination node.
    pub target: FlowTarget,
}

/// One preheader guard a loop's plan wants emitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HoistTarget {
    /// A direct store to local `var`: guard `fp + offset`.
    Local {
        /// Local index.
        var: u16,
        /// Access width in bytes.
        width: u32,
    },
    /// A direct store to global `gid`.
    Global {
        /// Global id.
        gid: u32,
        /// Access width in bytes.
        width: u32,
    },
    /// A store through loop-invariant pointer local `var` at constant
    /// byte offset `off` (`*p`, `p->f`, `p[2]` with promotable `p`
    /// never reassigned in the loop).
    PtrLocal {
        /// Pointer local index.
        var: u16,
        /// Constant byte offset added to the loaded pointer.
        off: i16,
        /// Access width in bytes.
        width: u32,
    },
}

impl HoistTarget {
    fn width_mut(&mut self) -> &mut u32 {
        match self {
            HoistTarget::Local { width, .. }
            | HoistTarget::Global { width, .. }
            | HoistTarget::PtrLocal { width, .. } => width,
        }
    }

    fn same_key(&self, o: &HoistTarget) -> bool {
        match (self, o) {
            (HoistTarget::Local { var: a, .. }, HoistTarget::Local { var: b, .. }) => a == b,
            (HoistTarget::Global { gid: a, .. }, HoistTarget::Global { gid: b, .. }) => a == b,
            (
                HoistTarget::PtrLocal { var: a, off: x, .. },
                HoistTarget::PtrLocal { var: b, off: y, .. },
            ) => a == b && x == y,
            _ => false,
        }
    }
}

/// The hoist plan for one loop (loops in per-function pre-order, the
/// same order codegen encounters them).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HoistPlan {
    /// Deduplicated guard targets (widest access width per target).
    pub targets: Vec<HoistTarget>,
}

/// Per-function SSA results.
#[derive(Debug, Clone)]
pub struct FuncSsa {
    /// One fact per traced store site, in emission order.
    pub sites: Vec<SiteFact>,
    /// Per-local: address escapes (the solver must saturate its node).
    pub taken: Vec<bool>,
    /// Per-local: promoted to SSA (word scalar, address never taken).
    pub promotable: Vec<bool>,
    /// Reachable basic blocks (stat).
    pub blocks: usize,
    /// Phi nodes placed (stat).
    pub phis: usize,
    /// Sites proven statically unreachable (stat).
    pub dead_sites: usize,
}

/// Whole-program SSA analysis results.
#[derive(Debug, Clone)]
pub struct SsaInfo {
    /// Per-function results; index is the function id.
    pub funcs: Vec<FuncSsa>,
    /// Value-flow edges from statically reachable code.
    pub edges: Vec<FlowEdge>,
    /// Per-global: address escapes into untracked positions.
    pub taken_globals: Vec<bool>,
}

impl SsaInfo {
    /// All site facts in `DebugInfo::store_sites` order (functions
    /// concatenated by id, sites in emission order within each).
    pub fn flat_sites(&self) -> impl Iterator<Item = &SiteFact> + '_ {
        self.funcs.iter().flat_map(|f| f.sites.iter())
    }
}

// ---- entry points ----

/// Runs the SSA pipeline over every function and returns per-site
/// facts plus the value-flow edges for the region fixpoint.
pub fn analyze(hir: &Hir) -> SsaInfo {
    let esc = escape(hir);
    let mut funcs = Vec::with_capacity(hir.funcs.len());
    let mut edges = Vec::new();
    for (fid, f) in hir.funcs.iter().enumerate() {
        let taken = esc.locals[fid].clone();
        let promotable = promotable_locals(f, &taken);
        let solved = solve_func(f, fid as u16, &promotable);
        let mut sites = Vec::with_capacity(solved.site_sum.len());
        let mut dead_sites = 0;
        for (idx, sum) in solved.site_sum.iter().enumerate() {
            let dead = !solved.live[solved.site_block[idx]];
            if dead {
                dead_sites += 1;
            }
            let desc = match sum {
                Some(s) => flatten(s, &solved.values),
                None => AddrDesc::default(),
            };
            sites.push(SiteFact {
                desc,
                value_const: solved.site_val[idx],
                dead,
            });
        }
        for (b, target, sum) in &solved.edges {
            if solved.live[*b] {
                edges.push(FlowEdge {
                    fid: fid as u16,
                    desc: flatten(sum, &solved.values),
                    target: *target,
                });
            }
        }
        funcs.push(FuncSsa {
            sites,
            taken,
            promotable,
            blocks: solved.reach.iter().filter(|&&r| r).count(),
            phis: solved.n_phis,
            dead_sites,
        });
    }
    SsaInfo {
        funcs,
        edges,
        taken_globals: esc.globals,
    }
}

/// Computes per-loop check-hoisting plans for every function, loops in
/// pre-order (the order codegen's `gen_loop` encounters them).
pub fn hoist_plans(hir: &Hir) -> Vec<Vec<HoistPlan>> {
    let esc = escape(hir);
    hir.funcs
        .iter()
        .enumerate()
        .map(|(fid, f)| {
            let promotable = promotable_locals(f, &esc.locals[fid]);
            let mut plans = Vec::new();
            plan_stmts(&f.body, &promotable, &mut plans);
            plans
        })
        .collect()
}

fn promotable_locals(f: &FuncDef, taken: &[bool]) -> Vec<bool> {
    f.locals
        .iter()
        .zip(taken)
        .map(|(l, &t)| !t && matches!(l.ty, Type::Int | Type::Ptr(_)))
        .collect()
}

// ---- escape pass ----
//
// Mirrors the benign-position rules of the analysis solver's walk: an
// `&x` is harmless only as the immediate child of a load (a plain
// read) or the address slot of a direct assignment (a plain write).
// Every other position — stored values, call arguments, arithmetic —
// escapes the object.

struct Escape {
    locals: Vec<Vec<bool>>,
    globals: Vec<bool>,
}

fn escape(hir: &Hir) -> Escape {
    let mut esc = Escape {
        locals: hir
            .funcs
            .iter()
            .map(|f| vec![false; f.locals.len()])
            .collect(),
        globals: vec![false; hir.globals.len()],
    };
    for (fid, f) in hir.funcs.iter().enumerate() {
        esc_stmts(&f.body, fid, &mut esc);
    }
    esc
}

fn esc_stmts(stmts: &[Stmt], fid: usize, esc: &mut Escape) {
    for s in stmts {
        match s {
            Stmt::Expr(e) => esc_expr(e, false, fid, esc),
            Stmt::If(c, t, el) => {
                esc_expr(c, false, fid, esc);
                esc_stmts(t, fid, esc);
                esc_stmts(el, fid, esc);
            }
            Stmt::While(c, b) => {
                esc_expr(c, false, fid, esc);
                esc_stmts(b, fid, esc);
            }
            Stmt::For(i, c, st, b) => {
                for e in [i, c, st].into_iter().flatten() {
                    esc_expr(e, false, fid, esc);
                }
                esc_stmts(b, fid, esc);
            }
            Stmt::Return(Some(e)) => esc_expr(e, false, fid, esc),
            Stmt::Return(None) | Stmt::Break | Stmt::Continue => {}
        }
    }
}

fn esc_expr(e: &Expr, benign: bool, fid: usize, esc: &mut Escape) {
    match &e.kind {
        ExprKind::Const(_) => {}
        ExprKind::AddrLocal(v) => {
            if !benign {
                esc.locals[fid][*v as usize] = true;
            }
        }
        ExprKind::AddrGlobal(g) => {
            if !benign {
                esc.globals[*g as usize] = true;
            }
        }
        ExprKind::Load(a) => esc_expr(a, true, fid, esc),
        ExprKind::Unary(_, a) | ExprKind::CastChar(a) => esc_expr(a, false, fid, esc),
        ExprKind::Binary(_, a, b) | ExprKind::LogAnd(a, b) | ExprKind::LogOr(a, b) => {
            esc_expr(a, false, fid, esc);
            esc_expr(b, false, fid, esc);
        }
        ExprKind::Assign { addr, value } => {
            esc_expr(addr, true, fid, esc);
            esc_expr(value, false, fid, esc);
        }
        ExprKind::Call(_, args) | ExprKind::Builtin(_, args) => {
            for a in args {
                esc_expr(a, false, fid, esc);
            }
        }
    }
}

// ---- hoist-plan discovery ----

fn plan_stmts(stmts: &[Stmt], promotable: &[bool], plans: &mut Vec<HoistPlan>) {
    for s in stmts {
        match s {
            Stmt::Expr(_) | Stmt::Return(_) | Stmt::Break | Stmt::Continue => {}
            Stmt::If(_, t, e) => {
                plan_stmts(t, promotable, plans);
                plan_stmts(e, promotable, plans);
            }
            Stmt::While(c, b) => plan_loop(Some(c), None, b, promotable, plans),
            Stmt::For(_, c, st, b) => plan_loop(c.as_ref(), st.as_ref(), b, promotable, plans),
        }
    }
}

fn plan_loop(
    cond: Option<&Expr>,
    step: Option<&Expr>,
    body: &[Stmt],
    promotable: &[bool],
    plans: &mut Vec<HoistPlan>,
) {
    let slot = plans.len();
    plans.push(HoistPlan::default());
    // A pointer target is loop-invariant only if the pointer is never
    // reassigned anywhere in the loop subtree — nested loops included,
    // a `for` init excluded (it runs once, before the preheader).
    let mut reassigned = vec![false; promotable.len()];
    if let Some(c) = cond {
        reassigned_expr(c, &mut reassigned);
    }
    reassigned_stmts(body, &mut reassigned);
    if let Some(s) = step {
        reassigned_expr(s, &mut reassigned);
    }
    let mut raw = Vec::new();
    if let Some(c) = cond {
        target_expr(c, promotable, &reassigned, &mut raw);
    }
    target_stmts(body, promotable, &reassigned, &mut raw);
    if let Some(s) = step {
        target_expr(s, promotable, &reassigned, &mut raw);
    }
    // Dedup by target identity keeping the widest access: a miss on the
    // wide range implies a miss on every narrower store it covers.
    let mut targets: Vec<HoistTarget> = Vec::new();
    for t in raw {
        if let Some(prev) = targets.iter_mut().find(|p| p.same_key(&t)) {
            let w = match &t {
                HoistTarget::Local { width, .. }
                | HoistTarget::Global { width, .. }
                | HoistTarget::PtrLocal { width, .. } => *width,
            };
            let pw = prev.width_mut();
            *pw = (*pw).max(w);
        } else {
            targets.push(t);
        }
    }
    plans[slot].targets = targets;
    // Nested loops get their own plans, after this one (pre-order).
    plan_stmts(body, promotable, plans);
}

fn reassigned_stmts(stmts: &[Stmt], out: &mut [bool]) {
    for s in stmts {
        match s {
            Stmt::Expr(e) => reassigned_expr(e, out),
            Stmt::If(c, t, el) => {
                reassigned_expr(c, out);
                reassigned_stmts(t, out);
                reassigned_stmts(el, out);
            }
            Stmt::While(c, b) => {
                reassigned_expr(c, out);
                reassigned_stmts(b, out);
            }
            Stmt::For(i, c, st, b) => {
                for e in [i, c, st].into_iter().flatten() {
                    reassigned_expr(e, out);
                }
                reassigned_stmts(b, out);
            }
            Stmt::Return(Some(e)) => reassigned_expr(e, out),
            Stmt::Return(None) | Stmt::Break | Stmt::Continue => {}
        }
    }
}

fn reassigned_expr(e: &Expr, out: &mut [bool]) {
    match &e.kind {
        ExprKind::Assign { addr, value } => {
            if let ExprKind::AddrLocal(v) = addr.kind {
                out[v as usize] = true;
            }
            reassigned_expr(addr, out);
            reassigned_expr(value, out);
        }
        ExprKind::Load(a) | ExprKind::Unary(_, a) | ExprKind::CastChar(a) => {
            reassigned_expr(a, out)
        }
        ExprKind::Binary(_, a, b) | ExprKind::LogAnd(a, b) | ExprKind::LogOr(a, b) => {
            reassigned_expr(a, out);
            reassigned_expr(b, out);
        }
        ExprKind::Call(_, args) | ExprKind::Builtin(_, args) => {
            for a in args {
                reassigned_expr(a, out);
            }
        }
        ExprKind::Const(_) | ExprKind::AddrLocal(_) | ExprKind::AddrGlobal(_) => {}
    }
}

fn target_stmts(
    stmts: &[Stmt],
    promotable: &[bool],
    reassigned: &[bool],
    out: &mut Vec<HoistTarget>,
) {
    for s in stmts {
        match s {
            Stmt::Expr(e) => target_expr(e, promotable, reassigned, out),
            Stmt::If(c, t, el) => {
                target_expr(c, promotable, reassigned, out);
                target_stmts(t, promotable, reassigned, out);
                target_stmts(el, promotable, reassigned, out);
            }
            // Nested loops hoist into their own preheaders.
            Stmt::While(..) | Stmt::For(..) => {}
            Stmt::Return(Some(e)) => target_expr(e, promotable, reassigned, out),
            Stmt::Return(None) | Stmt::Break | Stmt::Continue => {}
        }
    }
}

fn target_expr(e: &Expr, promotable: &[bool], reassigned: &[bool], out: &mut Vec<HoistTarget>) {
    match &e.kind {
        ExprKind::Assign { addr, value } => {
            let width = e.ty.access_width();
            match &addr.kind {
                ExprKind::AddrLocal(i) => out.push(HoistTarget::Local { var: *i, width }),
                ExprKind::AddrGlobal(g) => out.push(HoistTarget::Global { gid: *g, width }),
                _ => {
                    if let Some((var, off)) = ptr_target(addr, promotable, reassigned) {
                        out.push(HoistTarget::PtrLocal { var, off, width });
                    } else {
                        target_expr(addr, promotable, reassigned, out);
                    }
                }
            }
            target_expr(value, promotable, reassigned, out);
        }
        ExprKind::Load(a) | ExprKind::Unary(_, a) | ExprKind::CastChar(a) => {
            target_expr(a, promotable, reassigned, out)
        }
        ExprKind::Binary(_, a, b) | ExprKind::LogAnd(a, b) | ExprKind::LogOr(a, b) => {
            target_expr(a, promotable, reassigned, out);
            target_expr(b, promotable, reassigned, out);
        }
        ExprKind::Call(_, args) | ExprKind::Builtin(_, args) => {
            for a in args {
                target_expr(a, promotable, reassigned, out);
            }
        }
        ExprKind::Const(_) | ExprKind::AddrLocal(_) | ExprKind::AddrGlobal(_) => {}
    }
}

/// Matches the two indirect-store address shapes codegen compiles to a
/// `(pointer local, constant offset)` pair: `*p` and `*(p + C)` with a
/// promotable, never-reassigned `p`.
fn ptr_target(addr: &Expr, promotable: &[bool], reassigned: &[bool]) -> Option<(u16, i16)> {
    let ok = |p: u16| promotable[p as usize] && !reassigned[p as usize];
    match &addr.kind {
        ExprKind::Load(inner) => match inner.kind {
            ExprKind::AddrLocal(p) if ok(p) => Some((p, 0)),
            _ => None,
        },
        ExprKind::Binary(BinOp::Add, base, off) => {
            if let (ExprKind::Load(inner), ExprKind::Const(c)) = (&base.kind, &off.kind) {
                if let ExprKind::AddrLocal(p) = inner.kind {
                    if ok(p) {
                        if let Ok(c16) = i16::try_from(*c) {
                            return Some((p, c16));
                        }
                    }
                }
            }
            None
        }
        _ => None,
    }
}

// ---- lowering IR ----

type ValueId = usize;

/// Symbolic constant shape of a value, resolved against capture tokens
/// at rename time.
#[derive(Debug, Clone, Default)]
enum KExpr {
    #[default]
    Unknown,
    Const(i32),
    Cap(usize),
    Unary(UnOp, Box<KExpr>),
    Binary(BinOp, Box<KExpr>, Box<KExpr>),
    CastChar(Box<KExpr>),
}

/// Pre-rename value summary: region/dependency parts plus capture
/// tokens standing in for promoted-local loads.
#[derive(Debug, Clone, Default)]
struct Rhs {
    direct: u8,
    opaque: bool,
    locals: Vec<u16>,
    globals: Vec<u32>,
    calls: Vec<u16>,
    caps: Vec<usize>,
    k: KExpr,
}

impl Rhs {
    fn absorb(&mut self, o: Rhs) {
        self.direct |= o.direct;
        self.opaque |= o.opaque;
        self.locals.extend(o.locals);
        self.globals.extend(o.globals);
        self.calls.extend(o.calls);
        self.caps.extend(o.caps);
    }
}

/// Post-rename value summary: capture tokens became SSA value refs.
#[derive(Debug, Clone, Default)]
struct Sum {
    direct: u8,
    opaque: bool,
    locals: Vec<u16>,
    globals: Vec<u32>,
    calls: Vec<u16>,
    ssa: Vec<ValueId>,
}

#[derive(Debug, Clone)]
enum VKind {
    Leaf(Sum),
    Phi(Vec<Option<ValueId>>),
}

#[derive(Debug, Clone)]
struct Value {
    kind: VKind,
    konst: Option<i32>,
}

#[derive(Debug)]
enum Inst {
    /// Pin the reaching definition of promoted local `var` at this
    /// exact evaluation point under `token` (loads must not observe
    /// later same-block redefinitions).
    Capture { token: usize, var: u16 },
    /// SSA definition of promoted local `var`.
    Def { var: u16, rhs: Rhs },
    /// Traced store site `idx`'s address summary plus the stored
    /// value's fold skeleton (for compile-time-constant detection).
    Site { idx: usize, rhs: Rhs, val: KExpr },
    /// Value flow into a fixpoint node.
    Edge { target: FlowTarget, rhs: Rhs },
}

#[derive(Debug, Clone)]
enum Term {
    Jump(usize),
    Cond { k: KExpr, t: usize, e: usize },
    Ret,
}

#[derive(Debug, Default)]
struct Block {
    insts: Vec<Inst>,
    term: Option<Term>,
    /// Phi nodes `(var, value)` placed during SSA construction.
    phis: Vec<(u16, ValueId)>,
}

fn succs(b: &Block) -> Vec<usize> {
    match &b.term {
        Some(Term::Jump(t)) => vec![*t],
        Some(Term::Cond { t, e, .. }) => vec![*t, *e],
        Some(Term::Ret) | None => vec![],
    }
}

// ---- HIR → CFG builder (mirrors codegen's emission order) ----

struct FuncBuilder<'a> {
    fid: u16,
    promotable: &'a [bool],
    blocks: Vec<Block>,
    cur: usize,
    /// (break target, continue target) per enclosing loop.
    loops: Vec<(usize, usize)>,
    n_caps: usize,
    n_sites: usize,
    site_block: Vec<usize>,
}

impl<'a> FuncBuilder<'a> {
    fn build(f: &FuncDef, fid: u16, promotable: &'a [bool]) -> FuncBuilder<'a> {
        let mut b = FuncBuilder {
            fid,
            promotable,
            blocks: vec![Block::default()],
            cur: 0,
            loops: Vec::new(),
            n_caps: 0,
            n_sites: 0,
            site_block: Vec::new(),
        };
        // Parameter spills: one stack-slot site each, before any body
        // code (mirrors gen_func).
        for _ in 0..f.params {
            // Spilled argument values are call-site dependent: never a
            // site constant.
            b.emit_site(
                Rhs {
                    direct: REGION_STACK,
                    ..Rhs::default()
                },
                KExpr::Unknown,
            );
        }
        b.walk_stmts(&f.body);
        // Falling off the end is an implicit return.
        for blk in &mut b.blocks {
            if blk.term.is_none() {
                blk.term = Some(Term::Ret);
            }
        }
        b
    }

    fn new_block(&mut self) -> usize {
        self.blocks.push(Block::default());
        self.blocks.len() - 1
    }

    fn emit(&mut self, inst: Inst) {
        self.blocks[self.cur].insts.push(inst);
    }

    fn emit_site(&mut self, rhs: Rhs, val: KExpr) {
        let idx = self.n_sites;
        self.n_sites += 1;
        self.site_block.push(self.cur);
        self.emit(Inst::Site { idx, rhs, val });
    }

    fn terminate(&mut self, t: Term) {
        let blk = &mut self.blocks[self.cur];
        if blk.term.is_none() {
            blk.term = Some(t);
        }
    }

    fn walk_stmts(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            self.walk_stmt(s);
        }
    }

    fn walk_stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Expr(e) => {
                self.expr(e);
            }
            Stmt::If(c, t, e) => {
                let mut rc = self.expr(c);
                let k = mem::take(&mut rc.k);
                let bt = self.new_block();
                let bend = self.new_block();
                let be = if e.is_empty() { bend } else { self.new_block() };
                self.terminate(Term::Cond { k, t: bt, e: be });
                self.cur = bt;
                self.walk_stmts(t);
                self.terminate(Term::Jump(bend));
                if !e.is_empty() {
                    self.cur = be;
                    self.walk_stmts(e);
                    self.terminate(Term::Jump(bend));
                }
                self.cur = bend;
            }
            Stmt::While(c, b) => self.walk_loop(None, Some(c), None, b),
            Stmt::For(i, c, st, b) => self.walk_loop(i.as_ref(), c.as_ref(), st.as_ref(), b),
            Stmt::Return(e) => {
                if let Some(e) = e {
                    let r = self.expr(e);
                    let fid = self.fid;
                    self.emit(Inst::Edge {
                        target: FlowTarget::Ret(fid),
                        rhs: r,
                    });
                }
                self.terminate(Term::Ret);
                self.cur = self.new_block();
            }
            Stmt::Break => {
                if let Some(&(bend, _)) = self.loops.last() {
                    self.terminate(Term::Jump(bend));
                }
                self.cur = self.new_block();
            }
            Stmt::Continue => {
                if let Some(&(_, bstep)) = self.loops.last() {
                    self.terminate(Term::Jump(bstep));
                }
                self.cur = self.new_block();
            }
        }
    }

    fn walk_loop(
        &mut self,
        init: Option<&Expr>,
        cond: Option<&Expr>,
        step: Option<&Expr>,
        body: &[Stmt],
    ) {
        if let Some(i) = init {
            self.expr(i);
        }
        let bcond = self.new_block();
        let bbody = self.new_block();
        let bstep = self.new_block();
        let bend = self.new_block();
        self.terminate(Term::Jump(bcond));
        self.cur = bcond;
        match cond {
            Some(c) => {
                let mut rc = self.expr(c);
                let k = mem::take(&mut rc.k);
                self.terminate(Term::Cond {
                    k,
                    t: bbody,
                    e: bend,
                });
            }
            None => self.terminate(Term::Jump(bbody)),
        }
        self.cur = bbody;
        self.loops.push((bend, bstep));
        self.walk_stmts(body);
        self.loops.pop();
        self.terminate(Term::Jump(bstep));
        self.cur = bstep;
        if let Some(s) = step {
            self.expr(s);
        }
        self.terminate(Term::Jump(bcond));
        self.cur = bend;
    }

    fn expr(&mut self, e: &Expr) -> Rhs {
        match &e.kind {
            ExprKind::Const(v) => Rhs {
                // Value-mode folding: a constant in the data/heap
                // address range may be a forged object address.
                opaque: (*v as u32) >= DATA_BASE,
                k: KExpr::Const(*v),
                ..Rhs::default()
            },
            ExprKind::AddrLocal(_) => Rhs {
                direct: REGION_STACK,
                ..Rhs::default()
            },
            ExprKind::AddrGlobal(_) => Rhs {
                direct: REGION_GLOBAL,
                ..Rhs::default()
            },
            ExprKind::Load(inner) => match &inner.kind {
                ExprKind::AddrLocal(v) if self.promotable[*v as usize] => {
                    let token = self.n_caps;
                    self.n_caps += 1;
                    self.emit(Inst::Capture { token, var: *v });
                    Rhs {
                        caps: vec![token],
                        k: KExpr::Cap(token),
                        ..Rhs::default()
                    }
                }
                ExprKind::AddrLocal(v) => Rhs {
                    locals: vec![*v],
                    ..Rhs::default()
                },
                ExprKind::AddrGlobal(g) => Rhs {
                    globals: vec![*g],
                    ..Rhs::default()
                },
                _ => {
                    self.expr(inner);
                    Rhs {
                        opaque: true,
                        ..Rhs::default()
                    }
                }
            },
            ExprKind::Unary(op, a) => {
                let mut r = self.expr(a);
                r.k = KExpr::Unary(*op, Box::new(mem::take(&mut r.k)));
                r
            }
            ExprKind::CastChar(a) => {
                let mut r = self.expr(a);
                r.k = KExpr::CastChar(Box::new(mem::take(&mut r.k)));
                r
            }
            ExprKind::Binary(op, a, b) => {
                let mut ra = self.expr(a);
                let mut rb = self.expr(b);
                let k = KExpr::Binary(
                    *op,
                    Box::new(mem::take(&mut ra.k)),
                    Box::new(mem::take(&mut rb.k)),
                );
                match op {
                    // Comparison results carry no region.
                    BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge | BinOp::Eq | BinOp::Ne => Rhs {
                        k,
                        ..Rhs::default()
                    },
                    _ => {
                        ra.absorb(rb);
                        ra.k = k;
                        ra
                    }
                }
            }
            ExprKind::LogAnd(a, b) | ExprKind::LogOr(a, b) => {
                let is_and = matches!(&e.kind, ExprKind::LogAnd(..));
                let mut ra = self.expr(a);
                let ka = mem::take(&mut ra.k);
                let kc = keval(&ka, &|_| None);
                let bb = self.new_block();
                let bend = self.new_block();
                let (t, el) = if is_and { (bb, bend) } else { (bend, bb) };
                self.terminate(Term::Cond { k: ka, t, e: el });
                self.cur = bb;
                let rb = self.expr(b);
                let kb = keval(&rb.k, &|_| None);
                self.terminate(Term::Jump(bend));
                self.cur = bend;
                // Boolean result: no region, folded only when both
                // sides are pure constants.
                let k = match kc {
                    None => KExpr::Unknown,
                    Some(av) => {
                        let a_true = av != 0;
                        if is_and && !a_true {
                            KExpr::Const(0)
                        } else if !is_and && a_true {
                            KExpr::Const(1)
                        } else {
                            match kb {
                                Some(bv) => KExpr::Const((bv != 0) as i32),
                                None => KExpr::Unknown,
                            }
                        }
                    }
                };
                Rhs {
                    k,
                    ..Rhs::default()
                }
            }
            ExprKind::Assign { addr, value } => {
                let mut rv = self.expr(value);
                let ra = self.expr(addr);
                self.emit_site(ra, rv.k.clone());
                match &addr.kind {
                    ExprKind::AddrLocal(v) => {
                        if self.promotable[*v as usize] {
                            self.emit(Inst::Def {
                                var: *v,
                                rhs: rv.clone(),
                            });
                        } else {
                            let fid = self.fid;
                            self.emit(Inst::Edge {
                                target: FlowTarget::Local(fid, *v),
                                rhs: rv.clone(),
                            });
                        }
                    }
                    ExprKind::AddrGlobal(g) => self.emit(Inst::Edge {
                        target: FlowTarget::Global(*g),
                        rhs: rv.clone(),
                    }),
                    // Indirect stores write into escaped objects whose
                    // nodes are already saturated.
                    _ => {}
                }
                if e.ty == Type::Char {
                    // The stored slot truncates but the register value
                    // codegen forwards does not; don't fold through.
                    rv.k = KExpr::Unknown;
                }
                rv
            }
            ExprKind::Call(fid, args) => {
                for (k, a) in args.iter().enumerate() {
                    let r = self.expr(a);
                    self.emit(Inst::Edge {
                        target: FlowTarget::Local(*fid, k as u16),
                        rhs: r,
                    });
                }
                Rhs {
                    calls: vec![*fid],
                    ..Rhs::default()
                }
            }
            ExprKind::Builtin(b, args) => {
                for a in args {
                    self.expr(a);
                }
                match b {
                    Builtin::Malloc | Builtin::Realloc => Rhs {
                        direct: REGION_HEAP,
                        ..Rhs::default()
                    },
                    Builtin::Arg => Rhs::default(),
                    _ => Rhs {
                        opaque: true,
                        ..Rhs::default()
                    },
                }
            }
        }
    }
}

// ---- SSA construction and renaming ----

struct Solved {
    blocks: Vec<Block>,
    values: Vec<Value>,
    preds: Vec<Vec<usize>>,
    idom: Vec<usize>,
    reach: Vec<bool>,
    live: Vec<bool>,
    cond_val: Vec<Option<i32>>,
    site_sum: Vec<Option<Sum>>,
    site_val: Vec<Option<i32>>,
    site_block: Vec<usize>,
    edges: Vec<(usize, FlowTarget, Sum)>,
    n_phis: usize,
}

fn solve_func(f: &FuncDef, fid: u16, promotable: &[bool]) -> Solved {
    let fb = FuncBuilder::build(f, fid, promotable);
    let FuncBuilder {
        mut blocks,
        site_block,
        n_caps,
        n_sites,
        ..
    } = fb;
    let n = blocks.len();

    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (b, block) in blocks.iter().enumerate() {
        for s in succs(block) {
            preds[s].push(b);
        }
    }

    // Iterative postorder DFS from the entry; doubles as reachability.
    let mut state = vec![0u8; n];
    let mut post = Vec::with_capacity(n);
    let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
    state[0] = 1;
    while let Some(&(b, i)) = stack.last() {
        let ss = succs(&blocks[b]);
        if i < ss.len() {
            stack.last_mut().expect("nonempty").1 += 1;
            let s = ss[i];
            if state[s] == 0 {
                state[s] = 1;
                stack.push((s, 0));
            }
        } else {
            post.push(b);
            stack.pop();
        }
    }
    let reach: Vec<bool> = state.iter().map(|&s| s != 0).collect();
    let rpo: Vec<usize> = post.iter().rev().copied().collect();
    let mut rpo_pos = vec![usize::MAX; n];
    for (i, &b) in rpo.iter().enumerate() {
        rpo_pos[b] = i;
    }

    // Cooper-Harvey-Kennedy iterative dominators.
    let mut idom = vec![usize::MAX; n];
    idom[0] = 0;
    let intersect = |mut a: usize, mut b: usize, idom: &[usize]| {
        while a != b {
            while rpo_pos[a] > rpo_pos[b] {
                a = idom[a];
            }
            while rpo_pos[b] > rpo_pos[a] {
                b = idom[b];
            }
        }
        a
    };
    loop {
        let mut changed = false;
        for &b in rpo.iter().skip(1) {
            let mut new = usize::MAX;
            for &p in &preds[b] {
                if !reach[p] || idom[p] == usize::MAX {
                    continue;
                }
                new = if new == usize::MAX {
                    p
                } else {
                    intersect(new, p, &idom)
                };
            }
            if new != usize::MAX && idom[b] != new {
                idom[b] = new;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Dominance frontiers (join blocks only — all we need for phis).
    let mut df: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &b in &rpo {
        let rp: Vec<usize> = preds[b].iter().copied().filter(|&p| reach[p]).collect();
        if rp.len() < 2 {
            continue;
        }
        for &p in &rp {
            let mut r = p;
            while r != idom[b] {
                if !df[r].contains(&b) {
                    df[r].push(b);
                }
                r = idom[r];
            }
        }
    }

    // Phi placement: iterated dominance frontier of each promotable
    // var's definition blocks (the entry defines everything).
    let nvars = f.locals.len();
    let mut values: Vec<Value> = Vec::new();
    let mut def_blocks: Vec<Vec<usize>> = vec![Vec::new(); nvars];
    for (bi, blk) in blocks.iter().enumerate() {
        if !reach[bi] {
            continue;
        }
        for inst in &blk.insts {
            if let Inst::Def { var, .. } = inst {
                def_blocks[*var as usize].push(bi);
            }
        }
    }
    let mut n_phis = 0;
    for v in 0..nvars {
        if !promotable[v] {
            continue;
        }
        let mut work: Vec<usize> = def_blocks[v].clone();
        work.push(0);
        let mut has_phi = vec![false; n];
        let mut queued = vec![false; n];
        for &w in &work {
            queued[w] = true;
        }
        while let Some(d) = work.pop() {
            for &y in &df[d] {
                if has_phi[y] {
                    continue;
                }
                has_phi[y] = true;
                let vid = values.len();
                values.push(Value {
                    kind: VKind::Phi(vec![None; preds[y].len()]),
                    konst: None,
                });
                blocks[y].phis.push((v as u16, vid));
                n_phis += 1;
                if !queued[y] {
                    queued[y] = true;
                    work.push(y);
                }
            }
        }
    }

    // Dominator-tree children, id-ascending for determinism.
    let mut dom_children: Vec<Vec<usize>> = vec![Vec::new(); n];
    for b in 1..n {
        if reach[b] && idom[b] != usize::MAX {
            dom_children[idom[b]].push(b);
        }
    }

    // Rename: entry seeds every promotable var (params with their
    // fixpoint-node atom — the union of call-argument edges — other
    // locals with the empty summary, since an uninitialized value
    // proves nothing and must never license an elision).
    let mut stacks: Vec<Vec<ValueId>> = vec![Vec::new(); nvars];
    for (v, stack) in stacks.iter_mut().enumerate() {
        if !promotable[v] {
            continue;
        }
        let sum = if v < f.params as usize {
            Sum {
                locals: vec![v as u16],
                ..Sum::default()
            }
        } else {
            Sum::default()
        };
        let vid = values.len();
        values.push(Value {
            kind: VKind::Leaf(sum),
            konst: None,
        });
        stack.push(vid);
    }

    let mut site_sum: Vec<Option<Sum>> = vec![None; n_sites];
    let mut site_val: Vec<Option<i32>> = vec![None; n_sites];
    let mut edges: Vec<(usize, FlowTarget, Sum)> = Vec::new();
    let mut cond_val: Vec<Option<i32>> = vec![None; n];
    {
        let mut ren = Renamer {
            blocks: &blocks,
            preds: &preds,
            dom_children: &dom_children,
            values: &mut values,
            stacks,
            captures: vec![None; n_caps],
            site_sum: &mut site_sum,
            site_val: &mut site_val,
            edges: &mut edges,
            cond_val: &mut cond_val,
            push_log: Vec::new(),
        };
        ren.run();
    }

    // Constant-pruned reachability: a branch whose condition folded to
    // a constant contributes only the taken edge.
    let mut live = vec![false; n];
    let mut queue = vec![0usize];
    live[0] = true;
    while let Some(b) = queue.pop() {
        let nexts: Vec<usize> = match &blocks[b].term {
            Some(Term::Jump(t)) => vec![*t],
            Some(Term::Cond { t, e, .. }) => match cond_val[b] {
                Some(0) => vec![*e],
                Some(_) => vec![*t],
                None => vec![*t, *e],
            },
            Some(Term::Ret) | None => vec![],
        };
        for s in nexts {
            if !live[s] {
                live[s] = true;
                queue.push(s);
            }
        }
    }

    Solved {
        blocks,
        values,
        preds,
        idom,
        reach,
        live,
        cond_val,
        site_sum,
        site_val,
        site_block,
        edges,
        n_phis,
    }
}

struct Renamer<'a> {
    blocks: &'a [Block],
    preds: &'a [Vec<usize>],
    dom_children: &'a [Vec<usize>],
    values: &'a mut Vec<Value>,
    stacks: Vec<Vec<ValueId>>,
    captures: Vec<Option<ValueId>>,
    site_sum: &'a mut [Option<Sum>],
    site_val: &'a mut [Option<i32>],
    edges: &'a mut Vec<(usize, FlowTarget, Sum)>,
    cond_val: &'a mut [Option<i32>],
    push_log: Vec<u16>,
}

impl Renamer<'_> {
    fn run(&mut self) {
        let mut frames: Vec<(usize, usize, usize)> = Vec::new();
        let start = self.push_log.len();
        self.visit(0);
        frames.push((0, 0, start));
        while let Some(&(b, i, start)) = frames.last() {
            if i < self.dom_children[b].len() {
                frames.last_mut().expect("nonempty").1 += 1;
                let c = self.dom_children[b][i];
                let cs = self.push_log.len();
                self.visit(c);
                frames.push((c, 0, cs));
            } else {
                for v in self.push_log.split_off(start) {
                    self.stacks[v as usize].pop();
                }
                frames.pop();
            }
        }
    }

    fn visit(&mut self, b: usize) {
        let blocks = self.blocks;
        let preds = self.preds;
        for &(v, vid) in &blocks[b].phis {
            self.stacks[v as usize].push(vid);
            self.push_log.push(v);
        }
        for inst in &blocks[b].insts {
            match inst {
                Inst::Capture { token, var } => {
                    self.captures[*token] = self.stacks[*var as usize].last().copied();
                }
                Inst::Def { var, rhs } => {
                    let sum = self.resolve(rhs);
                    let konst = self.keval_caps(&rhs.k);
                    let vid = self.values.len();
                    self.values.push(Value {
                        kind: VKind::Leaf(sum),
                        konst,
                    });
                    self.stacks[*var as usize].push(vid);
                    self.push_log.push(*var);
                }
                Inst::Site { idx, rhs, val } => {
                    self.site_sum[*idx] = Some(self.resolve(rhs));
                    self.site_val[*idx] = self.keval_caps(val);
                }
                Inst::Edge { target, rhs } => {
                    let sum = self.resolve(rhs);
                    self.edges.push((b, *target, sum));
                }
            }
        }
        if let Some(Term::Cond { k, .. }) = &blocks[b].term {
            self.cond_val[b] = self.keval_caps(k);
        }
        // Fill successor phi operands from this block's current tops.
        for s in succs(&blocks[b]) {
            for (pi, &p) in preds[s].iter().enumerate() {
                if p != b {
                    continue;
                }
                for &(v, vid) in &blocks[s].phis {
                    let top = self.stacks[v as usize].last().copied();
                    if let VKind::Phi(ops) = &mut self.values[vid].kind {
                        ops[pi] = top;
                    }
                }
            }
        }
    }

    fn resolve(&mut self, rhs: &Rhs) -> Sum {
        let mut s = Sum {
            direct: rhs.direct,
            opaque: rhs.opaque,
            locals: rhs.locals.clone(),
            globals: rhs.globals.clone(),
            calls: rhs.calls.clone(),
            ssa: Vec::with_capacity(rhs.caps.len()),
        };
        for &t in &rhs.caps {
            match self.captures[t] {
                Some(v) => s.ssa.push(v),
                None => s.opaque = true,
            }
        }
        s
    }

    fn keval_caps(&self, k: &KExpr) -> Option<i32> {
        keval(k, &|t| self.captures[t].and_then(|v| self.values[v].konst))
    }
}

/// Value-exact constant folding. Division, remainder, and shifts are
/// never folded (their trap/masking semantics belong to the machine).
fn keval(k: &KExpr, res: &dyn Fn(usize) -> Option<i32>) -> Option<i32> {
    match k {
        KExpr::Unknown => None,
        KExpr::Const(v) => Some(*v),
        KExpr::Cap(t) => res(*t),
        KExpr::Unary(op, a) => {
            let v = keval(a, res)?;
            Some(match op {
                UnOp::Neg => v.wrapping_neg(),
                UnOp::Not => (v == 0) as i32,
                UnOp::BitNot => !v,
            })
        }
        KExpr::CastChar(a) => Some(keval(a, res)? as i8 as i32),
        KExpr::Binary(op, a, b) => {
            let x = keval(a, res)?;
            let y = keval(b, res)?;
            match op {
                BinOp::Add => Some(x.wrapping_add(y)),
                BinOp::Sub => Some(x.wrapping_sub(y)),
                BinOp::Mul => Some(x.wrapping_mul(y)),
                BinOp::BitAnd => Some(x & y),
                BinOp::BitOr => Some(x | y),
                BinOp::BitXor => Some(x ^ y),
                BinOp::Lt => Some((x < y) as i32),
                BinOp::Le => Some((x <= y) as i32),
                BinOp::Gt => Some((x > y) as i32),
                BinOp::Ge => Some((x >= y) as i32),
                BinOp::Eq => Some((x == y) as i32),
                BinOp::Ne => Some((x != y) as i32),
                BinOp::Div | BinOp::Rem | BinOp::Shl | BinOp::Shr => None,
                BinOp::LogAnd | BinOp::LogOr => None,
            }
        }
    }
}

/// Collapses a renamed summary into an [`AddrDesc`] by walking the SSA
/// value graph (phi operands union; cycles terminate via the visited
/// set). Dependency lists are sorted for determinism.
fn flatten(sum: &Sum, values: &[Value]) -> AddrDesc {
    let mut d = AddrDesc {
        direct: sum.direct,
        opaque: sum.opaque,
        local_deps: sum.locals.clone(),
        global_deps: sum.globals.clone(),
        call_deps: sum.calls.clone(),
    };
    let mut seen = vec![false; values.len()];
    let mut stack: Vec<ValueId> = sum.ssa.clone();
    while let Some(v) = stack.pop() {
        if seen[v] {
            continue;
        }
        seen[v] = true;
        match &values[v].kind {
            VKind::Leaf(s) => {
                d.direct |= s.direct;
                d.opaque |= s.opaque;
                d.local_deps.extend_from_slice(&s.locals);
                d.global_deps.extend_from_slice(&s.globals);
                d.call_deps.extend_from_slice(&s.calls);
                stack.extend_from_slice(&s.ssa);
            }
            VKind::Phi(ops) => stack.extend(ops.iter().flatten().copied()),
        }
    }
    d.local_deps.sort_unstable();
    d.local_deps.dedup();
    d.global_deps.sort_unstable();
    d.global_deps.dedup();
    d.call_deps.sort_unstable();
    d.call_deps.dedup();
    d
}

// ---- debug dump ----

/// Renders the whole SSA pipeline for `repro tinyc --dump-ssa`:
/// per-function promotion decisions, the renamed CFG, per-site facts,
/// and hoist plans. Deterministic across runs.
pub fn dump(hir: &Hir) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let esc = escape(hir);
    let all_plans = hoist_plans(hir);
    for (fid, f) in hir.funcs.iter().enumerate() {
        let taken = &esc.locals[fid];
        let promotable = promotable_locals(f, taken);
        let _ = writeln!(out, "fn {} (#{fid})", f.name);
        for (i, l) in f.locals.iter().enumerate() {
            let _ = writeln!(
                out,
                "  local v{i} {:<12} {}{}{}",
                l.name,
                if l.is_param { "param " } else { "" },
                if taken[i] { "addr-taken " } else { "" },
                if promotable[i] {
                    "promoted"
                } else {
                    "in-memory"
                }
            );
        }
        let solved = solve_func(f, fid as u16, &promotable);
        for b in 0..solved.blocks.len() {
            if !solved.reach[b] {
                continue;
            }
            let _ = writeln!(
                out,
                "  b{b}: preds={:?} idom=b{}{}",
                solved.preds[b],
                solved.idom[b],
                if solved.live[b] {
                    ""
                } else {
                    "  [const-unreachable]"
                }
            );
            for &(v, vid) in &solved.blocks[b].phis {
                if let VKind::Phi(ops) = &solved.values[vid].kind {
                    let ops: Vec<String> = ops
                        .iter()
                        .map(|o| match o {
                            Some(x) => format!("%{x}"),
                            None => "-".into(),
                        })
                        .collect();
                    let _ = writeln!(out, "    phi v{v} = %{vid} [{}]", ops.join(", "));
                }
            }
            for inst in &solved.blocks[b].insts {
                match inst {
                    Inst::Capture { token, var } => {
                        let _ = writeln!(out, "    cap c{token} = v{var}");
                    }
                    Inst::Def { var, rhs } => {
                        let _ = writeln!(out, "    def v{var} = {}", fmt_rhs(rhs));
                    }
                    Inst::Site { idx, rhs, .. } => {
                        let _ = writeln!(out, "    site {idx} addr {}", fmt_rhs(rhs));
                    }
                    Inst::Edge { target, rhs } => {
                        let _ = writeln!(out, "    edge {target:?} <- {}", fmt_rhs(rhs));
                    }
                }
            }
            match &solved.blocks[b].term {
                Some(Term::Jump(t)) => {
                    let _ = writeln!(out, "    jump b{t}");
                }
                Some(Term::Cond { t, e, .. }) => {
                    let folded = match solved.cond_val[b] {
                        Some(v) => format!("  [konst={v}]"),
                        None => String::new(),
                    };
                    let _ = writeln!(out, "    cond -> b{t} / b{e}{folded}");
                }
                Some(Term::Ret) | None => {
                    let _ = writeln!(out, "    ret");
                }
            }
        }
        for (i, sum) in solved.site_sum.iter().enumerate() {
            let dead = !solved.live[solved.site_block[i]];
            let desc = match sum {
                Some(s) => flatten(s, &solved.values),
                None => AddrDesc::default(),
            };
            let _ = writeln!(
                out,
                "  site {i:3}: {} {}",
                fmt_desc(&desc),
                if dead { "dead" } else { "live" }
            );
        }
        for (li, plan) in all_plans[fid].iter().enumerate() {
            let ts: Vec<String> = plan
                .targets
                .iter()
                .map(|t| match t {
                    HoistTarget::Local { var, width } => format!("local v{var} w{width}"),
                    HoistTarget::Global { gid, width } => format!("global g{gid} w{width}"),
                    HoistTarget::PtrLocal { var, off, width } => {
                        format!("*(v{var}+{off}) w{width}")
                    }
                })
                .collect();
            let _ = writeln!(out, "  loop {li}: hoist [{}]", ts.join(", "));
        }
    }
    out
}

fn fmt_mask(direct: u8) -> String {
    let mut s = String::new();
    if direct & REGION_STACK != 0 {
        s.push('S');
    }
    if direct & REGION_GLOBAL != 0 {
        s.push('G');
    }
    if direct & REGION_HEAP != 0 {
        s.push('H');
    }
    if s.is_empty() {
        s.push('-');
    }
    s
}

fn fmt_desc(d: &AddrDesc) -> String {
    let mut s = format!("[{}", fmt_mask(d.direct));
    if d.opaque {
        s.push_str(" opaque");
    }
    if !d.local_deps.is_empty() {
        s.push_str(&format!(" locals={:?}", d.local_deps));
    }
    if !d.global_deps.is_empty() {
        s.push_str(&format!(" globals={:?}", d.global_deps));
    }
    if !d.call_deps.is_empty() {
        s.push_str(&format!(" calls={:?}", d.call_deps));
    }
    s.push(']');
    s
}

fn fmt_rhs(r: &Rhs) -> String {
    let mut s = format!("[{}", fmt_mask(r.direct));
    if r.opaque {
        s.push_str(" opaque");
    }
    if !r.locals.is_empty() {
        s.push_str(&format!(" locals={:?}", r.locals));
    }
    if !r.globals.is_empty() {
        s.push_str(&format!(" globals={:?}", r.globals));
    }
    if !r.calls.is_empty() {
        s.push_str(&format!(" calls={:?}", r.calls));
    }
    if !r.caps.is_empty() {
        s.push_str(&format!(" caps={:?}", r.caps));
    }
    if let KExpr::Const(v) = r.k {
        s.push_str(&format!(" k={v}"));
    }
    s.push(']');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, lower, Options};

    #[test]
    fn site_value_constants_track_stored_values() {
        let hir = lower(
            "int g; int main() { int x; int y; x = 7; y = x + 1; g = arg(0); g = y * 2; return 0; }",
        )
        .unwrap();
        let info = analyze(&hir);
        let m = &info.funcs[hir.main as usize];
        let consts: Vec<Option<i32>> = m.sites.iter().map(|s| s.value_const).collect();
        // x = 7 and the propagated y = 8 are constants; arg(0) is not;
        // y * 2 folds through the promoted locals.
        assert_eq!(consts, vec![Some(7), Some(8), None, Some(16)]);
    }

    #[test]
    fn site_value_constants_respect_reaching_definitions() {
        let hir = lower(
            "int g; int main() { int x; x = 1; if (arg(0)) { x = 2; } g = x; g = 5; return 0; }",
        )
        .unwrap();
        let info = analyze(&hir);
        let m = &info.funcs[hir.main as usize];
        let consts: Vec<Option<i32>> = m.sites.iter().map(|s| s.value_const).collect();
        // The merged x is not constant; the literal 5 is.
        assert_eq!(consts, vec![Some(1), Some(2), None, Some(5)]);
    }

    #[test]
    fn flow_sensitivity_refines_pointer_stores() {
        let hir =
            lower("int g; int main() { int x; int *p; p = &x; *p = 1; p = &g; *p = 2; return 0; }")
                .unwrap();
        let info = analyze(&hir);
        let m = &info.funcs[hir.main as usize];
        assert_eq!(m.sites.len(), 4);
        // `*p = 1` sees only the `&x` definition; `*p = 2` only `&g` —
        // the syntactic fold would blur both to stack|global.
        assert_eq!(m.sites[1].desc.direct, REGION_STACK);
        assert!(m.sites[1].desc.local_deps.is_empty());
        assert!(!m.sites[1].desc.opaque);
        assert_eq!(m.sites[3].desc.direct, REGION_GLOBAL);
        assert!(m.sites[3].desc.local_deps.is_empty());
    }

    #[test]
    fn diamond_merge_unions_reaching_definitions() {
        let hir = lower(
            "int g; int main() { int x; int *p; p = &x; if (arg(0)) { p = &g; } *p = 1; return 0; }",
        )
        .unwrap();
        let info = analyze(&hir);
        let m = &info.funcs[hir.main as usize];
        assert_eq!(m.sites.len(), 3);
        assert_eq!(m.sites[2].desc.direct, REGION_STACK | REGION_GLOBAL);
        assert!(m.phis >= 1);
    }

    #[test]
    fn loop_phis_keep_invariant_pointers_tight() {
        let hir = lower(
            "int g; int main() { int i; int *p; p = &g; i = 0; while (i < arg(0)) { *p = i; i = i + 1; } return 0; }",
        )
        .unwrap();
        let info = analyze(&hir);
        let m = &info.funcs[hir.main as usize];
        assert_eq!(m.sites.len(), 4);
        // The back edge feeds the same definition through the loop phi.
        assert_eq!(m.sites[2].desc.direct, REGION_GLOBAL);
        assert!(!m.sites[2].desc.opaque);
        assert!(m.phis >= 1);
    }

    #[test]
    fn constant_propagation_kills_dead_branches() {
        let hir = lower(
            "int main() { int x; int y; x = 0; y = 0; if (x) { y = 2; } return y; y = 3; return y; }",
        )
        .unwrap();
        let info = analyze(&hir);
        let m = &info.funcs[hir.main as usize];
        assert_eq!(m.sites.len(), 4);
        assert!(!m.sites[0].dead && !m.sites[1].dead);
        assert!(m.sites[2].dead, "branch on x==0 is const-unreachable");
        assert!(m.sites[3].dead, "code after return is unreachable");
        assert_eq!(m.dead_sites, 2);
    }

    #[test]
    fn short_circuit_conditions_fold() {
        let hir = lower(
            "int main() { int x; int y; x = arg(0); y = 0; if (x > 0 && x < 10) { y = 1; } if (1 && 0) { y = 2; } return y; }",
        )
        .unwrap();
        let info = analyze(&hir);
        let m = &info.funcs[hir.main as usize];
        assert_eq!(m.sites.len(), 4);
        assert!(!m.sites[2].dead, "runtime condition stays live");
        assert!(m.sites[3].dead, "1 && 0 folds to false");
    }

    #[test]
    fn escaped_locals_are_not_promoted() {
        let hir = lower("int main() { int x; int *p; p = &x; *p = 5; x = 1; return x; }").unwrap();
        let info = analyze(&hir);
        let m = &info.funcs[hir.main as usize];
        // locals: x = 0, p = 1
        assert!(m.taken[0], "&x escapes into p");
        assert!(!m.promotable[0]);
        assert!(!m.taken[1]);
        assert!(m.promotable[1]);
        // The store through p still resolves to x's region.
        assert_eq!(m.sites[1].desc.direct, REGION_STACK);
    }

    #[test]
    fn uninitialized_pointer_proves_nothing() {
        let hir = lower("int main() { int *p; *p = 1; return 0; }").unwrap();
        let info = analyze(&hir);
        let m = &info.funcs[hir.main as usize];
        assert!(m.promotable[0]);
        // Empty summary: mask 0, never elided under any plan.
        assert_eq!(m.sites[0].desc, AddrDesc::default());
        assert!(!m.sites[0].dead);
    }

    #[test]
    fn param_atoms_reference_fixpoint_nodes() {
        let hir = lower(
            "int g; int take(int *p) { *p = 1; return 0; } int main() { int x; take(&x); take(&g); return 0; }",
        )
        .unwrap();
        let info = analyze(&hir);
        let take = &info.funcs[0];
        // Site 0 is the parameter spill; site 1 the store through p,
        // whose entry atom defers to the fixpoint's param node.
        assert_eq!(take.sites.len(), 2);
        assert_eq!(take.sites[0].desc, AddrDesc::stack_slot());
        assert_eq!(take.sites[1].desc.direct, 0);
        assert_eq!(take.sites[1].desc.local_deps, vec![0]);
        // Call-argument edges from main carry the two regions.
        let arg_edges: Vec<&FlowEdge> = info
            .edges
            .iter()
            .filter(|e| e.target == FlowTarget::Local(0, 0))
            .collect();
        assert_eq!(arg_edges.len(), 2);
        assert!(arg_edges.iter().any(|e| e.desc.direct == REGION_STACK));
        assert!(arg_edges.iter().any(|e| e.desc.direct == REGION_GLOBAL));
    }

    #[test]
    fn site_enumeration_aligns_with_codegen() {
        let src = "int g; int gets(int k) { return g + k; } int put(int k) { g = k; return 0; } int main() { int i; int arr[4]; i = 0; while (i < 4) { arr[i] = gets(i); i = i + 1; } put(7); return arr[2]; }";
        let hir = lower(src).unwrap();
        let info = analyze(&hir);
        let compiled = compile(src, &Options::codepatch()).unwrap();
        let flat: Vec<&SiteFact> = info.flat_sites().collect();
        assert_eq!(flat.len(), compiled.debug.store_sites.len());
        for (fid, fs) in info.funcs.iter().enumerate() {
            let n = compiled
                .debug
                .store_sites
                .iter()
                .filter(|s| s.func == fid as u16)
                .count();
            assert_eq!(fs.sites.len(), n, "func {fid} site count");
        }
        // Emission order groups sites by function id ascending, so the
        // per-function concatenation is index-aligned.
        let fids: Vec<u16> = compiled.debug.store_sites.iter().map(|s| s.func).collect();
        let mut sorted = fids.clone();
        sorted.sort_unstable();
        assert_eq!(fids, sorted);
        // Straight stack-slot stores never loosen.
        for (sf, ss) in flat.iter().zip(&compiled.debug.store_sites) {
            if ss.addr == AddrDesc::stack_slot() && !sf.dead {
                assert_eq!(
                    sf.desc.direct & REGION_STACK,
                    REGION_STACK,
                    "site pc {:#x}",
                    ss.pc
                );
            }
        }
    }

    #[test]
    fn hoist_plans_cover_invariant_targets() {
        let src = "int g; int main() { int i; int s; char *p; char *q; p = malloc(8); q = malloc(8); i = 0; s = 0; while (i < 3) { *p = 1; *(q + 1) = 2; s = s + 1; g = g + 1; i = i + 1; } while (i < 6) { q = q + 1; *q = 3; i = i + 1; } return s; }";
        let hir = lower(src).unwrap();
        let plans = &hoist_plans(&hir)[hir.main as usize];
        assert_eq!(plans.len(), 2);
        // locals: i=0 s=1 p=2 q=3; global g=0
        let p0 = &plans[0].targets;
        assert!(p0.contains(&HoistTarget::PtrLocal {
            var: 2,
            off: 0,
            width: 1
        }));
        assert!(p0.contains(&HoistTarget::PtrLocal {
            var: 3,
            off: 1,
            width: 1
        }));
        assert!(p0.contains(&HoistTarget::Local { var: 1, width: 4 }));
        assert!(p0.contains(&HoistTarget::Local { var: 0, width: 4 }));
        assert!(p0.contains(&HoistTarget::Global { gid: 0, width: 4 }));
        let p1 = &plans[1].targets;
        // q is reassigned in loop 2: its slot still hoists (fixed frame
        // address) but the store through it must not.
        assert!(p1.contains(&HoistTarget::Local { var: 3, width: 4 }));
        assert!(p1.contains(&HoistTarget::Local { var: 0, width: 4 }));
        assert!(!p1.iter().any(|t| matches!(t, HoistTarget::PtrLocal { .. })));
    }

    #[test]
    fn nested_loops_get_preorder_plans() {
        let src = "int main() { int i; int j; int s; s = 0; for (i = 0; i < 3; i = i + 1) { for (j = 0; j < 3; j = j + 1) { s = s + 1; } } return s; }";
        let hir = lower(src).unwrap();
        let plans = &hoist_plans(&hir)[hir.main as usize];
        assert_eq!(plans.len(), 2);
        // Outer plan: i (step), j and s belong to the inner loop.
        assert!(plans[0]
            .targets
            .contains(&HoistTarget::Local { var: 0, width: 4 }));
        assert!(!plans[0]
            .targets
            .contains(&HoistTarget::Local { var: 2, width: 4 }));
        assert!(plans[1]
            .targets
            .contains(&HoistTarget::Local { var: 1, width: 4 }));
        assert!(plans[1]
            .targets
            .contains(&HoistTarget::Local { var: 2, width: 4 }));
    }

    #[test]
    fn dump_renders_pipeline() {
        let src =
            "int g; int main() { int i; i = 0; while (i < 3) { g = g + i; i = i + 1; } return g; }";
        let hir = lower(src).unwrap();
        let d = dump(&hir);
        assert!(d.contains("fn main"));
        assert!(d.contains("promoted"));
        assert!(d.contains("site"));
        assert!(d.contains("loop 0: hoist"));
        assert!(d.contains("phi"));
        // Deterministic.
        assert_eq!(d, dump(&hir));
    }
}
