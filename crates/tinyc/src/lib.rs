//! `tinyc` — a small C-subset compiler targeting the `spar` machine.
//!
//! The paper's phase 1 compiles five C programs with GCC 1.4 (`-g`, no
//! variables in registers) and post-processes the assembly to emit a
//! program event trace. Our substitute workloads are written in this
//! dialect and compiled here. Design choices deliberately mirror the
//! paper's setup:
//!
//! * **Named variables live in memory, never in registers** — every read
//!   and write of a declared variable is a real load/store, so data
//!   breakpoints see them (only expression temporaries use registers).
//! * **Function boundaries are marked** (`enter`/`exit` pseudo-ops) so the
//!   tracer can install/remove monitors for local automatics per
//!   instantiation.
//! * **Implicit writes are distinguishable**: prologue/epilogue register
//!   saves and expression-temporary spills are recorded in
//!   [`DebugInfo::untraced_store_pcs`], matching the paper's "implicit
//!   writes (e.g., register spilling) do not appear in the trace".
//! * **CodePatch instrumentation is a compile-time option**
//!   ([`Options::codepatch`]): a `chk` precedes every traced store. The
//!   loop-invariant preliminary-check optimization sketched in the
//!   paper's Section 9 is implemented behind [`Options::loopopt`].
//!
//! The supported language: `int`, `char`, pointers, fixed arrays, named
//! structs, `static` function-locals, the usual statements
//! (`if`/`while`/`for`/`return`/`break`/`continue`), short-circuit
//! logicals, casts, `sizeof`, string literals, and builtins `malloc`,
//! `free`, `realloc`, `print_int`, `print_char`, `print_str`, `arg`,
//! `exit`.
//!
//! # Examples
//!
//! ```
//! use databp_tinyc::{compile, Options};
//! use databp_machine::{Machine, NoHooks};
//!
//! let src = r#"
//!     int main() { print_int(6 * 7); return 0; }
//! "#;
//! let compiled = compile(src, &Options::default()).expect("compiles");
//! let mut m = Machine::new();
//! m.load(&compiled.program);
//! m.run(&mut NoHooks, 1_000_000).unwrap();
//! assert_eq!(m.output(), b"42\n");
//! ```

mod ast;
mod codegen;
mod debuginfo;
mod error;
mod hir;
mod interp;
mod lexer;
mod parser;
mod sema;
pub mod ssa;
mod types;

pub use codegen::Options;
pub use debuginfo::{
    AddrDesc, DebugInfo, FuncInfo, GlobalInfo, LocalInfo, LoopOptInfo, StoreSiteInfo, REGION_ALL,
    REGION_GLOBAL, REGION_HEAP, REGION_NONE, REGION_STACK,
};
pub use error::CompileError;
pub use hir::{BinOp, Builtin, Expr, ExprKind, FuncDef, GlobalDef, Hir, LocalDef, Stmt, UnOp};
pub use interp::{interpret, interpret_observed, InterpObserver, InterpResult, NoObserver};
pub use types::Type;

use databp_machine::Program;

/// A compiled program: the machine image plus the debug information the
/// tracer and session enumerator need.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// Loadable machine program.
    pub program: Program,
    /// Symbol/layout information.
    pub debug: DebugInfo,
}

/// Compiles `source` with the given options.
///
/// # Errors
///
/// Returns a [`CompileError`] (with a line number) for lexical, syntactic,
/// or semantic faults.
pub fn compile(source: &str, options: &Options) -> Result<Compiled, CompileError> {
    let _t = databp_telemetry::time!("tinyc.compile");
    databp_telemetry::count!("tinyc.compiles");
    let hir = lower(source)?;
    Ok(codegen::generate(&hir, options))
}

/// Parses and type-checks `source` into [`Hir`] without generating code —
/// the input both to the code generator (via [`compile`]) and to the reference
/// interpreter ([`interpret`]).
///
/// # Errors
///
/// Returns a [`CompileError`] for lexical, syntactic, or semantic faults.
pub fn lower(source: &str) -> Result<Hir, CompileError> {
    let tokens = lexer::lex(source)?;
    let ast = parser::parse(&tokens)?;
    sema::check(&ast)
}
