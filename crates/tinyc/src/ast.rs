//! The untyped abstract syntax tree produced by the parser.

/// A parsed type expression (struct names unresolved until sema).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeExpr {
    /// `int`
    Int,
    /// `char`
    Char,
    /// `void` (function returns only)
    Void,
    /// `struct Name`
    Struct(String),
    /// `T*`
    Ptr(Box<TypeExpr>),
}

/// A declarator: name plus optional array length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Declarator {
    /// Declared name.
    pub name: String,
    /// `Some(n)` for `name[n]`.
    pub array: Option<u32>,
    /// Source line.
    pub line: u32,
}

/// A struct definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructDef {
    /// Struct tag.
    pub name: String,
    /// Members in declaration order.
    pub members: Vec<(TypeExpr, Declarator)>,
    /// Source line.
    pub line: u32,
}

/// A file-scope variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalDecl {
    /// Element type.
    pub ty: TypeExpr,
    /// Name and optional array length.
    pub decl: Declarator,
    /// Optional constant initializer.
    pub init: Option<Expr>,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncDecl {
    /// Return type (`void` allowed).
    pub ret: TypeExpr,
    /// Function name.
    pub name: String,
    /// Parameters (scalar/pointer only).
    pub params: Vec<(TypeExpr, String)>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Source line.
    pub line: u32,
}

/// A top-level item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Item {
    /// `struct S { … };`
    Struct(StructDef),
    /// File-scope variable.
    Global(GlobalDecl),
    /// Function definition.
    Func(FuncDecl),
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// Local declaration, possibly `static`, possibly initialized.
    Decl {
        /// `static` storage?
        is_static: bool,
        /// Element type.
        ty: TypeExpr,
        /// Name and optional array length.
        decl: Declarator,
        /// Optional initializer (constant required when `is_static`).
        init: Option<Expr>,
    },
    /// Expression statement.
    Expr(Expr),
    /// `if (cond) then else?`
    If(Expr, Box<Stmt>, Option<Box<Stmt>>),
    /// `while (cond) body`
    While(Expr, Box<Stmt>),
    /// `for (init; cond; step) body` — all clauses optional.
    For(Option<Expr>, Option<Expr>, Option<Expr>, Box<Stmt>),
    /// `return expr?;`
    Return(Option<Expr>, u32),
    /// `break;`
    Break(u32),
    /// `continue;`
    Continue(u32),
    /// `{ … }`
    Block(Vec<Stmt>),
    /// `;`
    Empty,
}

/// Binary operators (short-circuit logicals included).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `<<`
    Shl,
    /// `>>` (arithmetic)
    Shr,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `&&`
    LogAnd,
    /// `||`
    LogOr,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// `-`
    Neg,
    /// `!`
    Not,
    /// `~`
    BitNot,
}

/// An expression with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Expr {
    /// Node kind.
    pub kind: ExprKind,
    /// 1-based source line.
    pub line: u32,
}

/// Expression kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExprKind {
    /// Integer or character literal.
    Int(i32),
    /// String literal.
    Str(Vec<u8>),
    /// Variable reference.
    Ident(String),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// `*e`
    Deref(Box<Expr>),
    /// `&e`
    AddrOf(Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// `lhs = rhs`
    Assign(Box<Expr>, Box<Expr>),
    /// `f(args…)`
    Call(String, Vec<Expr>),
    /// `e[i]`
    Index(Box<Expr>, Box<Expr>),
    /// `e.member`
    Member(Box<Expr>, String),
    /// `e->member`
    Arrow(Box<Expr>, String),
    /// `(T)e`
    Cast(TypeExpr, Box<Expr>),
    /// `sizeof(T)`
    Sizeof(TypeExpr),
}
