//! Code generation: HIR → `spar` machine code.
//!
//! The generated code follows the paper's compilation regime: named
//! variables are always in memory; only expression temporaries use
//! registers (`t0..t15`, a simple evaluation stack). Function prologues
//! and epilogues bracket the body with `enter`/`exit` marks, and the
//! implicit stores they perform (return-address/frame-pointer saves,
//! temporary spills around calls) are recorded as *untraced*.
//!
//! With [`Options::codepatch`], every traced store is preceded by a `chk`
//! of the same effective address — the paper's CodePatch instrumentation
//! ("a minimum of two additional instructions" per write). With
//! [`Options::loopopt`] additionally enabled, stores whose target is a
//! loop-invariant scalar (a named local or global) get a *preliminary
//! check* in the loop preheader (Section 9), recorded in
//! [`DebugInfo::loopopts`] for the CodePatch strategy to exploit.

use crate::debuginfo::{
    AddrDesc, DebugInfo, FuncInfo, GlobalInfo, LocalInfo, LoopOptInfo, StoreSiteInfo,
    REGION_GLOBAL, REGION_HEAP, REGION_STACK,
};
use crate::hir::{BinOp, Builtin, Expr, ExprKind, FuncDef, Hir, Stmt, UnOp};
use crate::types::align_up;
use crate::Compiled;
use databp_machine::{asm, Instr, Program, CODE_BASE, DATA_BASE};
use std::collections::HashMap;

/// Code generation options.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Options {
    /// Insert a CodePatch `chk` before every traced store.
    pub codepatch: bool,
    /// Emit Section 9 loop-preheader preliminary checks (requires
    /// `codepatch`; ignored otherwise).
    pub loopopt: bool,
    /// Emit a `nop` before every traced store instead of a `chk` — the
    /// paper's Section 3.3 hybrid: padding that a *dynamic* code patcher
    /// can overwrite with checks at run time. Ignored when `codepatch`
    /// is set.
    pub nop_padding: bool,
    /// Emit SSA-planned preheader checks ([`crate::ssa::hoist_plans`]):
    /// loop-invariant store targets — including stores through
    /// never-reassigned promotable pointers — get one guard in the
    /// preheader that licenses skipping the per-iteration checks it
    /// dominates. Requires `codepatch`; ignored otherwise.
    pub ssa_hoist: bool,
}

impl Options {
    /// Plain code, no instrumentation (NativeHardware / VirtualMemory /
    /// TrapPatch runs).
    pub fn plain() -> Self {
        Options::default()
    }

    /// CodePatch instrumentation.
    pub fn codepatch() -> Self {
        Options {
            codepatch: true,
            ..Options::default()
        }
    }

    /// CodePatch with the loop-invariant preliminary-check optimization.
    pub fn codepatch_loopopt() -> Self {
        Options {
            codepatch: true,
            loopopt: true,
            ..Options::default()
        }
    }

    /// CodePatch with SSA-planned dominator-based check hoisting.
    pub fn codepatch_ssa() -> Self {
        Options {
            codepatch: true,
            ssa_hoist: true,
            ..Options::default()
        }
    }

    /// Nop padding for dynamic patching (Section 3.3's hybrid).
    pub fn nop_padding() -> Self {
        Options {
            nop_padding: true,
            ..Options::default()
        }
    }
}

// Register conventions (see databp_machine::reg).
const AT: u8 = 1; // scratch for addresses / wide constants
const RV: u8 = 2;
const A0: u8 = 4;
const T0: u8 = 8;
const NTEMP: u32 = 16;
const SP: u8 = 29;
const FP: u8 = 30;

const SYS_EXIT: u16 = 1;

fn treg(depth: u32) -> u8 {
    assert!(depth < NTEMP, "expression too deep: needs temp t{depth}");
    T0 + depth as u8
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum StoreTarget {
    Local(u16),
    Global(u32),
    /// Store through local pointer `var` at constant byte offset — only
    /// used by the SSA hoist planner ([`Options::ssa_hoist`]), which
    /// guarantees the pointer is promotable and loop-invariant.
    Ptr(u16, i16),
}

struct Gen<'a> {
    hir: &'a Hir,
    opts: Options,
    code: Vec<Instr>,
    func_entries: Vec<usize>,
    call_fixups: Vec<(usize, u16)>,
    labels: Vec<Option<usize>>,
    branch_fixups: Vec<(usize, usize)>,
    /// (break label, continue label) stack.
    loop_labels: Vec<(usize, usize)>,
    /// Innermost-loop hoist registry: target -> loopopts index.
    hoist_stack: Vec<HashMap<StoreTarget, usize>>,
    /// SSA hoist plans per function, indexed by loop pre-order ordinal
    /// (empty unless [`Options::ssa_hoist`]).
    ssa_plans: Vec<Vec<crate::ssa::HoistPlan>>,
    /// Pre-order ordinal of the next loop in the current function.
    loop_ordinal: usize,
    /// Innermost-loop SSA hoist registry: target -> hoists index.
    ssa_hoist_stack: Vec<HashMap<StoreTarget, usize>>,
    untraced: Vec<u32>,
    pads: Vec<u32>,
    loopopts: Vec<LoopOptInfo>,
    hoists: Vec<LoopOptInfo>,
    traced_store_count: u32,
    store_sites: Vec<StoreSiteInfo>,
    cur: Option<&'a FuncDef>,
    cur_fid: u16,
    epilogue: usize,
}

/// Generates machine code and debug info for a checked program.
pub fn generate(hir: &Hir, opts: &Options) -> Compiled {
    let mut g = Gen {
        hir,
        opts: *opts,
        code: Vec::new(),
        func_entries: vec![0; hir.funcs.len()],
        call_fixups: Vec::new(),
        labels: Vec::new(),
        branch_fixups: Vec::new(),
        loop_labels: Vec::new(),
        hoist_stack: Vec::new(),
        ssa_plans: if opts.codepatch && opts.ssa_hoist {
            crate::ssa::hoist_plans(hir)
        } else {
            Vec::new()
        },
        loop_ordinal: 0,
        ssa_hoist_stack: Vec::new(),
        untraced: Vec::new(),
        pads: Vec::new(),
        loopopts: Vec::new(),
        hoists: Vec::new(),
        traced_store_count: 0,
        store_sites: Vec::new(),
        cur: None,
        cur_fid: 0,
        epilogue: 0,
    };

    // Entry stub: call main, pass its result to exit.
    g.call_fixups.push((g.code.len(), hir.main));
    g.emit(asm::jal(0));
    g.emit(asm::addi(A0, RV, 0));
    g.emit(asm::trap(SYS_EXIT));

    for (fid, f) in hir.funcs.iter().enumerate() {
        g.gen_func(fid as u16, f);
    }

    // Patch calls.
    for (idx, fid) in std::mem::take(&mut g.call_fixups) {
        g.code[idx] = asm::jal(g.func_entries[fid as usize] as u32);
    }
    // Branch fixups are resolved per function (labels are global though).
    for (idx, label) in std::mem::take(&mut g.branch_fixups) {
        let target = g.labels[label].expect("label must be bound before fixup");
        let off = target as i64 - (idx as i64 + 1);
        assert!(
            (i16::MIN as i64..=i16::MAX as i64).contains(&off),
            "branch offset out of range: {off}"
        );
        g.code[idx] = match g.code[idx] {
            Instr::Beq(a, b, _) => Instr::Beq(a, b, off as i16),
            Instr::Bne(a, b, _) => Instr::Bne(a, b, off as i16),
            Instr::Blt(a, b, _) => Instr::Blt(a, b, off as i16),
            Instr::Bge(a, b, _) => Instr::Bge(a, b, off as i16),
            other => panic!("fixup on non-branch {other:?}"),
        };
    }

    let mut data = vec![0u8; hir.data_size as usize];
    for gl in &hir.globals {
        data[gl.offset as usize..(gl.offset + gl.size) as usize].copy_from_slice(&gl.init);
    }

    g.untraced.sort_unstable();
    let debug = DebugInfo {
        functions: hir
            .funcs
            .iter()
            .enumerate()
            .map(|(fid, f)| FuncInfo {
                name: f.name.clone(),
                entry_pc: CODE_BASE + 4 * g.func_entries[fid] as u32,
                params: f.params,
                locals: f
                    .locals
                    .iter()
                    .enumerate()
                    .map(|(i, l)| LocalInfo {
                        name: l.name.clone(),
                        var: i as u16,
                        offset: l.offset,
                        size: l.size,
                        is_param: l.is_param,
                    })
                    .collect(),
            })
            .collect(),
        globals: hir
            .globals
            .iter()
            .enumerate()
            .map(|(id, gl)| GlobalInfo {
                name: gl.name.clone(),
                id: id as u32,
                ba: DATA_BASE + gl.offset,
                ea: DATA_BASE + gl.offset + gl.size,
                owner: gl.owner,
                is_literal: gl.is_literal,
            })
            .collect(),
        untraced_store_pcs: g.untraced,
        pad_pcs: g.pads,
        loopopts: g.loopopts,
        hoists: g.hoists,
        data_size: hir.data_size,
        traced_store_count: g.traced_store_count,
        store_sites: g.store_sites,
    };

    Compiled {
        program: Program {
            code: g.code,
            data,
            entry: CODE_BASE,
        },
        debug,
    }
}

impl<'a> Gen<'a> {
    fn emit(&mut self, i: Instr) -> usize {
        self.code.push(i);
        self.code.len() - 1
    }

    fn here_pc(&self) -> u32 {
        CODE_BASE + 4 * self.code.len() as u32
    }

    fn new_label(&mut self) -> usize {
        self.labels.push(None);
        self.labels.len() - 1
    }

    fn bind(&mut self, label: usize) {
        assert!(self.labels[label].is_none(), "label bound twice");
        self.labels[label] = Some(self.code.len());
    }

    fn branch_to(&mut self, i: Instr, label: usize) {
        let idx = self.emit(i);
        self.branch_fixups.push((idx, label));
    }

    fn jump_to(&mut self, label: usize) {
        // Unconditional branch: beq r0, r0.
        self.branch_to(asm::beq(0, 0, 0), label);
    }

    /// Loads a 32-bit constant into `rd`.
    fn load_const(&mut self, rd: u8, v: i32) {
        if (-32768..=32767).contains(&v) {
            self.emit(asm::addi(rd, 0, v as i16));
        } else {
            let u = v as u32;
            self.emit(asm::lui(rd, (u >> 16) as u16));
            let lo = (u & 0xffff) as u16;
            if lo != 0 {
                self.emit(asm::ori(rd, rd, lo));
            }
        }
    }

    /// Loads the absolute address of global `gid` into `rd`.
    fn load_global_addr(&mut self, rd: u8, gid: u32) {
        let addr = DATA_BASE + self.hir.globals[gid as usize].offset;
        self.load_const(rd, addr as i32);
    }

    fn local_offset(&self, idx: u16) -> i16 {
        let off = self.cur.expect("inside a function").locals[idx as usize].offset;
        assert!((-32768..0).contains(&off), "frame too large: offset {off}");
        off as i16
    }

    // ---- functions ----

    fn gen_func(&mut self, fid: u16, f: &'a FuncDef) {
        self.cur = Some(f);
        self.cur_fid = fid;
        self.loop_ordinal = 0;
        self.func_entries[fid as usize] = self.code.len();
        let total = align_up(f.frame_size, 8);
        assert!(total <= 32760, "frame of '{}' too large", f.name);

        self.emit(asm::addi(SP, SP, -(total as i16)));
        self.untraced.push(self.here_pc());
        self.emit(asm::sw(31, SP, (total - 4) as i16)); // save ra
        self.untraced.push(self.here_pc());
        self.emit(asm::sw(FP, SP, (total - 8) as i16)); // save caller fp
        self.emit(asm::addi(FP, SP, total as i16));
        self.emit(asm::mark_enter(fid));
        // Spill parameters into their (traced) frame slots.
        for p in 0..f.params {
            let off = self.local_offset(p);
            let width = f.locals[p as usize].ty.access_width();
            self.checked_store(A0 + p as u8, FP, off, width, None, AddrDesc::stack_slot());
        }

        self.epilogue = self.new_label();
        let body: &'a [Stmt] = &f.body;
        self.gen_stmts(fid, body);

        let epi = self.epilogue;
        self.bind(epi);
        self.emit(asm::mark_exit(fid));
        self.emit(asm::lw(31, FP, -4));
        self.emit(asm::addi(SP, FP, 0));
        self.emit(asm::lw(FP, FP, -8));
        self.emit(asm::jalr(0, 31, 0));
        self.cur = None;
    }

    fn gen_stmts(&mut self, fid: u16, stmts: &'a [Stmt]) {
        for s in stmts {
            self.gen_stmt(fid, s);
        }
    }

    fn gen_stmt(&mut self, fid: u16, s: &'a Stmt) {
        match s {
            Stmt::Expr(e) => {
                self.expr(e, 0);
            }
            Stmt::If(c, t, e) => {
                let lelse = self.new_label();
                let lend = self.new_label();
                self.expr(c, 0);
                self.branch_to(asm::beq(T0, 0, 0), lelse);
                self.gen_stmts(fid, t);
                if e.is_empty() {
                    self.bind(lelse);
                    self.labels[lend] = Some(self.code.len()); // unused
                } else {
                    self.jump_to(lend);
                    self.bind(lelse);
                    self.gen_stmts(fid, e);
                    self.bind(lend);
                }
            }
            Stmt::While(c, body) => {
                self.gen_loop(fid, None, Some(c), None, body);
            }
            Stmt::For(init, cond, step, body) => {
                self.gen_loop(fid, init.as_ref(), cond.as_ref(), step.as_ref(), body);
            }
            Stmt::Return(v) => {
                if let Some(v) = v {
                    self.expr(v, 0);
                    self.emit(asm::addi(RV, T0, 0));
                }
                let epi = self.epilogue;
                self.jump_to(epi);
            }
            Stmt::Break => {
                let (brk, _) = *self.loop_labels.last().expect("break inside loop");
                self.jump_to(brk);
            }
            Stmt::Continue => {
                let (_, cont) = *self.loop_labels.last().expect("continue inside loop");
                self.jump_to(cont);
            }
        }
    }

    fn gen_loop(
        &mut self,
        fid: u16,
        init: Option<&'a Expr>,
        cond: Option<&'a Expr>,
        step: Option<&'a Expr>,
        body: &'a [Stmt],
    ) {
        let ordinal = self.loop_ordinal;
        self.loop_ordinal += 1;
        if let Some(i) = init {
            self.expr(i, 0);
        }

        // Section 9: preliminary checks for loop-invariant store targets.
        let mut hoists = HashMap::new();
        if self.opts.codepatch && self.opts.loopopt {
            let mut targets = Vec::new();
            collect_hoist_targets_stmts(body, &mut targets);
            if let Some(c) = cond {
                collect_hoist_targets_expr(c, &mut targets);
            }
            if let Some(st) = step {
                collect_hoist_targets_expr(st, &mut targets);
            }
            targets.dedup();
            for (target, width) in targets {
                if hoists.contains_key(&target) {
                    continue;
                }
                let pre_pc = self.here_pc();
                match target {
                    StoreTarget::Local(i) => {
                        let off = self.local_offset(i);
                        self.emit(asm::chk(FP, off, width as u8));
                    }
                    StoreTarget::Global(gid) => {
                        self.load_global_addr(AT, gid);
                        // load_global_addr may emit 1 or 2 instructions;
                        // the chk is the *next* word.
                        let pc = self.here_pc();
                        self.emit(asm::chk(AT, 0, width as u8));
                        self.loopopts.push(LoopOptInfo {
                            preheader_pc: pc,
                            body_pcs: Vec::new(),
                        });
                        hoists.insert(target, self.loopopts.len() - 1);
                        continue;
                    }
                    StoreTarget::Ptr(..) => {
                        unreachable!("Section 9 discovery never yields pointer targets")
                    }
                }
                self.loopopts.push(LoopOptInfo {
                    preheader_pc: pre_pc,
                    body_pcs: Vec::new(),
                });
                hoists.insert(target, self.loopopts.len() - 1);
            }
        }
        self.hoist_stack.push(hoists);

        // SSA-planned preheader checks: one dominating `chk` per
        // loop-invariant target licenses skipping the body checks it
        // covers. `chk` never accesses memory, so guarding through a
        // possibly-uninitialized pointer slot cannot fault.
        let mut ssa_hoists = HashMap::new();
        if self.opts.codepatch && self.opts.ssa_hoist {
            let plan = self
                .ssa_plans
                .get(self.cur_fid as usize)
                .and_then(|per_loop| per_loop.get(ordinal))
                .cloned();
            if let Some(plan) = plan {
                for t in &plan.targets {
                    let (target, pre_pc) = match *t {
                        crate::ssa::HoistTarget::Local { var, width } => {
                            let pc = self.here_pc();
                            let off = self.local_offset(var);
                            self.emit(asm::chk(FP, off, width as u8));
                            (StoreTarget::Local(var), pc)
                        }
                        crate::ssa::HoistTarget::Global { gid, width } => {
                            self.load_global_addr(AT, gid);
                            let pc = self.here_pc();
                            self.emit(asm::chk(AT, 0, width as u8));
                            (StoreTarget::Global(gid), pc)
                        }
                        crate::ssa::HoistTarget::PtrLocal { var, off, width } => {
                            let poff = self.local_offset(var);
                            self.emit(asm::lw(AT, FP, poff));
                            let pc = self.here_pc();
                            self.emit(asm::chk(AT, off, width as u8));
                            (StoreTarget::Ptr(var, off), pc)
                        }
                    };
                    self.hoists.push(LoopOptInfo {
                        preheader_pc: pre_pc,
                        body_pcs: Vec::new(),
                    });
                    ssa_hoists.insert(target, self.hoists.len() - 1);
                }
            }
        }
        self.ssa_hoist_stack.push(ssa_hoists);

        let lcond = self.new_label();
        let lstep = self.new_label();
        let lend = self.new_label();
        self.bind(lcond);
        if let Some(c) = cond {
            self.expr(c, 0);
            self.branch_to(asm::beq(T0, 0, 0), lend);
        }
        self.loop_labels.push((lend, lstep));
        self.gen_stmts(fid, body);
        self.loop_labels.pop();
        self.bind(lstep);
        if let Some(st) = step {
            self.expr(st, 0);
        }
        self.jump_to(lcond);
        self.bind(lend);
        self.ssa_hoist_stack.pop();
        self.hoist_stack.pop();
    }

    // ---- expressions ----

    /// Emits code leaving the value of `e` in `treg(depth)`.
    fn expr(&mut self, e: &'a Expr, depth: u32) {
        let rd = treg(depth);
        match &e.kind {
            ExprKind::Const(v) => self.load_const(rd, *v),
            ExprKind::AddrLocal(i) => {
                let off = self.local_offset(*i);
                self.emit(asm::addi(rd, FP, off));
            }
            ExprKind::AddrGlobal(g) => self.load_global_addr(rd, *g),
            ExprKind::Load(addr) => {
                let width = e.ty.access_width();
                match &addr.kind {
                    ExprKind::AddrLocal(i) => {
                        let off = self.local_offset(*i);
                        self.emit(load_instr(width, rd, FP, off));
                    }
                    ExprKind::AddrGlobal(g) => {
                        self.load_global_addr(rd, *g);
                        self.emit(load_instr(width, rd, rd, 0));
                    }
                    _ => {
                        self.expr(addr, depth);
                        self.emit(load_instr(width, rd, rd, 0));
                    }
                }
            }
            ExprKind::Unary(op, inner) => {
                self.expr(inner, depth);
                match op {
                    UnOp::Neg => {
                        self.emit(asm::sub(rd, 0, rd));
                    }
                    UnOp::Not => {
                        self.emit(asm::sltu(rd, 0, rd));
                        self.emit(asm::xori(rd, rd, 1));
                    }
                    UnOp::BitNot => {
                        self.emit(asm::addi(AT, 0, -1));
                        self.emit(asm::xor(rd, rd, AT));
                    }
                }
            }
            ExprKind::CastChar(inner) => {
                self.expr(inner, depth);
                self.emit(asm::slli(rd, rd, 24));
                self.emit(asm::srai(rd, rd, 24));
            }
            ExprKind::Binary(op, a, b) => {
                self.expr(a, depth);
                self.expr(b, depth + 1);
                let rb = treg(depth + 1);
                self.bin_op(*op, rd, rd, rb);
            }
            ExprKind::LogAnd(a, b) => {
                let lfalse = self.new_label();
                let lend = self.new_label();
                self.expr(a, depth);
                self.branch_to(asm::beq(rd, 0, 0), lfalse);
                self.expr(b, depth);
                self.emit(asm::sltu(rd, 0, rd));
                self.jump_to(lend);
                self.bind(lfalse);
                self.emit(asm::addi(rd, 0, 0));
                self.bind(lend);
            }
            ExprKind::LogOr(a, b) => {
                let ltrue = self.new_label();
                let lend = self.new_label();
                self.expr(a, depth);
                self.branch_to(asm::bne(rd, 0, 0), ltrue);
                self.expr(b, depth);
                self.emit(asm::sltu(rd, 0, rd));
                self.jump_to(lend);
                self.bind(ltrue);
                self.emit(asm::addi(rd, 0, 1));
                self.bind(lend);
            }
            ExprKind::Assign { addr, value } => {
                let width = e.ty.access_width();
                let desc = addr_desc(addr);
                self.expr(value, depth);
                match &addr.kind {
                    ExprKind::AddrLocal(i) => {
                        let off = self.local_offset(*i);
                        self.checked_store(rd, FP, off, width, Some(StoreTarget::Local(*i)), desc);
                    }
                    ExprKind::AddrGlobal(g) => {
                        self.load_global_addr(AT, *g);
                        self.checked_store(rd, AT, 0, width, Some(StoreTarget::Global(*g)), desc);
                    }
                    ExprKind::Binary(BinOp::Add, base, off) if matches!(off.kind, ExprKind::Const(c) if (-32768..=32767).contains(&c)) =>
                    {
                        let c = match off.kind {
                            ExprKind::Const(c) => c as i16,
                            _ => unreachable!(),
                        };
                        let target = ptr_store_target(base, c);
                        self.expr(base, depth + 1);
                        let rbase = treg(depth + 1);
                        self.checked_store(rd, rbase, c, width, target, desc);
                    }
                    _ => {
                        let target = ptr_store_target(addr, 0);
                        self.expr(addr, depth + 1);
                        let rbase = treg(depth + 1);
                        self.checked_store(rd, rbase, 0, width, target, desc);
                    }
                }
            }
            ExprKind::Call(fid, args) => self.gen_call(*fid, args, depth),
            ExprKind::Builtin(b, args) => self.gen_builtin(*b, args, depth),
        }
    }

    fn bin_op(&mut self, op: BinOp, rd: u8, ra: u8, rb: u8) {
        match op {
            BinOp::Add => self.emit(asm::add(rd, ra, rb)),
            BinOp::Sub => self.emit(asm::sub(rd, ra, rb)),
            BinOp::Mul => self.emit(asm::mul(rd, ra, rb)),
            BinOp::Div => self.emit(asm::div(rd, ra, rb)),
            BinOp::Rem => self.emit(asm::rem(rd, ra, rb)),
            BinOp::BitAnd => self.emit(asm::and(rd, ra, rb)),
            BinOp::BitOr => self.emit(asm::or(rd, ra, rb)),
            BinOp::BitXor => self.emit(asm::xor(rd, ra, rb)),
            BinOp::Shl => self.emit(asm::sll(rd, ra, rb)),
            BinOp::Shr => self.emit(asm::sra(rd, ra, rb)),
            BinOp::Lt => self.emit(asm::slt(rd, ra, rb)),
            BinOp::Gt => self.emit(asm::slt(rd, rb, ra)),
            BinOp::Le => {
                self.emit(asm::slt(rd, rb, ra));
                self.emit(asm::xori(rd, rd, 1))
            }
            BinOp::Ge => {
                self.emit(asm::slt(rd, ra, rb));
                self.emit(asm::xori(rd, rd, 1))
            }
            BinOp::Eq => {
                self.emit(asm::xor(rd, ra, rb));
                self.emit(asm::sltu(rd, 0, rd));
                self.emit(asm::xori(rd, rd, 1))
            }
            BinOp::Ne => {
                self.emit(asm::xor(rd, ra, rb));
                self.emit(asm::sltu(rd, 0, rd))
            }
            BinOp::LogAnd | BinOp::LogOr => unreachable!("lowered to LogAnd/LogOr nodes"),
        };
    }

    /// Emits a traced store (optionally CodePatch-checked) of `rsrc` to
    /// `off(rbase)`, recording the store site with its address summary.
    fn checked_store(
        &mut self,
        rsrc: u8,
        rbase: u8,
        off: i16,
        width: u32,
        target: Option<StoreTarget>,
        desc: AddrDesc,
    ) {
        if !self.opts.codepatch && self.opts.nop_padding {
            self.pads.push(self.here_pc());
            self.emit(asm::nop());
        }
        let mut chk_pc = None;
        if self.opts.codepatch {
            let pc = self.here_pc();
            chk_pc = Some(pc);
            self.emit(asm::chk(rbase, off, width as u8));
            if self.opts.loopopt {
                if let Some(t) = target {
                    if let Some(hoists) = self.hoist_stack.last() {
                        if let Some(&idx) = hoists.get(&t) {
                            self.loopopts[idx].body_pcs.push(pc);
                        }
                    }
                }
            }
            if self.opts.ssa_hoist {
                if let Some(t) = target {
                    if let Some(hoists) = self.ssa_hoist_stack.last() {
                        if let Some(&idx) = hoists.get(&t) {
                            self.hoists[idx].body_pcs.push(pc);
                        }
                    }
                }
            }
        }
        self.traced_store_count += 1;
        self.store_sites.push(StoreSiteInfo {
            pc: self.here_pc(),
            chk_pc,
            func: self.cur_fid,
            len: width,
            addr: desc,
        });
        match width {
            1 => self.emit(asm::sb(rsrc, rbase, off)),
            4 => self.emit(asm::sw(rsrc, rbase, off)),
            _ => unreachable!("store width is 1 or 4"),
        };
    }

    fn gen_call(&mut self, fid: u16, args: &'a [Expr], depth: u32) {
        for (k, a) in args.iter().enumerate() {
            self.expr(a, depth + k as u32);
        }
        for k in 0..args.len() {
            self.emit(asm::addi(A0 + k as u8, treg(depth + k as u32), 0));
        }
        // Save live temporaries (untraced spills).
        if depth > 0 {
            self.emit(asm::addi(SP, SP, -(4 * depth as i16)));
            for i in 0..depth {
                self.untraced.push(self.here_pc());
                self.emit(asm::sw(treg(i), SP, (4 * i) as i16));
            }
        }
        self.call_fixups.push((self.code.len(), fid));
        self.emit(asm::jal(0));
        if depth > 0 {
            for i in 0..depth {
                self.emit(asm::lw(treg(i), SP, (4 * i) as i16));
            }
            self.emit(asm::addi(SP, SP, 4 * depth as i16));
        }
        self.emit(asm::addi(treg(depth), RV, 0));
    }

    fn gen_builtin(&mut self, b: Builtin, args: &'a [Expr], depth: u32) {
        for (k, a) in args.iter().enumerate() {
            self.expr(a, depth + k as u32);
        }
        for k in 0..args.len() {
            self.emit(asm::addi(A0 + k as u8, treg(depth + k as u32), 0));
        }
        let code: u16 = match b {
            Builtin::Exit => 1,
            Builtin::PrintInt => 2,
            Builtin::PrintChar => 3,
            Builtin::Malloc => 4,
            Builtin::Free => 5,
            Builtin::Realloc => 6,
            Builtin::Arg => 7,
            Builtin::PrintStr => 8,
        };
        self.emit(asm::trap(code));
        if matches!(b, Builtin::Malloc | Builtin::Realloc | Builtin::Arg) {
            self.emit(asm::addi(treg(depth), RV, 0));
        }
    }
}

fn load_instr(width: u32, rd: u8, rbase: u8, off: i16) -> Instr {
    match width {
        1 => asm::lb(rd, rbase, off),
        4 => asm::lw(rd, rbase, off),
        _ => unreachable!("load width is 1 or 4"),
    }
}

/// Summarizes a store's address expression for the static write-safety
/// pass: which regions the address is directly derived from, and which
/// named scalars / function results feed it. Purely syntactic — the
/// `databp-analysis` crate resolves the dependencies.
fn addr_desc(e: &Expr) -> AddrDesc {
    let mut d = AddrDesc::default();
    fold_addr(e, &mut d);
    d
}

fn fold_addr(e: &Expr, d: &mut AddrDesc) {
    match &e.kind {
        ExprKind::AddrLocal(_) => d.direct |= REGION_STACK,
        ExprKind::AddrGlobal(_) => d.direct |= REGION_GLOBAL,
        // Constants and boolean results carry no region: an address
        // forged from them is REGION_NONE ("proves nothing"), never
        // elided.
        ExprKind::Const(_) | ExprKind::LogAnd(..) | ExprKind::LogOr(..) => {}
        ExprKind::Binary(op, a, b) => match op {
            BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge | BinOp::Eq | BinOp::Ne => {}
            _ => {
                fold_addr(a, d);
                fold_addr(b, d);
            }
        },
        ExprKind::Load(inner) => match &inner.kind {
            ExprKind::AddrLocal(v) => d.local_deps.push(*v),
            ExprKind::AddrGlobal(g) => d.global_deps.push(*g),
            _ => d.opaque = true,
        },
        ExprKind::Unary(_, a) | ExprKind::CastChar(a) => fold_addr(a, d),
        ExprKind::Assign { value, .. } => fold_addr(value, d),
        ExprKind::Call(fid, _) => d.call_deps.push(*fid),
        ExprKind::Builtin(b, _) => match b {
            Builtin::Malloc | Builtin::Realloc => d.direct |= REGION_HEAP,
            Builtin::Arg => {}
            _ => d.opaque = true,
        },
    }
}

/// Identifies a store through a named local pointer at constant offset
/// `off` — the key the SSA hoist planner uses for `*p` / `p[k]` stores.
/// `base` is the store's base-address expression (the full address for
/// offset-0 stores, the addend base otherwise).
fn ptr_store_target(base: &Expr, off: i16) -> Option<StoreTarget> {
    match &base.kind {
        ExprKind::Load(inner) => match inner.kind {
            ExprKind::AddrLocal(p) => Some(StoreTarget::Ptr(p, off)),
            _ => None,
        },
        _ => None,
    }
}

// ---- Section 9 hoist-target discovery ----

fn collect_hoist_targets_stmts(stmts: &[Stmt], out: &mut Vec<(StoreTarget, u32)>) {
    for s in stmts {
        match s {
            Stmt::Expr(e) => collect_hoist_targets_expr(e, out),
            Stmt::If(c, t, e) => {
                collect_hoist_targets_expr(c, out);
                collect_hoist_targets_stmts(t, out);
                collect_hoist_targets_stmts(e, out);
            }
            // Nested loops hoist into their own preheaders.
            Stmt::While(..) | Stmt::For(..) => {}
            Stmt::Return(Some(e)) => collect_hoist_targets_expr(e, out),
            Stmt::Return(None) | Stmt::Break | Stmt::Continue => {}
        }
    }
}

fn collect_hoist_targets_expr(e: &Expr, out: &mut Vec<(StoreTarget, u32)>) {
    match &e.kind {
        ExprKind::Assign { addr, value } => {
            match addr.kind {
                ExprKind::AddrLocal(i) => out.push((StoreTarget::Local(i), e.ty.access_width())),
                ExprKind::AddrGlobal(g) => out.push((StoreTarget::Global(g), e.ty.access_width())),
                _ => collect_hoist_targets_expr(addr, out),
            }
            collect_hoist_targets_expr(value, out);
        }
        ExprKind::Load(a) | ExprKind::Unary(_, a) | ExprKind::CastChar(a) => {
            collect_hoist_targets_expr(a, out)
        }
        ExprKind::Binary(_, a, b) | ExprKind::LogAnd(a, b) | ExprKind::LogOr(a, b) => {
            collect_hoist_targets_expr(a, out);
            collect_hoist_targets_expr(b, out);
        }
        ExprKind::Call(_, args) | ExprKind::Builtin(_, args) => {
            for a in args {
                collect_hoist_targets_expr(a, out);
            }
        }
        ExprKind::Const(_) | ExprKind::AddrLocal(_) | ExprKind::AddrGlobal(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower;
    use databp_machine::{Machine, NoHooks, StopReason};

    fn run(src: &str, args: &[i32]) -> (Vec<u8>, i32) {
        run_opts(src, args, &Options::plain())
    }

    fn run_opts(src: &str, args: &[i32], opts: &Options) -> (Vec<u8>, i32) {
        let hir = lower(src).expect("compile error");
        let compiled = generate(&hir, opts);
        let mut m = Machine::new();
        m.load(&compiled.program);
        m.set_args(args.to_vec());
        match m.run(&mut NoHooks, 50_000_000) {
            Ok(StopReason::Halted) => {}
            other => panic!(
                "unexpected stop: {other:?}\noutput so far: {:?}",
                String::from_utf8_lossy(m.output())
            ),
        }
        (m.take_output(), m.exit_code())
    }

    #[test]
    fn returns_exit_code() {
        let (_, code) = run("int main() { return 42; }", &[]);
        assert_eq!(code, 42);
    }

    #[test]
    fn arithmetic_and_precedence() {
        let (out, _) = run(
            r#"int main() {
                print_int(2 + 3 * 4);
                print_int((2 + 3) * 4);
                print_int(10 / 3);
                print_int(10 % 3);
                print_int(-7 / 2);
                print_int(1 << 10);
                print_int(-16 >> 2);
                print_int(5 & 3);
                print_int(5 | 3);
                print_int(5 ^ 3);
                print_int(~0);
                return 0;
            }"#,
            &[],
        );
        assert_eq!(out, b"14\n20\n3\n1\n-3\n1024\n-4\n1\n7\n6\n-1\n");
    }

    #[test]
    fn comparisons() {
        let (out, _) = run(
            r#"int main() {
                print_int(1 < 2); print_int(2 < 1); print_int(2 <= 2);
                print_int(3 > 2); print_int(2 >= 3);
                print_int(4 == 4); print_int(4 != 4);
                print_int(-1 < 0);
                return 0;
            }"#,
            &[],
        );
        assert_eq!(out, b"1\n0\n1\n1\n0\n1\n0\n1\n");
    }

    #[test]
    fn short_circuit_side_effects() {
        let (out, _) = run(
            r#"
            int hits;
            int bump() { hits = hits + 1; return 1; }
            int main() {
                hits = 0;
                if (0 && bump()) { print_int(99); }
                print_int(hits);
                if (1 || bump()) { print_int(7); }
                print_int(hits);
                print_int(2 && 3);
                print_int(0 || 0);
                return 0;
            }"#,
            &[],
        );
        assert_eq!(out, b"0\n7\n0\n1\n0\n");
    }

    #[test]
    fn loops_and_break_continue() {
        let (out, _) = run(
            r#"int main() {
                int i; int sum;
                sum = 0;
                for (i = 0; i < 10; i = i + 1) {
                    if (i == 3) continue;
                    if (i == 8) break;
                    sum = sum + i;
                }
                print_int(sum);
                while (sum > 20) sum = sum - 7;
                print_int(sum);
                return 0;
            }"#,
            &[],
        );
        // 0+1+2+4+5+6+7 = 25; 25-7 = 18
        assert_eq!(out, b"25\n18\n");
    }

    #[test]
    fn recursion() {
        let (out, _) = run(
            r#"
            int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
            int main() { print_int(fib(15)); return 0; }
            "#,
            &[],
        );
        assert_eq!(out, b"610\n");
    }

    #[test]
    fn globals_and_statics() {
        let (out, _) = run(
            r#"
            int g = 100;
            int counter() { static int n = 0; n = n + 1; return n; }
            int main() {
                g = g + 1;
                print_int(g);
                counter(); counter();
                print_int(counter());
                return 0;
            }"#,
            &[],
        );
        assert_eq!(out, b"101\n3\n");
    }

    #[test]
    fn arrays_pointers_structs() {
        let (out, _) = run(
            r#"
            struct Node { int val; struct Node *next; };
            int main() {
                int a[5];
                int i;
                int *p;
                struct Node *n;
                struct Node *m;
                for (i = 0; i < 5; i = i + 1) a[i] = i * i;
                p = a + 2;
                print_int(*p);        // 4
                print_int(p[2]);      // 16
                n = (struct Node*)malloc(sizeof(struct Node));
                m = (struct Node*)malloc(sizeof(struct Node));
                n->val = 11; n->next = m;
                m->val = 22; m->next = (struct Node*)0;
                print_int(n->next->val);  // 22
                print_int(n->val + m->val); // 33
                free((char*)n); free((char*)m);
                return 0;
            }"#,
            &[],
        );
        assert_eq!(out, b"4\n16\n22\n33\n");
    }

    #[test]
    fn char_semantics() {
        let (out, _) = run(
            r#"int main() {
                char c;
                char buf[4];
                c = 300;        // truncates to 44
                print_int(c);
                c = -1;
                print_int(c);   // sign-extends back to -1
                buf[0] = 'h'; buf[1] = 'i'; buf[2] = '\n'; buf[3] = '\0';
                print_str(buf);
                print_int((char)511);
                return 0;
            }"#,
            &[],
        );
        assert_eq!(out, b"44\n-1\nhi\n-1\n");
    }

    #[test]
    fn string_literals_and_args() {
        let (out, code) = run(
            r#"int main() {
                print_str("arg0=");
                print_int(arg(0));
                return arg(1);
            }"#,
            &[5, 9],
        );
        assert_eq!(out, b"arg0=5\n");
        assert_eq!(code, 9);
    }

    #[test]
    fn realloc_preserves_prefix() {
        let (out, _) = run(
            r#"int main() {
                int *p;
                p = (int*)malloc(8);
                p[0] = 123; p[1] = 456;
                p = (int*)realloc((char*)p, 40);
                p[9] = 789;
                print_int(p[0]); print_int(p[1]); print_int(p[9]);
                free((char*)p);
                return 0;
            }"#,
            &[],
        );
        assert_eq!(out, b"123\n456\n789\n");
    }

    #[test]
    fn address_of_and_swap() {
        let (out, _) = run(
            r#"
            void swap(int *a, int *b) { int t; t = *a; *a = *b; *b = t; }
            int main() {
                int x; int y;
                x = 1; y = 2;
                swap(&x, &y);
                print_int(x); print_int(y);
                return 0;
            }"#,
            &[],
        );
        assert_eq!(out, b"2\n1\n");
    }

    #[test]
    fn nested_calls_preserve_temporaries() {
        // Deep expression with calls in the middle: temps must be saved
        // around the inner calls.
        let (out, _) = run(
            r#"
            int id(int x) { return x; }
            int main() {
                print_int(1 + id(2 + id(3)) * id(4) - id(5));
                return 0;
            }"#,
            &[],
        );
        assert_eq!(out, b"16\n");
    }

    #[test]
    fn codepatch_inserts_chk_per_traced_store() {
        let hir = lower("int g; int main() { g = 1; g = 2; return g; }").unwrap();
        let plain = generate(&hir, &Options::plain());
        let cp = generate(&hir, &Options::codepatch());
        let chks = cp
            .program
            .code
            .iter()
            .filter(|i| matches!(i, Instr::Chk(..)))
            .count();
        // 2 global stores; main has no locals/params.
        assert_eq!(chks, 2);
        assert_eq!(plain.debug.traced_store_count, cp.debug.traced_store_count);
        // Outputs must be identical either way.
        let (o1, c1) = run_opts(
            "int g; int main() { g = 1; g = 2; return g; }",
            &[],
            &Options::plain(),
        );
        let (o2, c2) = run_opts(
            "int g; int main() { g = 1; g = 2; return g; }",
            &[],
            &Options::codepatch(),
        );
        assert_eq!((o1, c1), (o2, c2));
    }

    #[test]
    fn untraced_stores_cover_prologue_and_spills() {
        let hir = lower(
            r#"
            int f(int x) { return x; }
            int main() { return 1 + f(2); }
            "#,
        )
        .unwrap();
        let c = generate(&hir, &Options::plain());
        // Each function has 2 prologue saves; the call inside the addition
        // spills one live temp.
        assert!(
            c.debug.untraced_store_pcs.len() >= 5,
            "{:?}",
            c.debug.untraced_store_pcs
        );
        // Untraced pcs point at actual store instructions.
        for &pc in &c.debug.untraced_store_pcs {
            let idx = ((pc - CODE_BASE) / 4) as usize;
            assert!(
                c.program.code[idx].is_store(),
                "pc {pc:#x} is {:?}",
                c.program.code[idx]
            );
        }
    }

    #[test]
    fn loopopt_tags_invariant_scalar_stores() {
        let src = r#"
            int g;
            int main() {
                int i; int acc;
                int a[4];
                acc = 0;
                for (i = 0; i < 10; i = i + 1) {
                    acc = acc + i;   // hoistable: scalar local
                    g = acc;         // hoistable: scalar global
                    a[i % 4] = i;    // NOT hoistable: computed address
                }
                return acc + g + a[0];
            }
        "#;
        let hir = lower(src).unwrap();
        let c = generate(&hir, &Options::codepatch_loopopt());
        // Targets: i (step), acc, g — three hoist groups.
        assert_eq!(c.debug.loopopts.len(), 3, "{:?}", c.debug.loopopts);
        for l in &c.debug.loopopts {
            assert!(!l.body_pcs.is_empty());
            // Preheader pcs point at chk instructions.
            let idx = ((l.preheader_pc - CODE_BASE) / 4) as usize;
            assert!(matches!(c.program.code[idx], Instr::Chk(..)));
        }
        // Semantics unchanged.
        let (o1, c1) = run_opts(src, &[], &Options::plain());
        let (o2, c2) = run_opts(src, &[], &Options::codepatch_loopopt());
        assert_eq!((o1, c1), (o2, c2));
    }

    #[test]
    fn exit_builtin_stops_program() {
        let (out, code) = run(
            "int main() { print_int(1); exit(33); print_int(2); return 0; }",
            &[],
        );
        assert_eq!(out, b"1\n");
        assert_eq!(code, 33);
    }

    #[test]
    fn large_constants_load() {
        let (out, _) = run(
            "int main() { print_int(1000000); print_int(-1000000); print_int(0x7fffffff); return 0; }",
            &[],
        );
        assert_eq!(out, b"1000000\n-1000000\n2147483647\n");
    }

    const SITES_SRC: &str = r#"
        int g;
        int main() {
            int x;
            int a[4];
            int *p;
            x = 1;
            g = 2;
            p = a;
            p[1] = 3;
            *p = 4;
            return x + a[1] + g;
        }
    "#;

    #[test]
    fn store_sites_cover_every_traced_store() {
        let hir = lower(SITES_SRC).unwrap();
        for opts in [
            Options::plain(),
            Options::codepatch(),
            Options::nop_padding(),
        ] {
            let c = generate(&hir, &opts);
            let sites = &c.debug.store_sites;
            assert_eq!(sites.len() as u32, c.debug.traced_store_count);
            // Emission order = pc-ascending, every pc is a real store.
            for w in sites.windows(2) {
                assert!(w[0].pc < w[1].pc);
            }
            for s in sites {
                let idx = ((s.pc - CODE_BASE) / 4) as usize;
                assert!(matches!(c.program.code[idx], Instr::Sb(..) | Instr::Sw(..)));
                if opts.codepatch {
                    let chk = s.chk_pc.expect("codepatch builds record chk pcs");
                    assert_eq!(chk + 4, s.pc, "chk immediately precedes its store");
                    let cidx = ((chk - CODE_BASE) / 4) as usize;
                    assert!(matches!(c.program.code[cidx], Instr::Chk(..)));
                } else {
                    assert_eq!(s.chk_pc, None);
                }
            }
        }
    }

    #[test]
    fn store_sites_align_across_builds() {
        let hir = lower(SITES_SRC).unwrap();
        let plain = generate(&hir, &Options::plain());
        let cp = generate(&hir, &Options::codepatch());
        let (a, b) = (&plain.debug.store_sites, &cp.debug.store_sites);
        assert_eq!(a.len(), b.len());
        for (sa, sb) in a.iter().zip(b) {
            assert_eq!(sa.func, sb.func);
            assert_eq!(sa.addr, sb.addr, "address summaries match by index");
        }
    }

    #[test]
    fn store_sites_summarize_addresses() {
        let hir = lower(SITES_SRC).unwrap();
        let c = generate(&hir, &Options::plain());
        let sites = &c.debug.store_sites;
        // x = 1; g = 2; p = a; p[1] = 3; *p = 4;  (main: x=0, a=1, p=2)
        assert_eq!(sites.len(), 5);
        assert_eq!(sites[0].addr, AddrDesc::stack_slot());
        assert_eq!(sites[1].addr.direct, REGION_GLOBAL);
        assert!(sites[1].addr.local_deps.is_empty());
        assert_eq!(sites[2].addr, AddrDesc::stack_slot());
        for s in &sites[3..5] {
            assert_eq!(s.addr.direct, 0);
            assert_eq!(s.addr.local_deps, vec![2], "address flows from p");
            assert!(!s.addr.opaque);
        }
    }

    #[test]
    fn store_sites_mark_untrackable_addresses_opaque() {
        let src = r#"
            int main() {
                int *t;
                int **q;
                t = malloc(8);
                q = &t;
                *(*q + 4) = 7;
                *(malloc(4)) = 8;
                return 0;
            }
        "#;
        let hir = lower(src).unwrap();
        let c = generate(&hir, &Options::plain());
        let sites = &c.debug.store_sites;
        assert_eq!(sites.len(), 4);
        // `*(*q + 4)`: the inner load is through a computed address.
        assert!(sites[2].addr.opaque);
        // `*(malloc(4))`: direct heap base, fully tracked.
        assert_eq!(sites[3].addr.direct, REGION_HEAP);
        assert!(!sites[3].addr.opaque);
    }

    const SSA_HOIST_SRC: &str = r#"
        int g;
        int main() {
            int i; int s;
            int *p;
            int a[4];
            p = a;
            s = 0;
            for (i = 0; i < 8; i = i + 1) {
                *p = i;          // hoistable: invariant promotable pointer
                p[1] = i + 1;    // hoistable: same pointer, offset 4
                s = s + *p;      // hoistable: scalar local
                g = s;           // hoistable: scalar global
            }
            return s + g + a[0] + a[1];
        }
    "#;

    #[test]
    fn ssa_hoist_emits_pointer_preheaders() {
        let hir = lower(SSA_HOIST_SRC).unwrap();
        let c = generate(&hir, &Options::codepatch_ssa());
        // Targets: *p, p[1], s, g, and the step's i — five hoist groups.
        assert_eq!(c.debug.hoists.len(), 5, "{:?}", c.debug.hoists);
        let chk_pcs: Vec<u32> = c
            .debug
            .store_sites
            .iter()
            .filter_map(|s| s.chk_pc)
            .collect();
        for h in &c.debug.hoists {
            let idx = ((h.preheader_pc - CODE_BASE) / 4) as usize;
            assert!(matches!(c.program.code[idx], Instr::Chk(..)));
            assert!(!h.body_pcs.is_empty(), "{:?}", c.debug.hoists);
            for &pc in &h.body_pcs {
                assert!(chk_pcs.contains(&pc), "body pc is a store-site chk");
            }
        }
        // The SSA build does not populate the Section 9 groups.
        assert!(c.debug.loopopts.is_empty());
        // Semantics unchanged.
        let (o1, c1) = run_opts(SSA_HOIST_SRC, &[], &Options::plain());
        let (o2, c2) = run_opts(SSA_HOIST_SRC, &[], &Options::codepatch_ssa());
        assert_eq!((o1, c1), (o2, c2));
    }

    #[test]
    fn ssa_hoist_skips_reassigned_pointers() {
        let src = r#"
            int main() {
                int i;
                int *q;
                int a[8];
                q = a;
                for (i = 0; i < 8; i = i + 1) {
                    *q = i;
                    q = q + 1;
                }
                return a[3];
            }
        "#;
        let hir = lower(src).unwrap();
        let c = generate(&hir, &Options::codepatch_ssa());
        // q is reassigned in the body: only q itself and the step's i
        // hoist, never the *q store.
        assert_eq!(c.debug.hoists.len(), 2, "{:?}", c.debug.hoists);
        let (o1, c1) = run_opts(src, &[], &Options::plain());
        let (o2, c2) = run_opts(src, &[], &Options::codepatch_ssa());
        assert_eq!((o1, c1), (o2, c2));
    }

    #[test]
    fn ssa_build_aligns_and_leaves_other_builds_untouched() {
        let hir = lower(SSA_HOIST_SRC).unwrap();
        let cp = generate(&hir, &Options::codepatch());
        let ssa = generate(&hir, &Options::codepatch_ssa());
        // Store sites align by index across cp and cp+ssa builds.
        assert_eq!(cp.debug.store_sites.len(), ssa.debug.store_sites.len());
        for (a, b) in cp.debug.store_sites.iter().zip(&ssa.debug.store_sites) {
            assert_eq!(a.func, b.func);
            assert_eq!(a.addr, b.addr);
        }
        // Builds without ssa_hoist record no hoist groups...
        assert!(cp.debug.hoists.is_empty());
        assert!(generate(&hir, &Options::codepatch_loopopt())
            .debug
            .hoists
            .is_empty());
        // ...and ssa_hoist without codepatch is a no-op.
        let plain = generate(&hir, &Options::plain());
        let plain_ssa = generate(
            &hir,
            &Options {
                ssa_hoist: true,
                ..Options::plain()
            },
        );
        assert_eq!(plain.program.code, plain_ssa.program.code);
        assert!(plain_ssa.debug.hoists.is_empty());
    }
}
