//! The typed, resolved intermediate representation.
//!
//! Sema lowers the AST into this form, normalizing away all surface
//! conveniences:
//!
//! * every lvalue is an explicit **address expression**;
//! * pointer/array arithmetic carries explicit scaling;
//! * member access is address + constant offset;
//! * `sizeof`, casts between word types, and constant folding are gone.
//!
//! Both the code generator and the reference interpreter consume this IR,
//! which is what makes differential testing between them meaningful: they
//! share name resolution and layout but nothing else.

pub use crate::ast::{BinOp, UnOp};
use crate::types::Type;

/// A resolved struct layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructLayout {
    /// Struct tag.
    pub name: String,
    /// Members with resolved offsets.
    pub members: Vec<MemberLayout>,
    /// Total size in bytes (padded to word alignment).
    pub size: u32,
}

/// One struct member.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemberLayout {
    /// Member name.
    pub name: String,
    /// Member type.
    pub ty: Type,
    /// Byte offset from the struct base.
    pub offset: u32,
}

/// A global (file-scope variable, function-static, or string literal).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalDef {
    /// Name (synthesized for literals).
    pub name: String,
    /// Type.
    pub ty: Type,
    /// Byte offset from `DATA_BASE`.
    pub offset: u32,
    /// Size in bytes.
    pub size: u32,
    /// Initial contents (`size` bytes).
    pub init: Vec<u8>,
    /// Owning function for `static` locals, `None` for file scope.
    pub owner: Option<u16>,
    /// True for string-literal storage (never a monitor-session
    /// candidate — it is read-only by construction).
    pub is_literal: bool,
}

/// One local automatic variable (parameters included).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalDef {
    /// Name.
    pub name: String,
    /// Type.
    pub ty: Type,
    /// Byte offset of the variable's base relative to the frame pointer
    /// (always negative).
    pub offset: i32,
    /// Size in bytes.
    pub size: u32,
    /// True for parameters.
    pub is_param: bool,
}

/// A function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncDef {
    /// Name.
    pub name: String,
    /// Return type.
    pub ret: Type,
    /// Number of parameters (the first `params` entries of `locals`).
    pub params: u16,
    /// All local automatics, parameters first.
    pub locals: Vec<LocalDef>,
    /// Total frame bytes for locals (below the save area).
    pub frame_size: u32,
    /// Body.
    pub body: Vec<Stmt>,
}

/// The whole checked program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hir {
    /// Struct layouts (indexed by [`Type::Struct`]).
    pub structs: Vec<StructLayout>,
    /// Globals, statics, and literals; `GlobalDef::offset` ascending.
    pub globals: Vec<GlobalDef>,
    /// Functions; index is the function id.
    pub funcs: Vec<FuncDef>,
    /// Total data segment size in bytes.
    pub data_size: u32,
    /// Function id of `main`.
    pub main: u16,
}

impl Hir {
    /// Sizes of all structs, for [`Type::size`].
    pub fn struct_sizes(&self) -> Vec<u32> {
        self.structs.iter().map(|s| s.size).collect()
    }
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// Evaluate for effect.
    Expr(Expr),
    /// `if` with lowered branches.
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `while`.
    While(Expr, Vec<Stmt>),
    /// `for`; all clauses optional.
    For(Option<Expr>, Option<Expr>, Option<Expr>, Vec<Stmt>),
    /// `return`.
    Return(Option<Expr>),
    /// `break` out of the innermost loop.
    Break,
    /// `continue` the innermost loop.
    Continue,
}

/// Builtin functions backed by machine system calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Builtin {
    /// `char *malloc(int n)`
    Malloc,
    /// `void free(char *p)`
    Free,
    /// `char *realloc(char *p, int n)`
    Realloc,
    /// `void print_int(int v)`
    PrintInt,
    /// `void print_char(int c)`
    PrintChar,
    /// `void print_str(char *s)`
    PrintStr,
    /// `int arg(int i)`
    Arg,
    /// `void exit(int code)`
    Exit,
}

/// A typed expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Expr {
    /// Result type (value type; address expressions are pointers).
    pub ty: Type,
    /// Node.
    pub kind: ExprKind,
}

/// Expression kinds after lowering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExprKind {
    /// Constant.
    Const(i32),
    /// `fp + locals[i].offset` — address of local `i` of the current
    /// function.
    AddrLocal(u16),
    /// `DATA_BASE + globals[i].offset`.
    AddrGlobal(u32),
    /// Load `ty` (1 or 4 bytes, char sign-extends) from the address.
    Load(Box<Expr>),
    /// Unary arithmetic.
    Unary(UnOp, Box<Expr>),
    /// Binary arithmetic/comparison (operands are word values; pointer
    /// scaling was made explicit by sema). Never `LogAnd`/`LogOr`.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Short-circuit `&&`.
    LogAnd(Box<Expr>, Box<Expr>),
    /// Short-circuit `||`.
    LogOr(Box<Expr>, Box<Expr>),
    /// Store `value` (width from `ty`) to `addr`; yields the stored
    /// value.
    Assign {
        /// Address expression.
        addr: Box<Expr>,
        /// Value expression.
        value: Box<Expr>,
    },
    /// Truncate to signed char (explicit `(char)` casts only; stores to
    /// char lvalues truncate implicitly).
    CastChar(Box<Expr>),
    /// Call a user function by id.
    Call(u16, Vec<Expr>),
    /// Call a builtin.
    Builtin(Builtin, Vec<Expr>),
}

impl Expr {
    /// A constant int expression.
    pub fn konst(v: i32) -> Expr {
        Expr {
            ty: Type::Int,
            kind: ExprKind::Const(v),
        }
    }
}
