//! Compilation errors.

use std::error::Error;
use std::fmt;

/// A compilation failure with the 1-based source line it was detected on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// 1-based line number (0 when no position applies, e.g. missing
    /// `main`).
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl CompileError {
    /// Creates an error at `line`.
    pub fn new(line: u32, message: impl Into<String>) -> Self {
        CompileError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "error: {}", self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_with_and_without_line() {
        assert_eq!(CompileError::new(3, "bad").to_string(), "line 3: bad");
        assert_eq!(
            CompileError::new(0, "no main").to_string(),
            "error: no main"
        );
    }
}
