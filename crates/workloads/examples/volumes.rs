//! Prints trace/base statistics for every workload at full scale.
fn main() {
    for w in databp_workloads::Workload::all() {
        let p = databp_workloads::prepare(&w).unwrap();
        let s = p.trace.stats();
        println!(
            "{:6} instr={:9} base_ms={:8.2} writes={:8} installs={:8} heap={:6} events={:9}",
            w.name,
            p.instructions,
            p.base_us / 1000.0,
            s.writes,
            s.installs,
            s.heap_objects,
            p.trace.len()
        );
    }
}
