//! Pins the columnar DBPT v2 codec against the row-oriented v1 codec
//! on **real** traces — every bundled workload (Table 1 set plus the
//! benchmark corpus) rather than the synthetic property-test traces in
//! `databp-trace`. A trace that survives v1 encode → v1 decode → v2
//! encode → v2 decode unchanged is exactly the `repro trace convert`
//! path, so this is the lossless-conversion guarantee the CLI relies
//! on.

use databp_trace::{read_any, read_binary, write_binary, write_columnar};
use databp_workloads::{prepare, Workload};

#[test]
fn v1_to_v2_conversion_is_lossless_on_all_bundled_workloads() {
    for w in Workload::all().into_iter().chain(Workload::bench()) {
        let w = w.scaled_down();
        let p = prepare(&w).expect("workload runs");
        assert!(!p.trace.is_empty(), "{}: empty trace", w.name);

        // v1 round trip (the legacy on-disk form)…
        let mut v1 = Vec::new();
        write_binary(&p.trace, &mut v1).expect("v1 encode");
        let from_v1 = read_binary(&mut v1.as_slice()).expect("v1 decode");
        assert_eq!(from_v1, p.trace, "{}: v1 round trip diverged", w.name);

        // …converted to v2 (what `repro trace convert` does)…
        let mut v2 = Vec::new();
        write_columnar(&from_v1, b"converted", &mut v2).expect("v2 encode");
        let (from_v2, meta) = read_any(&v2).expect("v2 decode");
        assert_eq!(from_v2, p.trace, "{}: v1->v2 conversion diverged", w.name);
        assert_eq!(meta, b"converted");

        // …and `read_any` serves both formats from their magic bytes.
        let (any_v1, v1_meta) = read_any(&v1).expect("read_any on v1");
        assert_eq!(any_v1, p.trace);
        assert!(v1_meta.is_empty(), "v1 has no meta slot");
    }
}
