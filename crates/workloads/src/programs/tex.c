// tex — the CommonTeX analogue (paper: CTEX formatting a 4-page document).
//
// A paragraph formatter: it synthesizes a document of words, measures
// them, breaks paragraphs into justified lines with a greedy
// minimum-raggedness pass, tracks page state in function statics, and
// accumulates a layout checksum. Faithful to the CTEX row of Table 1:
// plenty of locals, statics, and globals — and **zero heap allocation**,
// so this workload produces no OneHeap/AllHeapInFunc sessions.
//
// arg(0) = number of paragraphs (default 24).

int LINE_WIDTH = 64;

int seed;
char word[24];
int word_len;
char line[80];
int line_len;
int line_words;
int out_checksum;
int total_lines;
int total_pages;
int badness_sum;

int rnd(int limit) {
    seed = seed * 1103515245 + 12345;
    return ((seed >> 16) & 32767) % limit;
}

// Synthesizes the next word of the document into word[].
void next_word() {
    int i;
    word_len = 3 + rnd(8);
    for (i = 0; i < word_len; i = i + 1) {
        word[i] = 'a' + rnd(26);
    }
    word[word_len] = '\0';
}

// Hyphenation-ish: a long word may split; returns the split point or 0.
int split_point(int width_left) {
    static int hyphens;
    if (word_len > 7 && width_left >= 4 && width_left < word_len + 1) {
        hyphens = hyphens + 1;
        return width_left - 1;
    }
    return 0;
}

void flush_line() {
    int i;
    int gaps;
    int pad;
    static int lines_on_page;
    // Justify: distribute padding into the checksum (we do not store the
    // padded text, only account for it, like a galley pass).
    gaps = line_words - 1;
    if (gaps < 1) gaps = 1;
    pad = LINE_WIDTH - line_len;
    if (pad < 0) pad = 0;
    badness_sum = badness_sum + pad * pad;
    for (i = 0; i < line_len; i = i + 1) {
        out_checksum = (out_checksum * 31 + line[i] + pad / gaps) % 1000003;
        if (out_checksum < 0) out_checksum = out_checksum + 1000003;
    }
    total_lines = total_lines + 1;
    lines_on_page = lines_on_page + 1;
    if (lines_on_page == 40) {
        lines_on_page = 0;
        total_pages = total_pages + 1;
    }
    line_len = 0;
    line_words = 0;
}

void append_word(int from, int upto) {
    int i;
    if (line_words > 0) {
        line[line_len] = ' ';
        line_len = line_len + 1;
    }
    for (i = from; i < upto; i = i + 1) {
        line[line_len] = word[i];
        line_len = line_len + 1;
    }
    line_words = line_words + 1;
}

void paragraph(int words) {
    int w;
    int room;
    int sp;
    for (w = 0; w < words; w = w + 1) {
        next_word();
        room = LINE_WIDTH - line_len;
        if (line_words > 0) room = room - 1;
        if (word_len <= room) {
            append_word(0, word_len);
        } else {
            sp = split_point(room);
            if (sp > 0) {
                append_word(0, sp);
                line[line_len] = '-';
                line_len = line_len + 1;
                flush_line();
                append_word(sp, word_len);
            } else {
                flush_line();
                append_word(0, word_len);
            }
        }
    }
    if (line_len > 0) flush_line();
    // Paragraph separation.
    total_lines = total_lines + 1;
}

int main() {
    int paras;
    int p;
    paras = arg(0);
    if (paras <= 0) paras = 24;
    seed = 19920401;
    line_len = 0;
    line_words = 0;
    for (p = 0; p < paras; p = p + 1) {
        paragraph(60 + rnd(60));
    }
    print_str("tex: checksum=");
    print_int(out_checksum);
    print_str("tex: lines=");
    print_int(total_lines);
    print_str("tex: pages=");
    print_int(total_pages);
    print_str("tex: badness=");
    print_int(badness_sum);
    return 0;
}
