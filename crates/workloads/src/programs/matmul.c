// matmul — dense integer matrix multiply, the classic replay-bench
// kernel shape: three nested loops streaming writes through a global
// result matrix. Few objects, few functions, enormous write density on
// a handful of pages — the best case for the lane-packed replay sweep.
//
// arg(0) = matrix edge N (default 20, N*N <= 1600)
// arg(1) = multiply rounds (default 60)

int N;
int a[1600];
int b[1600];
int c[1600];
int seed;
int rounds_done;

int rnd(int limit) {
    seed = seed * 1103515245 + 12345;
    return ((seed >> 16) & 32767) % limit;
}

void fill() {
    int i;
    for (i = 0; i < N * N; i = i + 1) {
        a[i] = rnd(256) - 128;
        b[i] = rnd(256) - 128;
    }
}

void multiply() {
    int i; int j; int k; int acc;
    for (i = 0; i < N; i = i + 1) {
        for (j = 0; j < N; j = j + 1) {
            acc = 0;
            for (k = 0; k < N; k = k + 1) {
                acc = acc + a[i * N + k] * b[k * N + j];
            }
            c[i * N + j] = acc % 65536;
        }
    }
    rounds_done = rounds_done + 1;
}

// Feed the product back into the operands so every round computes on
// fresh values and nothing is dead code.
void stir() {
    int i;
    for (i = 0; i < N * N; i = i + 1) {
        a[i] = (a[i] + c[i]) % 251 - 125;
        b[i] = (b[i] ^ (c[i] >> 3)) % 199;
    }
}

int checksum() {
    int i; int h;
    h = 0;
    for (i = 0; i < N * N; i = i + 1) {
        h = (h * 31 + c[i]) % 1000003;
    }
    if (h < 0) h = h + 1000003;
    return h;
}

int main() {
    int rounds; int r; int sum;
    N = arg(0);
    if (N <= 0) N = 20;
    if (N * N > 1600) N = 40;
    rounds = arg(1);
    if (rounds <= 0) rounds = 60;
    seed = 4242;
    fill();
    sum = 0;
    for (r = 0; r < rounds; r = r + 1) {
        multiply();
        stir();
        sum = (sum + checksum()) % 1000003;
    }
    print_str("matmul: sum=");
    print_int(sum);
    print_str("matmul: rounds=");
    print_int(rounds_done);
    print_str("matmul: c0=");
    print_int(c[0]);
    return 0;
}
