// qcd — the QCD analogue (paper: quantum chromodynamic simulation from
// the Perfect Club suite).
//
// A 2-D lattice field relaxation in fixed point: repeated checkerboard
// sweeps update every site from its four neighbours plus a quenched
// random gauge term, with periodic boundaries, followed by a plaquette-
// style reduction. Everything lives in global arrays — like the paper's
// QCD it allocates **nothing on the heap**, has few functions, and its
// inner loops hammer induction variables and array elements (the paper's
// expensive NativeHardware sessions).
//
// arg(0) = lattice edge L (default 24, L*L sites)
// arg(1) = sweeps (default 20)

int L;
int field[1600];
int gauge[1600];
int seed;
int sweeps_done;

int rnd(int limit) {
    seed = seed * 1103515245 + 12345;
    return ((seed >> 16) & 32767) % limit;
}

void init_lattice() {
    int i;
    for (i = 0; i < L * L; i = i + 1) {
        field[i] = rnd(2048) - 1024;
        gauge[i] = rnd(512) - 256;
    }
}

int idx(int x, int y) {
    if (x < 0) x = x + L;
    if (x >= L) x = x - L;
    if (y < 0) y = y + L;
    if (y >= L) y = y - L;
    return y * L + x;
}

void sweep(int parity) {
    int x; int y; int s; int nb;
    for (y = 0; y < L; y = y + 1) {
        for (x = 0; x < L; x = x + 1) {
            if ((x + y) % 2 != parity) continue;
            s = idx(x, y);
            nb = field[idx(x - 1, y)] + field[idx(x + 1, y)]
               + field[idx(x, y - 1)] + field[idx(x, y + 1)];
            field[s] = (nb + gauge[s] * 4) / 4 - (field[s] >> 4);
        }
    }
    sweeps_done = sweeps_done + 1;
}

int plaquette() {
    int x; int y; int acc;
    static int evaluations;
    acc = 0;
    for (y = 0; y < L; y = y + 1) {
        for (x = 0; x < L; x = x + 1) {
            acc = acc + field[idx(x, y)] * field[idx(x + 1, y)] / 1024
                      + field[idx(x, y)] * field[idx(x, y + 1)] / 1024;
            acc = acc % 1000003;
        }
    }
    evaluations = evaluations + 1;
    if (acc < 0) acc = acc + 1000003;
    return acc;
}

int main() {
    int sweeps; int s;
    int action;
    L = arg(0);
    if (L <= 0) L = 24;
    if (L * L > 1600) L = 40;
    sweeps = arg(1);
    if (sweeps <= 0) sweeps = 20;
    seed = 777;
    init_lattice();
    action = 0;
    for (s = 0; s < sweeps; s = s + 1) {
        sweep(0);
        sweep(1);
        action = (action + plaquette()) % 1000003;
    }
    print_str("qcd: action=");
    print_int(action);
    print_str("qcd: sweeps=");
    print_int(sweeps_done);
    print_str("qcd: f0=");
    print_int(field[0]);
    return 0;
}
