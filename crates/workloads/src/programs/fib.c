// fib — deep plain recursion plus a memoized sweep. Where matmul is
// all writes, fib is all *frame traffic*: every call installs and
// removes monitored locals and emits enter/exit records, exercising the
// replay engine's install/remove path and the trace codec's run-length
// tag columns (long E/X runs) rather than the write sweep.
//
// arg(0) = fibonacci index n (default 19)
// arg(1) = repetitions (default 25)

int calls;
int memo[64];
int memo_hits;

int fib(int n) {
    int left; int right;
    calls = calls + 1;
    if (n < 2) return n;
    left = fib(n - 1);
    right = fib(n - 2);
    return (left + right) % 1000003;
}

int fib_memo(int n) {
    int v;
    if (n < 2) return n;
    if (memo[n] != 0) {
        memo_hits = memo_hits + 1;
        return memo[n];
    }
    v = (fib_memo(n - 1) + fib_memo(n - 2)) % 1000003;
    memo[n] = v;
    return v;
}

int main() {
    int n; int reps; int r; int i; int sum;
    n = arg(0);
    if (n <= 0) n = 19;
    if (n > 24) n = 24;
    reps = arg(1);
    if (reps <= 0) reps = 25;
    sum = 0;
    for (r = 0; r < reps; r = r + 1) {
        sum = (sum + fib(n)) % 1000003;
        for (i = 0; i < 64; i = i + 1) memo[i] = 0;
        sum = (sum + fib_memo(n + 5)) % 1000003;
    }
    print_str("fib: sum=");
    print_int(sum);
    print_str("fib: calls=");
    print_int(calls);
    print_str("fib: memo_hits=");
    print_int(memo_hits);
    return 0;
}
