// bitwise — bit-twiddling kernel: xorshift PRNG streams, software
// popcount, and parity folds over a global word array. All shifts,
// masks, and xors — the operation mix of hashing and compression inner
// loops — with every round rewriting the whole array in place.
//
// arg(0) = words in the working set (default 1536, <= 2048)
// arg(1) = rounds (default 120)

int W;
int bits[2048];
int seed;
int rounds_done;

int popcount(int v) {
    int c;
    c = 0;
    while (v != 0) {
        v = v & (v - 1);
        c = c + 1;
    }
    return c;
}

void fill() {
    int i;
    for (i = 0; i < W; i = i + 1) {
        seed = seed * 1103515245 + 12345;
        bits[i] = (seed >> 8) & 16777215;
    }
}

// One xorshift step per word, mixed with its neighbour so the stream
// isn't W independent generators.
void churn() {
    int i; int v;
    for (i = 0; i < W; i = i + 1) {
        v = bits[i];
        v = v ^ (v << 13);
        v = v ^ (v >> 17);
        v = v ^ (v << 5);
        v = v ^ (bits[(i + 1) % W] >> 3);
        bits[i] = v & 16777215;
    }
    rounds_done = rounds_done + 1;
}

int weigh() {
    int i; int total; int parity;
    total = 0;
    parity = 0;
    for (i = 0; i < W; i = i + 1) {
        total = (total + popcount(bits[i])) % 1000003;
        parity = parity ^ bits[i];
    }
    return (total + (parity & 1023)) % 1000003;
}

int main() {
    int rounds; int r; int sum;
    W = arg(0);
    if (W <= 0) W = 1536;
    if (W > 2048) W = 2048;
    rounds = arg(1);
    if (rounds <= 0) rounds = 120;
    seed = 2026;
    fill();
    sum = 0;
    for (r = 0; r < rounds; r = r + 1) {
        churn();
        sum = (sum + weigh()) % 1000003;
    }
    print_str("bitwise: sum=");
    print_int(sum);
    print_str("bitwise: rounds=");
    print_int(rounds_done);
    print_str("bitwise: b0=");
    print_int(bits[0]);
    return 0;
}
