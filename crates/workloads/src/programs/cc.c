// cc — the GCC analogue (paper: GCC v1.4 compiling rtl.c).
//
// A miniature compiler front end: it lexes and parses an arithmetic
// expression language with variables and let-bindings from a
// synthetically generated source buffer, builds ASTs on the heap, interns
// symbols into a heap-allocated symbol table, folds constants, and
// "emits" stack code into a static buffer. Like a real compiler it mixes
// hot induction variables, a large population of short-lived heap nodes,
// global cursors, and deep recursion — the profile that gives GCC its
// spread of monitor sessions in the paper.
//
// arg(0) = number of "files" to compile (default harness value 6).

int NKINDS = 5;

// --- source buffer (generated, not parsed from a literal) ---
char src[4096];
int src_len;
int src_pos;
int seed;

// --- token state ---
int tok_kind;   // 0 eof, 1 num, 2 ident, 3 punct
int tok_value;
int tok_punct;
char tok_name[16];

// --- emitted "object code" ---
int emit_buf[2048];
int emit_len;

// --- statistics the compiler prints, like -ftime-report ---
int nodes_built;
int symbols_interned;
int folds_done;

struct Node {
    int kind;            // 0 num, 1 var, 2 binop, 3 let
    int value;           // number / operator char / symbol id
    struct Node *left;
    struct Node *right;
};

struct Sym {
    int id;
    int hash;
    int value;
    struct Sym *next;
};

struct Sym *symtab;
int next_sym_id;

int rnd(int limit) {
    seed = seed * 1103515245 + 12345;
    return ((seed >> 16) & 32767) % limit;
}

void put(char c) {
    if (src_len < 4095) {
        src[src_len] = c;
        src_len = src_len + 1;
    }
}

// Emit a random expression of the given depth into src[].
void gen_expr(int depth) {
    int choice;
    if (depth <= 0) {
        choice = rnd(3);
        if (choice == 0) {
            put('a' + rnd(6));          // variable
        } else {
            put('1' + rnd(9));          // small number
            if (rnd(2)) put('0' + rnd(10));
        }
        return;
    }
    choice = rnd(4);
    if (choice == 0) {
        put('(');
        gen_expr(depth - 1);
        put(')');
        return;
    }
    gen_expr(depth - 1);
    if (choice == 1) put('+');
    if (choice == 2) put('*');
    if (choice == 3) put('-');
    gen_expr(depth - 1);
}

void gen_source(int stmts) {
    int i;
    src_len = 0;
    for (i = 0; i < stmts; i = i + 1) {
        put('a' + rnd(6));
        put('=');
        gen_expr(3);
        put(';');
    }
    put('\0');
    src_pos = 0;
}

// --- lexer ---
void next_token() {
    char c;
    int n;
    c = src[src_pos];
    while (c == ' ') {
        src_pos = src_pos + 1;
        c = src[src_pos];
    }
    if (c == '\0') {
        tok_kind = 0;
        return;
    }
    if (c >= '0' && c <= '9') {
        tok_kind = 1;
        tok_value = 0;
        while (c >= '0' && c <= '9') {
            tok_value = tok_value * 10 + (c - '0');
            src_pos = src_pos + 1;
            c = src[src_pos];
        }
        return;
    }
    if (c >= 'a' && c <= 'z') {
        tok_kind = 2;
        n = 0;
        while (c >= 'a' && c <= 'z') {
            if (n < 15) {
                tok_name[n] = c;
                n = n + 1;
            }
            src_pos = src_pos + 1;
            c = src[src_pos];
        }
        tok_name[n] = '\0';
        return;
    }
    tok_kind = 3;
    tok_punct = c;
    src_pos = src_pos + 1;
}

// --- symbol table (heap linked list, like obstack-less GCC) ---
int hash_name(char *s) {
    int h;
    int i;
    h = 0;
    for (i = 0; s[i]; i = i + 1) h = h * 31 + s[i];
    if (h < 0) h = -h;
    return h;
}

struct Sym *intern(char *name) {
    struct Sym *p;
    int h;
    h = hash_name(name);
    p = symtab;
    while (p != (struct Sym*)0) {
        if (p->hash == h) return p;
        p = p->next;
    }
    p = (struct Sym*)malloc(sizeof(struct Sym));
    p->id = next_sym_id;
    next_sym_id = next_sym_id + 1;
    p->hash = h;
    p->value = 0;
    p->next = symtab;
    symtab = p;
    symbols_interned = symbols_interned + 1;
    return p;
}

// --- parser (recursive descent, heap AST) ---
struct Node *new_node(int kind, int value) {
    struct Node *n;
    n = (struct Node*)malloc(sizeof(struct Node));
    n->kind = kind;
    n->value = value;
    n->left = (struct Node*)0;
    n->right = (struct Node*)0;
    nodes_built = nodes_built + 1;
    return n;
}

struct Node *parse_factor() {
    struct Node *n;
    struct Sym *s;
    if (tok_kind == 1) {
        n = new_node(0, tok_value);
        next_token();
        return n;
    }
    if (tok_kind == 2) {
        s = intern(tok_name);
        n = new_node(1, s->id);
        next_token();
        return n;
    }
    if (tok_kind == 3 && tok_punct == '(') {
        next_token();
        n = parse_expr();
        if (tok_kind == 3 && tok_punct == ')') next_token();
        return n;
    }
    // error recovery: treat as zero
    next_token();
    return new_node(0, 0);
}

struct Node *parse_term() {
    struct Node *n;
    struct Node *b;
    n = parse_factor();
    while (tok_kind == 3 && tok_punct == '*') {
        next_token();
        b = new_node(2, '*');
        b->left = n;
        b->right = parse_factor();
        n = b;
    }
    return n;
}

struct Node *parse_expr() {
    struct Node *n;
    struct Node *b;
    n = parse_term();
    while (tok_kind == 3 && (tok_punct == '+' || tok_punct == '-')) {
        int op;
        op = tok_punct;
        next_token();
        b = new_node(2, op);
        b->left = n;
        b->right = parse_term();
        n = b;
    }
    return n;
}

// --- constant folding pass ---
struct Node *fold(struct Node *n) {
    if (n == (struct Node*)0) return n;
    n->left = fold(n->left);
    n->right = fold(n->right);
    if (n->kind == 2 && n->left != (struct Node*)0 && n->right != (struct Node*)0) {
        if (n->left->kind == 0 && n->right->kind == 0) {
            int v;
            if (n->value == '+') v = n->left->value + n->right->value;
            if (n->value == '-') v = n->left->value - n->right->value;
            if (n->value == '*') v = n->left->value * n->right->value;
            free((char*)n->left);
            free((char*)n->right);
            n->kind = 0;
            n->value = v;
            n->left = (struct Node*)0;
            n->right = (struct Node*)0;
            folds_done = folds_done + 1;
        }
    }
    return n;
}

// --- code "emission" (stack machine) ---
void emit(int word) {
    if (emit_len < 2048) {
        emit_buf[emit_len] = word;
        emit_len = emit_len + 1;
    }
}

void codegen(struct Node *n) {
    if (n == (struct Node*)0) return;
    if (n->kind == 0) {
        emit(1);
        emit(n->value);
        return;
    }
    if (n->kind == 1) {
        emit(2);
        emit(n->value);
        return;
    }
    codegen(n->left);
    codegen(n->right);
    emit(3);
    emit(n->value);
}

void free_ast(struct Node *n) {
    if (n == (struct Node*)0) return;
    free_ast(n->left);
    free_ast(n->right);
    free((char*)n);
}

int compile_file(int stmts) {
    struct Node *ast;
    struct Sym *lhs;
    int checksum;
    gen_source(stmts);
    next_token();
    emit_len = 0;
    checksum = 0;
    while (tok_kind != 0) {
        if (tok_kind == 2) {
            lhs = intern(tok_name);
            next_token();
            if (tok_kind == 3 && tok_punct == '=') next_token();
            ast = parse_expr();
            ast = fold(ast);
            codegen(ast);
            emit(4);
            emit(lhs->id);
            free_ast(ast);
            if (tok_kind == 3 && tok_punct == ';') next_token();
        } else {
            next_token();
        }
    }
    {
        int i;
        for (i = 0; i < emit_len; i = i + 1) {
            checksum = checksum * 17 + emit_buf[i];
            checksum = checksum % 1000003;
            if (checksum < 0) checksum = checksum + 1000003;
        }
    }
    return checksum;
}

void free_symtab() {
    struct Sym *p;
    struct Sym *q;
    p = symtab;
    while (p != (struct Sym*)0) {
        q = p->next;
        free((char*)p);
        p = q;
    }
    symtab = (struct Sym*)0;
}

int main() {
    int files;
    int f;
    int total;
    files = arg(0);
    if (files <= 0) files = 6;
    seed = 20260706;
    symtab = (struct Sym*)0;
    next_sym_id = 0;
    total = 0;
    for (f = 0; f < files; f = f + 1) {
        total = total + compile_file(40 + f * 5);
        total = total % 1000003;
    }
    print_str("cc: checksum=");
    print_int(total);
    print_str("cc: nodes=");
    print_int(nodes_built);
    print_str("cc: syms=");
    print_int(symbols_interned);
    print_str("cc: folds=");
    print_int(folds_done);
    free_symtab();
    return 0;
}
