// spice — the Spice 3c1 analogue (paper: transient analysis of a
// differential pair, 20ns at 5ns steps).
//
// Fixed-point (Q16) nodal analysis of an RC ladder driven by a step
// source: each timestep stamps the conductance matrix, runs Gaussian
// elimination with partial pivoting, and back-substitutes node voltages.
// The matrices and vectors are heap-allocated once and reused — few,
// long-lived heap objects, matching Spice's moderate OneHeap session
// count against its enormous write volume.
//
// arg(0) = number of circuit nodes (default 10)
// arg(1) = number of timesteps (default 14)

int FP = 65536;          // Q16 fixed point

int seed;
int pivots_swapped;
int steps_done;
int g_dt;                // timestep (Q16)
int g_vin;               // source voltage (Q16)

int rnd(int limit) {
    seed = seed * 1103515245 + 12345;
    return ((seed >> 16) & 32767) % limit;
}

int fpmul(int a, int b) {
    // (a * b) >> 16 with headroom management: compute in pieces to avoid
    // overflow for our small magnitudes.
    int ah; int al; int r;
    ah = a >> 8;
    al = a & 255;
    r = ah * b + ((al * (b >> 8)) >> 0);
    return (r >> 8) + ((al * (b & 255)) >> 16);
}

int fpdiv(int a, int b) {
    int sign; int q; int rem; int i;
    if (b == 0) return 0;
    sign = 1;
    if (a < 0) { a = -a; sign = -sign; }
    if (b < 0) { b = -b; sign = -sign; }
    // Long division producing 16 fractional bits.
    q = (a / b) << 16;
    rem = a % b;
    for (i = 0; i < 16; i = i + 1) {
        rem = rem * 2;
        q = q << 0;
        if (rem >= b) {
            rem = rem - b;
            q = q | (1 << (15 - i));
        }
    }
    return q * sign;
}

// Stamp the conductance matrix for an RC ladder (timestep g_dt, source
// g_vin).
void stamp(int *a, int *rhs, int *v_prev, int n) {
    int i; int j;
    int g;      // series conductance
    int gc;     // capacitor companion conductance  C/dt
    g = FP / 2;                 // 0.5 S
    gc = fpdiv(FP / 4, g_dt);     // C = 0.25
    for (i = 0; i < n; i = i + 1) {
        for (j = 0; j < n; j = j + 1) {
            a[i * n + j] = 0;
        }
        rhs[i] = 0;
    }
    for (i = 0; i < n; i = i + 1) {
        // Series resistor to previous node (node -1 is the source).
        a[i * n + i] = a[i * n + i] + g;
        if (i > 0) {
            a[i * n + (i - 1)] = a[i * n + (i - 1)] - g;
            a[(i - 1) * n + i] = a[(i - 1) * n + i] - g;
            a[(i - 1) * n + (i - 1)] = a[(i - 1) * n + (i - 1)] + g;
        } else {
            rhs[0] = rhs[0] + fpmul(g, g_vin);
        }
        // Capacitor to ground: companion model g_c + history current.
        a[i * n + i] = a[i * n + i] + gc;
        rhs[i] = rhs[i] + fpmul(gc, v_prev[i]);
    }
}

// Gaussian elimination with partial pivoting, in place.
void solve(int *a, int *rhs, int *x, int n) {
    int col; int row; int best; int i; int j; int t; int factor;
    for (col = 0; col < n; col = col + 1) {
        best = col;
        for (row = col + 1; row < n; row = row + 1) {
            int av; int bv;
            av = a[row * n + col];
            if (av < 0) av = -av;
            bv = a[best * n + col];
            if (bv < 0) bv = -bv;
            if (av > bv) best = row;
        }
        if (best != col) {
            pivots_swapped = pivots_swapped + 1;
            for (j = 0; j < n; j = j + 1) {
                t = a[col * n + j];
                a[col * n + j] = a[best * n + j];
                a[best * n + j] = t;
            }
            t = rhs[col];
            rhs[col] = rhs[best];
            rhs[best] = t;
        }
        for (row = col + 1; row < n; row = row + 1) {
            if (a[col * n + col] == 0) continue;
            factor = fpdiv(a[row * n + col], a[col * n + col]);
            for (j = col; j < n; j = j + 1) {
                a[row * n + j] = a[row * n + j] - fpmul(factor, a[col * n + j]);
            }
            rhs[row] = rhs[row] - fpmul(factor, rhs[col]);
        }
    }
    for (i = n - 1; i >= 0; i = i - 1) {
        int acc;
        acc = rhs[i];
        for (j = i + 1; j < n; j = j + 1) {
            acc = acc - fpmul(a[i * n + j], x[j]);
        }
        if (a[i * n + i] != 0) {
            x[i] = fpdiv(acc, a[i * n + i]);
        } else {
            x[i] = 0;
        }
    }
}

int main() {
    int n; int steps; int s; int i;
    int *a; int *rhs; int *v; int *v_prev;
    int checksum;
    n = arg(0);
    if (n <= 0) n = 10;
    steps = arg(1);
    if (steps <= 0) steps = 14;
    seed = 3991;
    a = (int*)malloc(n * n * sizeof(int));
    rhs = (int*)malloc(n * sizeof(int));
    v = (int*)malloc(n * sizeof(int));
    v_prev = (int*)malloc(n * sizeof(int));
    for (i = 0; i < n; i = i + 1) v_prev[i] = 0;
    g_dt = FP / 8;
    g_vin = 5 * FP;
    checksum = 0;
    for (s = 0; s < steps; s = s + 1) {
        stamp(a, rhs, v_prev, n);
        solve(a, rhs, v, n);
        for (i = 0; i < n; i = i + 1) {
            v_prev[i] = v[i];
            checksum = (checksum * 13 + (v[i] >> 8)) % 1000003;
            if (checksum < 0) checksum = checksum + 1000003;
        }
        steps_done = steps_done + 1;
    }
    print_str("spice: checksum=");
    print_int(checksum);
    print_str("spice: v0=");
    print_int(v_prev[0] / (FP / 1000));   // millivolts-ish
    print_str("spice: pivots=");
    print_int(pivots_swapped);
    print_str("spice: steps=");
    print_int(steps_done);
    free((char*)a);
    free((char*)rhs);
    free((char*)v);
    free((char*)v_prev);
    return 0;
}
