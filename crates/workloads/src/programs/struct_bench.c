// struct_bench — heap-allocated record updates: a linked arena of
// fixed-shape structs repeatedly mutated field by field. Mirrors the
// object-churn benchmarks used for write-barrier papers: many distinct
// heap objects (one monitor install per node), pointer-chasing walks,
// and strided field writes that scatter across pages instead of
// streaming like matmul.
//
// arg(0) = node count (default 500)
// arg(1) = update passes (default 160)

struct Node {
    int key;
    int value;
    int weight;
    int visits;
    struct Node *next;
};

struct Node *head;
int seed;
int nodes_built;
int relinks;

int rnd(int limit) {
    seed = seed * 1103515245 + 12345;
    return ((seed >> 16) & 32767) % limit;
}

void build(int n) {
    int i;
    struct Node *p;
    head = (struct Node*)0;
    for (i = 0; i < n; i = i + 1) {
        p = (struct Node*)malloc(sizeof(struct Node));
        p->key = i;
        p->value = rnd(4096);
        p->weight = rnd(64) + 1;
        p->visits = 0;
        p->next = head;
        head = p;
        nodes_built = nodes_built + 1;
    }
}

// One pass: bump every node's fields from its successor's, so updates
// depend on pointer order and cannot be collapsed.
int pass(int round) {
    int acc;
    struct Node *p; struct Node *q;
    acc = 0;
    p = head;
    while (p != (struct Node*)0) {
        q = p->next;
        if (q != (struct Node*)0) {
            p->value = (p->value + q->value * p->weight + round) % 65536;
        } else {
            p->value = (p->value + round) % 65536;
        }
        p->visits = p->visits + 1;
        acc = (acc + p->value) % 1000003;
        p = q;
    }
    return acc;
}

// Every few passes, rotate the first node to the back to change the
// walk order — pointer writes, not just field writes.
void rotate() {
    struct Node *p; struct Node *first;
    if (head == (struct Node*)0) return;
    first = head;
    if (first->next == (struct Node*)0) return;
    head = first->next;
    p = head;
    while (p->next != (struct Node*)0) p = p->next;
    p->next = first;
    first->next = (struct Node*)0;
    relinks = relinks + 1;
}

void teardown() {
    struct Node *p;
    while (head != (struct Node*)0) {
        p = head;
        head = head->next;
        free((char*)p);
    }
}

int main() {
    int n; int passes; int r; int sum;
    n = arg(0);
    if (n <= 0) n = 500;
    passes = arg(1);
    if (passes <= 0) passes = 160;
    seed = 31337;
    build(n);
    sum = 0;
    for (r = 0; r < passes; r = r + 1) {
        sum = (sum + pass(r)) % 1000003;
        if (r % 8 == 7) rotate();
    }
    teardown();
    print_str("struct_bench: sum=");
    print_int(sum);
    print_str("struct_bench: nodes=");
    print_int(nodes_built);
    print_str("struct_bench: relinks=");
    print_int(relinks);
    return 0;
}
