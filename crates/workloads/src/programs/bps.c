// bps — the BPS analogue (paper: Bayesian problem solver arranging 8
// numbers on a 3x3 grid by sliding into the empty cell).
//
// A best-first 8-puzzle solver: search nodes are heap-allocated, kept in
// a priority-ordered open list keyed by Manhattan-distance heuristic plus
// path cost, expanded into up to four sliding moves, and checked against
// a closed list of visited grid hashes. This allocates *thousands* of
// small heap nodes — the profile behind BPS's 4184 OneHeap sessions in
// Table 1.
//
// arg(0) = scramble moves for the initial grid (default 26)
// arg(1) = node expansion budget (default 1400)

struct State {
    int grid[9];
    int empty;           // index of the empty cell
    int g;               // path cost
    int h;               // heuristic
    struct State *next;  // open-list link
};

int seed;
int nodes_allocated;
int nodes_expanded;
int nodes_pruned;
int solved_at;

int closed[4096];        // visited hash table (open addressing, no heap)
int closed_count;

struct State *open_list;

int rnd(int limit) {
    seed = seed * 1103515245 + 12345;
    return ((seed >> 16) & 32767) % limit;
}

int manhattan(int *grid) {
    int i; int v; int d; int t;
    d = 0;
    for (i = 0; i < 9; i = i + 1) {
        v = grid[i];
        if (v == 0) continue;
        t = (i / 3) - ((v - 1) / 3);
        if (t < 0) t = -t;
        d = d + t;
        t = (i % 3) - ((v - 1) % 3);
        if (t < 0) t = -t;
        d = d + t;
    }
    return d;
}

int hash_grid(int *grid) {
    int i; int h;
    h = 0;
    for (i = 0; i < 9; i = i + 1) h = h * 9 + grid[i];
    if (h < 0) h = -h;
    return h;
}

// Returns 1 when the grid hash was already visited; records it otherwise.
int visited(int *grid) {
    int h; int slot; int probes;
    h = hash_grid(grid);
    slot = h % 4096;
    probes = 0;
    while (probes < 4096) {
        if (closed[slot] == 0) {
            closed[slot] = h + 1;
            closed_count = closed_count + 1;
            return 0;
        }
        if (closed[slot] == h + 1) return 1;
        slot = (slot + 1) % 4096;
        probes = probes + 1;
    }
    return 1; // table full: treat as visited
}

struct State *new_state(int *grid, int g) {
    struct State *s;
    int i;
    s = (struct State*)malloc(sizeof(struct State));
    for (i = 0; i < 9; i = i + 1) s->grid[i] = grid[i];
    s->empty = 0;
    for (i = 0; i < 9; i = i + 1) {
        if (grid[i] == 0) s->empty = i;
    }
    s->g = g;
    s->h = manhattan(grid);
    s->next = (struct State*)0;
    nodes_allocated = nodes_allocated + 1;
    return s;
}

// Evidence-weighted priority: the Bayesian solver of the paper combines
// a weak heuristic belief with path cost; halving h keeps it admissible
// but widens the search frontier considerably.
int fval(struct State *s) {
    return s->g + s->h / 2;
}

// Priority-ordered insert by f = g + h/2.
void push_open(struct State *s) {
    struct State *p;
    int f;
    f = fval(s);
    if (open_list == (struct State*)0 || fval(open_list) >= f) {
        s->next = open_list;
        open_list = s;
        return;
    }
    p = open_list;
    while (p->next != (struct State*)0 && fval(p->next) < f) {
        p = p->next;
    }
    s->next = p->next;
    p->next = s;
}

struct State *pop_open() {
    struct State *s;
    s = open_list;
    if (s != (struct State*)0) open_list = s->next;
    return s;
}

// Tries to slide the tile at (empty + delta) into the empty cell.
void expand_move(struct State *s, int delta, int valid) {
    int tmp[9];
    int i; int from;
    struct State *child;
    if (!valid) return;
    from = s->empty + delta;
    for (i = 0; i < 9; i = i + 1) tmp[i] = s->grid[i];
    tmp[s->empty] = tmp[from];
    tmp[from] = 0;
    if (visited(tmp)) {
        nodes_pruned = nodes_pruned + 1;
        return;
    }
    child = new_state(tmp, s->g + 1);
    push_open(child);
}

void expand(struct State *s) {
    int e;
    e = s->empty;
    expand_move(s, -3, e >= 3);
    expand_move(s, 3, e < 6);
    expand_move(s, -1, e % 3 != 0);
    expand_move(s, 1, e % 3 != 2);
    nodes_expanded = nodes_expanded + 1;
}

void scramble(int *grid, int moves) {
    int i; int e; int d; int ok; int t;
    for (i = 0; i < 9; i = i + 1) grid[i] = (i + 1) % 9;
    // grid = 1..8,0: solved with empty at index 8.
    e = 8;
    for (i = 0; i < moves; i = i + 1) {
        d = rnd(4);
        ok = 0;
        if (d == 0 && e >= 3) { t = -3; ok = 1; }
        if (d == 1 && e < 6) { t = 3; ok = 1; }
        if (d == 2 && e % 3 != 0) { t = -1; ok = 1; }
        if (d == 3 && e % 3 != 2) { t = 1; ok = 1; }
        if (ok) {
            grid[e] = grid[e + t];
            grid[e + t] = 0;
            e = e + t;
        }
    }
}

void free_open() {
    struct State *p;
    p = pop_open();
    while (p != (struct State*)0) {
        free((char*)p);
        p = pop_open();
    }
}

int main() {
    int start[9];
    int budget;
    int moves;
    struct State *s;
    solved_at = -1;
    seed = 8888;
    moves = arg(0);
    if (moves <= 0) moves = 26;
    scramble(start, moves);
    budget = arg(1);
    if (budget <= 0) budget = 1400;
    open_list = (struct State*)0;
    push_open(new_state(start, 0));
    while (budget > 0) {
        s = pop_open();
        if (s == (struct State*)0) break;
        if (s->h == 0) {
            solved_at = s->g;
            free((char*)s);
            break;
        }
        expand(s);
        free((char*)s);
        budget = budget - 1;
    }
    free_open();
    print_str("bps: solved_at=");
    print_int(solved_at);
    print_str("bps: allocated=");
    print_int(nodes_allocated);
    print_str("bps: expanded=");
    print_int(nodes_expanded);
    print_str("bps: pruned=");
    print_int(nodes_pruned);
    print_str("bps: closed=");
    print_int(closed_count);
    return 0;
}
