//! The five benchmark workloads (Section 6), as `tinyc` programs.
//!
//! The paper's programs — GCC, CommonTeX, Spice, QCD, BPS — are
//! unavailable in this environment (and their SPARC toolchain more so),
//! so each is substituted by a synthetic program written to match its
//! *monitor-session profile*, the property the experiments actually
//! depend on:
//!
//! | Name | Paper analogue | Profile mirrored |
//! |------|----------------|------------------|
//! | `cc` | GCC 1.4 on rtl.c | many functions, heap AST/symbol nodes, global cursors, recursion |
//! | `tex` | CommonTeX 2.9 | statics + buffers, **no heap** (zero OneHeap sessions in Table 1) |
//! | `spice` | Spice 3c1 | few long-lived heap arrays, numeric inner loops |
//! | `qcd` | Perfect-Club QCD | global lattice arrays, **no heap**, hot induction variables |
//! | `bps` | Bayesian 8-puzzle solver | thousands of small heap search nodes |
//!
//! Every workload is deterministic (embedded LCG seeds) and parameterized
//! by machine arguments so tests can run scaled-down instances.

use databp_machine::{Machine, MachineError, StopReason, StoreBatcher};
use databp_tinyc::{compile, Compiled, Options};
use databp_trace::{write_columnar, EventSink, Trace, Tracer};
use std::sync::{Arc, OnceLock};

/// Store events are coalesced through a [`StoreBatcher`] before they
/// reach the tracer, amortizing the per-event hook dispatch.
const STORE_BATCH: usize = 256;

/// One benchmark workload: a source program plus run parameters.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Short name (`cc`, `tex`, `spice`, `qcd`, `bps`).
    pub name: &'static str,
    /// The paper's program this one stands in for.
    pub paper_analogue: &'static str,
    /// `tinyc` source text.
    pub source: &'static str,
    /// Machine arguments (workload scale).
    pub args: Vec<i32>,
    /// Instruction budget for one run.
    pub max_steps: u64,
}

const CC_SRC: &str = include_str!("programs/cc.c");
const TEX_SRC: &str = include_str!("programs/tex.c");
const SPICE_SRC: &str = include_str!("programs/spice.c");
const QCD_SRC: &str = include_str!("programs/qcd.c");
const BPS_SRC: &str = include_str!("programs/bps.c");
const MATMUL_SRC: &str = include_str!("programs/matmul.c");
const FIB_SRC: &str = include_str!("programs/fib.c");
const STRUCT_BENCH_SRC: &str = include_str!("programs/struct_bench.c");
const BITWISE_SRC: &str = include_str!("programs/bitwise.c");

impl Workload {
    /// The five workloads at full (harness) scale, in Table 1 row order.
    pub fn all() -> Vec<Workload> {
        vec![
            Workload {
                name: "cc",
                paper_analogue: "GCC v1.4 compiling rtl.c",
                source: CC_SRC,
                args: vec![6],
                max_steps: 80_000_000,
            },
            Workload {
                name: "tex",
                paper_analogue: "CommonTeX v2.9 on a 4-page document",
                source: TEX_SRC,
                args: vec![24],
                max_steps: 80_000_000,
            },
            Workload {
                name: "spice",
                paper_analogue: "Spice v3c1 transient analysis",
                source: SPICE_SRC,
                args: vec![10, 14],
                max_steps: 80_000_000,
            },
            Workload {
                name: "qcd",
                paper_analogue: "Perfect-Club QCD test simulation",
                source: QCD_SRC,
                args: vec![24, 20],
                max_steps: 80_000_000,
            },
            Workload {
                name: "bps",
                paper_analogue: "BPS 8-puzzle Bayesian solver",
                source: BPS_SRC,
                args: vec![400, 1500],
                max_steps: 80_000_000,
            },
        ]
    }

    /// The replay-benchmark corpus: classic kernel shapes (dense
    /// matrix multiply, deep recursion, heap record churn, bit
    /// twiddling) ported to `tinyc`. These are **not** part of the
    /// paper's Table 1 set ([`Workload::all`]) — they exist to feed the
    /// vectorized replay path traces with contrasting event mixes, and
    /// `repro perf` times `sim.replay` over them.
    pub fn bench() -> Vec<Workload> {
        vec![
            Workload {
                name: "matmul",
                paper_analogue: "dense integer matrix multiply kernel",
                source: MATMUL_SRC,
                args: vec![20, 60],
                max_steps: 80_000_000,
            },
            Workload {
                name: "fib",
                paper_analogue: "recursive fibonacci (frame-traffic kernel)",
                source: FIB_SRC,
                args: vec![19, 25],
                max_steps: 80_000_000,
            },
            Workload {
                name: "struct_bench",
                paper_analogue: "heap record-update kernel",
                source: STRUCT_BENCH_SRC,
                args: vec![500, 160],
                max_steps: 80_000_000,
            },
            Workload {
                name: "bitwise",
                paper_analogue: "xorshift/popcount bit-twiddling kernel",
                source: BITWISE_SRC,
                args: vec![1536, 120],
                max_steps: 80_000_000,
            },
        ]
    }

    /// Looks up a workload by name, in the Table 1 set first, then the
    /// benchmark corpus.
    pub fn by_name(name: &str) -> Option<Workload> {
        Workload::all()
            .into_iter()
            .chain(Workload::bench())
            .find(|w| w.name == name)
    }

    /// A stable 64-bit content hash of the program and its inputs:
    /// name, source text, machine arguments, and step budget — every
    /// field that determines the phase-1 trace. Two workloads hash
    /// equal exactly when a trace of one is a valid trace of the other,
    /// which is what lets `databp-server`'s trace cache key on it.
    ///
    /// The hash is FNV-1a over a length-prefixed field encoding, so it
    /// is identical across runs, hosts, and (absent workload changes)
    /// builds. The pinned values in this crate's tests exist to make
    /// any accidental drift — which would silently split or poison the
    /// server's cache keyspace — a loud test failure.
    pub fn workload_hash(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        fn eat(mut h: u64, bytes: &[u8]) -> u64 {
            for &b in bytes {
                h = (h ^ b as u64).wrapping_mul(PRIME);
            }
            h
        }
        // Length-prefix variable-size fields so ("ab","c") and
        // ("a","bc") cannot collide.
        fn eat_field(h: u64, bytes: &[u8]) -> u64 {
            eat(eat(h, &(bytes.len() as u64).to_le_bytes()), bytes)
        }
        let mut h = eat_field(OFFSET, self.name.as_bytes());
        h = eat_field(h, self.source.as_bytes());
        h = eat(h, &(self.args.len() as u64).to_le_bytes());
        for &a in &self.args {
            h = eat(h, &a.to_le_bytes());
        }
        eat(h, &self.max_steps.to_le_bytes())
    }

    /// A scaled-down variant for unit tests (same code paths, smaller
    /// trace).
    pub fn scaled_down(mut self) -> Workload {
        self.args = match self.name {
            "cc" => vec![2],
            "tex" => vec![5],
            "spice" => vec![6, 4],
            "qcd" => vec![10, 4],
            "bps" => vec![400, 150],
            "matmul" => vec![8, 6],
            "fib" => vec![12, 3],
            "struct_bench" => vec![80, 20],
            "bitwise" => vec![256, 10],
            _ => self.args,
        };
        self
    }
}

/// A workload compiled, traced, and timed — everything the harness needs
/// for every experiment.
///
/// Only the uninstrumented `plain` build is compiled eagerly (it is the
/// one the trace run needs). The three instrumented variants —
/// [`Prepared::codepatch`], [`Prepared::codepatch_loopopt`],
/// [`Prepared::nop_padded`] — compile lazily on first use, so the hot
/// `analyze` path (trace + replay only) never pays for them.
#[derive(Debug, Clone)]
pub struct Prepared {
    /// The workload description.
    pub workload: Workload,
    /// Uninstrumented build (NH / VM / TP runs, trace generation).
    pub plain: Compiled,
    /// CodePatch-instrumented build (lazy).
    codepatch: OnceLock<Compiled>,
    /// CodePatch build with Section 9 loop optimization info (lazy).
    codepatch_loopopt: OnceLock<Compiled>,
    /// CodePatch build with SSA-planned check hoisting (lazy).
    codepatch_ssa: OnceLock<Compiled>,
    /// Nop-padded build for the Section 3.3 dynamic-patching hybrid
    /// (lazy).
    nop_padded: OnceLock<Compiled>,
    /// DBPT v2 encoding of `trace`, zone maps included (lazy) — what
    /// the query pushdown scans instead of the decoded events.
    columnar: OnceLock<Arc<Vec<u8>>>,
    /// The phase-1 program event trace.
    pub trace: Trace,
    /// Base (uninstrumented, unmonitored) execution time, microseconds.
    pub base_us: f64,
    /// Instructions retired by the base run.
    pub instructions: u64,
    /// Program output (for workload integrity checks).
    pub output: Vec<u8>,
}

impl Prepared {
    /// Reassembles a `Prepared` from persisted parts — the warm-start
    /// path of the replay service's trace store, which saves the trace
    /// plus the base-run measurements and recompiles only the plain
    /// build. Instrumented builds stay lazy, exactly as after
    /// [`prepare`].
    pub fn from_parts(
        workload: Workload,
        plain: Compiled,
        trace: Trace,
        base_us: f64,
        instructions: u64,
        output: Vec<u8>,
    ) -> Prepared {
        Prepared {
            workload,
            plain,
            codepatch: OnceLock::new(),
            codepatch_loopopt: OnceLock::new(),
            codepatch_ssa: OnceLock::new(),
            nop_padded: OnceLock::new(),
            columnar: OnceLock::new(),
            trace,
            base_us,
            instructions,
            output,
        }
    }

    fn build<'a>(&self, slot: &'a OnceLock<Compiled>, opts: Options, what: &str) -> &'a Compiled {
        slot.get_or_init(|| {
            compile(self.workload.source, &opts).unwrap_or_else(|e| {
                panic!(
                    "workload {} failed to compile ({what}): {e}",
                    self.workload.name
                )
            })
        })
    }

    /// The CodePatch-instrumented build, compiled on first use.
    pub fn codepatch(&self) -> &Compiled {
        self.build(&self.codepatch, Options::codepatch(), "cp")
    }

    /// The CodePatch + Section 9 loop-optimization build, compiled on
    /// first use.
    pub fn codepatch_loopopt(&self) -> &Compiled {
        self.build(
            &self.codepatch_loopopt,
            Options::codepatch_loopopt(),
            "cp+opt",
        )
    }

    /// The CodePatch + SSA hoist build, compiled on first use.
    pub fn codepatch_ssa(&self) -> &Compiled {
        self.build(&self.codepatch_ssa, Options::codepatch_ssa(), "cp-ssa")
    }

    /// The nop-padded build for dynamic patching, compiled on first use.
    pub fn nop_padded(&self) -> &Compiled {
        self.build(&self.nop_padded, Options::nop_padding(), "nop")
    }

    /// The trace's DBPT v2 encoding (zone maps included), built on
    /// first use and shared thereafter — query pushdown scans these
    /// bytes directly instead of re-walking `trace.events()`.
    ///
    /// # Panics
    ///
    /// Panics if the in-memory encode fails, which it cannot (the sink
    /// is a `Vec`).
    pub fn columnar_bytes(&self) -> &Arc<Vec<u8>> {
        self.columnar.get_or_init(|| {
            let mut buf = Vec::new();
            write_columnar(&self.trace, &[], &mut buf).expect("in-memory encode");
            Arc::new(buf)
        })
    }
}

/// Compiles and runs `workload` once under the tracer — the paper's
/// phase 1 — returning the trace plus base timing.
///
/// # Errors
///
/// [`MachineError`] if the run faults or exhausts `max_steps`.
///
/// # Panics
///
/// Panics if the embedded workload source fails to compile (a build bug,
/// covered by tests).
pub fn prepare(workload: &Workload) -> Result<Prepared, MachineError> {
    let plain = compile_plain(workload);
    let (mut prepared, trace) = run_traced(workload, plain, Trace::new())?;
    prepared.trace = trace;
    Ok(prepared)
}

/// Compiles the uninstrumented build of `workload`.
///
/// # Panics
///
/// Panics if the embedded workload source fails to compile (a build bug,
/// covered by tests).
pub fn compile_plain(workload: &Workload) -> Compiled {
    compile(workload.source, &Options::plain())
        .unwrap_or_else(|e| panic!("workload {} failed to compile: {e}", workload.name))
}

/// Runs `workload`'s pre-compiled `plain` build once under the tracer,
/// emitting the event stream into `sink` — phase 1 against an arbitrary
/// [`EventSink`], which is how the streaming pipeline overlaps replay
/// with the run. The returned [`Prepared`] carries an **empty** `trace`;
/// the caller decides whether the sink materialized one (as
/// [`prepare`]'s [`Trace`] sink does).
///
/// # Errors
///
/// [`MachineError`] if the run faults or exhausts `max_steps`.
///
/// # Panics
///
/// Panics if the run stops for any reason other than halting.
pub fn run_traced<S: EventSink>(
    workload: &Workload,
    plain: Compiled,
    sink: S,
) -> Result<(Prepared, S), MachineError> {
    let _t = databp_telemetry::time!("workloads.trace_run");
    let mut m = Machine::new();
    m.load(&plain.program);
    m.set_args(workload.args.clone());
    let mut tracer = Tracer::with_sink(plain.debug.frame_map(), plain.debug.global_specs(), sink)
        .with_untraced(plain.debug.untraced_store_pcs.clone());
    tracer.begin();
    let stop = {
        let mut batcher = StoreBatcher::new(&mut tracer, STORE_BATCH);
        let stop = m.run(&mut batcher, workload.max_steps)?;
        batcher.flush();
        stop
    };
    assert_eq!(
        stop,
        StopReason::Halted,
        "workload {} did not halt",
        workload.name
    );
    let sink = tracer.finish();
    Ok((
        Prepared {
            workload: workload.clone(),
            base_us: m.cost().total_us(m.cost_model()),
            instructions: m.cost().instructions,
            output: m.take_output(),
            plain,
            codepatch: OnceLock::new(),
            codepatch_loopopt: OnceLock::new(),
            codepatch_ssa: OnceLock::new(),
            nop_padded: OnceLock::new(),
            columnar: OnceLock::new(),
            trace: Trace::new(),
        },
        sink,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use databp_machine::NoHooks;
    use databp_tinyc::interpret;
    use databp_trace::{Event, ObjectDesc};

    fn run_scaled(name: &str) -> Prepared {
        prepare(&Workload::by_name(name).unwrap().scaled_down()).unwrap()
    }

    #[test]
    fn workload_hashes_are_pinned_stable_and_distinct() {
        // Pinned trace-cache keys (full-scale, scaled-down). If this
        // fails because a workload's source or inputs changed, update
        // the pins: the point of the failure is that stale cached
        // traces must never be served for new content.
        let pinned: [(&str, u64, u64); 5] = [
            ("cc", 0x3016_f34b_cbf6_7f40, 0xa40e_5ca2_36ff_4c24),
            ("tex", 0xde7b_4b87_0b2a_bd17, 0xa25e_fb29_5f09_d76a),
            ("spice", 0x55c6_dcc2_6d32_2f21, 0x4d5b_04ba_acbb_ef27),
            ("qcd", 0x5fc8_1783_439e_50f4, 0x6991_73dd_0744_bd46),
            ("bps", 0x13ca_3077_b14e_d200, 0x9d9a_e06b_bde7_712d),
        ];
        let mut seen = std::collections::HashSet::new();
        for (name, full, small) in pinned {
            let w = Workload::by_name(name).unwrap();
            assert_eq!(
                w.workload_hash(),
                full,
                "{name}: full-scale hash drifted (got {:#018x})",
                w.workload_hash()
            );
            let s = w.clone().scaled_down();
            assert_eq!(
                s.workload_hash(),
                small,
                "{name}: scaled-down hash drifted (got {:#018x})",
                s.workload_hash()
            );
            // Hashing is pure: same content, same key.
            assert_eq!(
                w.workload_hash(),
                Workload::by_name(name).unwrap().workload_hash()
            );
            assert!(seen.insert(full), "{name}: full hash collides");
            assert!(seen.insert(small), "{name}: small hash collides");
        }
    }

    #[test]
    fn all_five_workloads_exist() {
        let names: Vec<_> = Workload::all().iter().map(|w| w.name).collect();
        assert_eq!(names, ["cc", "tex", "spice", "qcd", "bps"]);
        assert!(Workload::by_name("nope").is_none());
    }

    #[test]
    fn bench_corpus_exists_and_resolves_by_name() {
        let names: Vec<_> = Workload::bench().iter().map(|w| w.name).collect();
        assert_eq!(names, ["matmul", "fib", "struct_bench", "bitwise"]);
        for name in names {
            assert_eq!(Workload::by_name(name).unwrap().name, name);
        }
        // The Table 1 set is untouched by the corpus.
        assert_eq!(Workload::all().len(), 5);
    }

    #[test]
    fn bench_hashes_are_pinned_stable_and_distinct() {
        // Pinned trace-store keys for the benchmark corpus
        // (full-scale, scaled-down) — same contract as the Table 1
        // pins: drift must fail loudly, because stale store entries
        // would otherwise warm-start wrong traces.
        let pinned: [(&str, u64, u64); 4] = [
            ("matmul", 0x07c6_7cc5_ca05_ae5e, 0xa420_c900_2c91_1c08),
            ("fib", 0x1caa_ad3c_de12_f8a4, 0x286d_de09_a79c_9dc1),
            ("struct_bench", 0xf344_d9b5_b19c_9201, 0x00c6_858f_3532_296e),
            ("bitwise", 0x2d04_1757_a3cc_b353, 0x39a5_1394_f7df_9b30),
        ];
        let mut seen = std::collections::HashSet::new();
        for (name, full, small) in pinned {
            let w = Workload::by_name(name).unwrap();
            assert_eq!(
                w.workload_hash(),
                full,
                "{name}: full-scale hash drifted (got {:#018x})",
                w.workload_hash()
            );
            let s = w.clone().scaled_down();
            assert_eq!(
                s.workload_hash(),
                small,
                "{name}: scaled-down hash drifted (got {:#018x})",
                s.workload_hash()
            );
            assert!(seen.insert(full), "{name}: full hash collides");
            assert!(seen.insert(small), "{name}: small hash collides");
        }
    }

    #[test]
    fn bench_workloads_compile_run_and_match_interpreter() {
        for w in Workload::bench() {
            let w = w.scaled_down();
            let p = prepare(&w).unwrap();
            assert!(!p.output.is_empty(), "{} produced no output", w.name);
            let hir = databp_tinyc::lower(w.source).unwrap();
            let oracle = interpret(&hir, &w.args, 400_000_000).unwrap();
            assert_eq!(
                p.output, oracle.output,
                "{}: machine vs interpreter divergence",
                w.name
            );
        }
    }

    #[test]
    fn bench_traces_are_write_rich_and_balanced() {
        for w in Workload::bench() {
            let w = w.scaled_down();
            let p = prepare(&w).unwrap();
            let s = p.trace.stats();
            assert!(s.writes > 1_000, "{}: only {} writes", w.name, s.writes);
            assert_eq!(s.installs, s.removes, "{}: unbalanced trace", w.name);
            assert!(p.base_us > 0.0);
        }
    }

    #[test]
    fn from_parts_matches_prepare() {
        let w = Workload::by_name("matmul").unwrap().scaled_down();
        let p = prepare(&w).unwrap();
        let rebuilt = Prepared::from_parts(
            w.clone(),
            compile_plain(&w),
            p.trace.clone(),
            p.base_us,
            p.instructions,
            p.output.clone(),
        );
        assert_eq!(rebuilt.trace, p.trace);
        assert_eq!(rebuilt.base_us, p.base_us);
        assert_eq!(rebuilt.instructions, p.instructions);
        assert_eq!(rebuilt.output, p.output);
        // The recompiled plain build and the lazy instrumented build
        // both still behave identically after reassembly.
        for build in [&rebuilt.plain, rebuilt.codepatch()] {
            let mut m = Machine::new();
            m.load(&build.program);
            m.set_args(w.args.clone());
            m.run(&mut NoHooks, w.max_steps).unwrap();
            assert_eq!(m.take_output(), p.output);
        }
    }

    #[test]
    fn workloads_compile_run_and_match_interpreter() {
        for w in Workload::all() {
            let w = w.scaled_down();
            let p = prepare(&w).unwrap();
            assert!(!p.output.is_empty(), "{} produced no output", w.name);
            // Differential check against the reference interpreter.
            let hir = databp_tinyc::lower(w.source).unwrap();
            let oracle = interpret(&hir, &w.args, 400_000_000).unwrap();
            assert_eq!(
                p.output, oracle.output,
                "{}: machine vs interpreter divergence",
                w.name
            );
        }
    }

    #[test]
    fn codepatch_builds_behave_identically() {
        for w in Workload::all() {
            let w = w.scaled_down();
            let p = prepare(&w).unwrap();
            for build in [p.codepatch(), p.codepatch_loopopt(), p.nop_padded()] {
                let mut m = Machine::new();
                m.load(&build.program);
                m.set_args(w.args.clone());
                m.run(&mut NoHooks, w.max_steps).unwrap();
                assert_eq!(
                    m.take_output(),
                    p.output,
                    "{} instrumented run differs",
                    w.name
                );
            }
        }
    }

    #[test]
    fn heap_profiles_match_paper_table_1() {
        // CTEX and QCD have zero heap sessions; GCC/Spice/BPS have many.
        let heap_installs = |p: &Prepared| {
            p.trace
                .events()
                .iter()
                .filter(|e| {
                    matches!(
                        e,
                        Event::Install {
                            obj: ObjectDesc::Heap { .. },
                            ..
                        }
                    )
                })
                .count()
        };
        assert_eq!(
            heap_installs(&run_scaled("tex")),
            0,
            "tex must not allocate"
        );
        assert_eq!(
            heap_installs(&run_scaled("qcd")),
            0,
            "qcd must not allocate"
        );
        assert!(heap_installs(&run_scaled("cc")) > 20);
        assert!(heap_installs(&run_scaled("spice")) >= 4);
        assert!(
            heap_installs(&run_scaled("bps")) > 100,
            "bps allocates many nodes"
        );
    }

    #[test]
    fn traces_are_write_rich() {
        for w in Workload::all() {
            let w = w.scaled_down();
            let p = prepare(&w).unwrap();
            let s = p.trace.stats();
            assert!(s.writes > 1_000, "{}: only {} writes", w.name, s.writes);
            assert_eq!(s.installs, s.removes, "{}: unbalanced trace", w.name);
            assert!(p.base_us > 0.0);
        }
    }

    #[test]
    fn loopopt_build_has_hoist_groups() {
        for name in ["cc", "tex", "spice", "qcd", "bps"] {
            let p = run_scaled(name);
            assert!(
                !p.codepatch_loopopt().debug.loopopts.is_empty(),
                "{name} has loops with invariant scalar stores"
            );
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run_scaled("bps");
        let b = run_scaled("bps");
        assert_eq!(a.output, b.output);
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.base_us, b.base_us);
    }
}
