//! `databp-analysis` — static write-safety analysis over tinyc programs.
//!
//! The paper's CodePatch strategy pays an inline check before *every*
//! traced store. Section 9 already removes the checks a loop proves
//! redundant at run time; this crate removes checks *statically*: a store
//! whose effective address provably never lands in a region the debugger
//! is monitoring needs no check at all.
//!
//! The analysis is an inclusion-based points-to pass specialized to the
//! three-segment `spar` address space, fed by the tinyc SSA middle end
//! (`databp_tinyc::ssa`, DESIGN.md §11):
//!
//! * The SSA pass lowers each function into SSA form (dominator tree,
//!   mem2reg for address-never-taken locals, copy/constant propagation,
//!   trivial DCE) and produces one **flow-sensitive** [`AddrDesc`] per
//!   store site — the reaching definitions of the address at that exact
//!   program point, far tighter than a syntactic fold over the HIR. It
//!   also proves some sites statically dead (unreachable branches),
//!   which are elidable under any plan.
//! * This crate resolves the remaining dependencies: it assigns every
//!   named scalar (each local per function, each global) and every
//!   function result a **region mask** — which of stack / global / heap
//!   the pointer values flowing into it may point to — by iterating the
//!   SSA-derived value-flow edges to a fixpoint.
//! * A store site's mask is then its direct bits unioned with the masks
//!   of everything its address depends on; [`WriteSafety::classify`]
//!   compares that mask against a [`PlanClass`] (the regions a monitor
//!   plan can observe) and rules the site [`SiteClass::ProvablySafe`]
//!   only when the intersection is empty *and* the mask is nonempty —
//!   an empty mask means the address was forged from constants and
//!   proves nothing.
//!
//! Escapes are handled conservatively: any `&x` occurring outside the
//! two benign syntactic positions (the immediate child of a load, the
//! address slot of a direct assignment) marks `x`'s *content* as
//! [`REGION_ALL`], because unknown channels may store arbitrary pointers
//! into it. Large integer constants (≥ `DATA_BASE`) and loads through
//! computed addresses poison a value summary entirely.
//!
//! Soundness rests on two assumptions, both verified dynamically by the
//! replay oracle in `databp-sim` (see DESIGN.md): programs do not read
//! uninitialized pointers, and executed stores stay within the object
//! their base address was derived from (spatial safety).

use databp_machine::DATA_BASE;
use databp_tinyc::ssa::{self, FlowTarget, SsaInfo};
use databp_tinyc::{
    AddrDesc, DebugInfo, Hir, REGION_ALL, REGION_GLOBAL, REGION_HEAP, REGION_STACK,
};

pub use databp_tinyc::{BinOp, StoreSiteInfo};

/// The set of address regions a monitor plan can observe. Comparing a
/// store site's region mask against the active plan's class is what
/// licenses check elision: disjoint masks mean the store can never hit a
/// monitored location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanClass(u8);

impl PlanClass {
    /// No monitored regions (the `NoMonitors` plan).
    pub const NONE: PlanClass = PlanClass(0);
    /// Monitors may cover stack (local automatic) addresses.
    pub const STACK: PlanClass = PlanClass(REGION_STACK);
    /// Monitors may cover global/static addresses.
    pub const GLOBAL: PlanClass = PlanClass(REGION_GLOBAL);
    /// Monitors may cover heap addresses.
    pub const HEAP: PlanClass = PlanClass(REGION_HEAP);
    /// Monitors may cover anything — elides nothing. The safe default
    /// for plans that cannot describe themselves more precisely.
    pub const ALL: PlanClass = PlanClass(REGION_ALL);

    /// The union of two classes.
    #[must_use]
    pub fn union(self, other: PlanClass) -> PlanClass {
        PlanClass(self.0 | other.0)
    }

    /// The raw region bitmask (`REGION_*` bits).
    pub fn mask(self) -> u8 {
        self.0
    }
}

/// The verdict for one store site under one plan class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteClass {
    /// The store can never write a monitored address; its CodePatch
    /// check may be elided.
    ProvablySafe,
    /// The store may hit a monitored address (or proves nothing about
    /// its target); the check must stay.
    MayHitMonitor,
}

/// The result of the write-safety pass: a region mask per store site, in
/// the same order as [`DebugInfo::store_sites`].
#[derive(Debug, Clone)]
pub struct WriteSafety {
    pcs: Vec<u32>,
    chk_pcs: Vec<Option<u32>>,
    masks: Vec<u8>,
    dead: Vec<bool>,
    funcs: Vec<u16>,
    /// Stored value when it is a compile-time constant, already masked
    /// to the site's store width — directly comparable to the `value` a
    /// monitor predicate observes at run time.
    value_consts: Vec<Option<u32>>,
}

/// Runs the write-safety pass over a lowered program and the debug info
/// of one of its builds. Plain, CodePatch, and nop-padded builds of the
/// same source emit the same store sites in the same order, so the
/// per-index masks agree across builds (only the pcs differ).
pub fn analyze_writes(hir: &Hir, debug: &DebugInfo) -> WriteSafety {
    let _t = databp_telemetry::time!("analysis.writeopt");
    let ssa = ssa::analyze(hir);
    let mut solver = Solver::new(hir);
    solver.collect(&ssa);
    solver.solve();
    let facts: Vec<&ssa::SiteFact> = ssa.flat_sites().collect();
    // SSA enumerates sites in the code generator's emission order
    // (pinned by tinyc's site-alignment tests); fall back to the
    // syntactic summaries if the counts ever disagree.
    let aligned = facts.len() == debug.store_sites.len();
    let (mut pcs, mut chk_pcs, mut masks, mut dead) =
        (Vec::new(), Vec::new(), Vec::new(), Vec::new());
    let (mut funcs, mut value_consts) = (Vec::new(), Vec::new());
    for (i, site) in debug.store_sites.iter().enumerate() {
        pcs.push(site.pc);
        chk_pcs.push(site.chk_pc);
        funcs.push(site.func);
        if aligned {
            masks.push(solver.eval(site.func, &facts[i].desc));
            dead.push(facts[i].dead);
            // Mask the folded constant exactly as the machine masks the
            // store: a byte store of 0x1ff observes value 0xff.
            let width_mask = if site.len == 1 { 0xff } else { u32::MAX };
            value_consts.push(facts[i].value_const.map(|v| v as u32 & width_mask));
        } else {
            masks.push(solver.eval(site.func, &site.addr));
            dead.push(false);
            value_consts.push(None);
        }
    }
    databp_telemetry::count!("analysis.sites", pcs.len() as u64);
    WriteSafety {
        pcs,
        chk_pcs,
        masks,
        dead,
        funcs,
        value_consts,
    }
}

impl WriteSafety {
    /// Number of store sites analyzed.
    pub fn len(&self) -> usize {
        self.pcs.len()
    }

    /// True when the program has no traced stores.
    pub fn is_empty(&self) -> bool {
        self.pcs.is_empty()
    }

    /// The region mask of site `i` (`REGION_*` bits; `0` = forged /
    /// unprovable origin).
    pub fn site_mask(&self, i: usize) -> u8 {
        self.masks[i]
    }

    /// The store pc of site `i` (this build's pc).
    pub fn site_pc(&self, i: usize) -> u32 {
        self.pcs[i]
    }

    /// The `chk` pc of site `i` (CodePatch builds only).
    pub fn site_chk_pc(&self, i: usize) -> Option<u32> {
        self.chk_pcs[i]
    }

    /// The function id owning site `i`'s store instruction — the static
    /// `writer` a monitor predicate's `writer in f` filter observes.
    pub fn site_func(&self, i: usize) -> u16 {
        self.funcs[i]
    }

    /// The stored value at site `i` when constant propagation proved it
    /// a compile-time constant, masked to the store width (the exact
    /// `value` every run-time write at this site presents to a monitor
    /// predicate). `None` when the value is run-time dependent.
    pub fn site_value_const(&self, i: usize) -> Option<u32> {
        self.value_consts[i]
    }

    /// True when site `i` is statically unreachable.
    pub fn site_dead(&self, i: usize) -> bool {
        self.dead[i]
    }

    /// Classifies site `i` against a plan class.
    pub fn classify(&self, i: usize, class: PlanClass) -> SiteClass {
        if self.elidable(i, class) {
            SiteClass::ProvablySafe
        } else {
            SiteClass::MayHitMonitor
        }
    }

    fn elidable(&self, i: usize, class: PlanClass) -> bool {
        if self.dead[i] {
            // Statically unreachable: the check never executes, so
            // eliding it is trivially sound under any plan.
            return true;
        }
        let m = self.masks[i];
        m != 0 && m & class.mask() == 0
    }

    /// Byte pcs of the store instructions whose checks may be elided
    /// under `class`, ascending. These are *this build's* store pcs —
    /// use the plain build's analysis to cross-check trace pcs.
    pub fn elided_store_pcs(&self, class: PlanClass) -> Vec<u32> {
        (0..self.len())
            .filter(|&i| self.elidable(i, class))
            .map(|i| self.pcs[i])
            .collect()
    }

    /// Byte pcs of the `chk` instructions that may be elided under
    /// `class`, ascending (CodePatch builds only; empty otherwise).
    pub fn elided_chk_pcs(&self, class: PlanClass) -> Vec<u32> {
        (0..self.len())
            .filter(|&i| self.elidable(i, class))
            .filter_map(|i| self.chk_pcs[i])
            .collect()
    }

    /// Number of sites elidable under `class`.
    pub fn elided_count(&self, class: PlanClass) -> u32 {
        (0..self.len()).filter(|&i| self.elidable(i, class)).count() as u32
    }
}

// ---- the constraint solver ----

/// Value-flow constraint solver. Nodes are the named scalars (one per
/// local per function, one per global) plus one result node per
/// function; each holds a region mask. Edges carry an [`AddrDesc`] value
/// summary (interpreted in a particular function's namespace) into a
/// target node; iteration to a fixpoint is the standard inclusion-based
/// propagation, tiny here because tinyc programs have a few hundred
/// scalars at most. The edges and escape sets come from the SSA pass,
/// which only emits flow from statically reachable code.
struct Solver<'a> {
    hir: &'a Hir,
    /// Node masks: globals, then per-function locals, then returns.
    masks: Vec<u8>,
    /// `(namespace function, value summary, target node)`.
    edges: Vec<(u16, AddrDesc, usize)>,
    local_base: Vec<usize>,
    ret_base: usize,
}

impl<'a> Solver<'a> {
    fn new(hir: &'a Hir) -> Solver<'a> {
        let mut local_base = Vec::with_capacity(hir.funcs.len());
        let mut next = hir.globals.len();
        for f in &hir.funcs {
            local_base.push(next);
            next += f.locals.len();
        }
        let ret_base = next;
        let mut s = Solver {
            hir,
            masks: vec![0; ret_base + hir.funcs.len()],
            edges: Vec::new(),
            local_base,
            ret_base,
        };
        s.seed_globals();
        s
    }

    fn global_node(&self, g: u32) -> usize {
        g as usize
    }

    fn local_node(&self, fid: u16, v: u16) -> usize {
        self.local_base[fid as usize] + v as usize
    }

    fn ret_node(&self, fid: u16) -> usize {
        self.ret_base + fid as usize
    }

    /// A scalar global whose constant initializer already encodes an
    /// address (a string-literal pointer, or a forged integer ≥
    /// `DATA_BASE`) starts at top: its initial content points somewhere
    /// the dataflow never saw assigned.
    fn seed_globals(&mut self) {
        for (g, def) in self.hir.globals.iter().enumerate() {
            if def.is_literal || def.init.len() != 4 {
                continue;
            }
            let word = u32::from_le_bytes([def.init[0], def.init[1], def.init[2], def.init[3]]);
            if word >= DATA_BASE {
                let n = self.global_node(g as u32);
                self.masks[n] = REGION_ALL;
            }
        }
    }

    fn mark_taken(&mut self, node: usize) {
        self.masks[node] = REGION_ALL;
    }

    /// Imports the SSA pass's results: escaped scalars saturate their
    /// nodes (their content may be written through channels the solver
    /// cannot see), and the flow-sensitive value edges become the
    /// fixpoint's constraint set.
    fn collect(&mut self, ssa: &SsaInfo) {
        for (fid, f) in ssa.funcs.iter().enumerate() {
            for (v, &taken) in f.taken.iter().enumerate() {
                if taken {
                    let n = self.local_node(fid as u16, v as u16);
                    self.mark_taken(n);
                }
            }
        }
        for (g, &taken) in ssa.taken_globals.iter().enumerate() {
            if taken {
                let n = self.global_node(g as u32);
                self.mark_taken(n);
            }
        }
        for e in &ssa.edges {
            let node = match e.target {
                FlowTarget::Local(fid, v) => self.local_node(fid, v),
                FlowTarget::Global(g) => self.global_node(g),
                FlowTarget::Ret(fid) => self.ret_node(fid),
            };
            self.edges.push((e.fid, e.desc.clone(), node));
        }
    }

    fn solve(&mut self) {
        loop {
            let mut changed = false;
            for i in 0..self.edges.len() {
                let (fid, target) = (self.edges[i].0, self.edges[i].2);
                let sum = std::mem::take(&mut self.edges[i].1);
                let m = self.eval(fid, &sum);
                self.edges[i].1 = sum;
                if self.masks[target] | m != self.masks[target] {
                    self.masks[target] |= m;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// Resolves a value summary in function `fid`'s namespace to a
    /// region mask.
    fn eval(&self, fid: u16, sum: &AddrDesc) -> u8 {
        if sum.opaque {
            return REGION_ALL;
        }
        let mut m = sum.direct;
        for &v in &sum.local_deps {
            m |= self.masks[self.local_node(fid, v)];
        }
        for &g in &sum.global_deps {
            m |= self.masks[self.global_node(g)];
        }
        for &f in &sum.call_deps {
            m |= self.masks[self.ret_node(f)];
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use databp_tinyc::{compile, lower, Options, REGION_GLOBAL, REGION_HEAP, REGION_STACK};

    fn analyze(src: &str) -> (WriteSafety, DebugInfo) {
        let hir = lower(src).expect("compiles");
        let c = compile(src, &Options::plain()).unwrap();
        (analyze_writes(&hir, &c.debug), c.debug)
    }

    /// Store-site masks for `src`, in emission order.
    fn masks(src: &str) -> Vec<u8> {
        let (ws, _) = analyze(src);
        (0..ws.len()).map(|i| ws.site_mask(i)).collect()
    }

    #[test]
    fn plan_class_algebra() {
        assert_eq!(PlanClass::NONE.mask(), 0);
        assert_eq!(PlanClass::STACK.union(PlanClass::HEAP).mask(), 0b101);
        assert_eq!(
            PlanClass::STACK
                .union(PlanClass::GLOBAL)
                .union(PlanClass::HEAP),
            PlanClass::ALL
        );
    }

    #[test]
    fn direct_stores_have_direct_masks() {
        let m = masks(
            r#"
            int g;
            int main() {
                int x;
                x = 1;
                g = 2;
                *(malloc(4)) = 3;
                return 0;
            }
            "#,
        );
        assert_eq!(m, vec![REGION_STACK, REGION_GLOBAL, REGION_HEAP]);
    }

    #[test]
    fn pointer_assignments_propagate_regions() {
        let m = masks(
            r#"
            int g;
            int main() {
                int x;
                int *p;
                p = &x;
                *p = 1;
                p = &g;
                *p = 2;
                return 0;
            }
            "#,
        );
        // Sites: p=&x (stack), *p, p=&g (stack), *p.
        // Flow-sensitive: each indirect store sees only the reaching
        // definition of p at that point.
        assert_eq!(m[1], REGION_STACK);
        assert_eq!(m[3], REGION_GLOBAL);
    }

    #[test]
    fn heap_flows_through_locals_and_returns() {
        let (ws, _) = analyze(
            r#"
            int *mk() { return (int *)malloc(8); }
            int main() {
                int *p;
                int *q;
                p = (int *)malloc(4);
                *p = 1;
                q = mk();
                *q = 2;
                return 0;
            }
            "#,
        );
        let m: Vec<u8> = (0..ws.len()).map(|i| ws.site_mask(i)).collect();
        // Sites: p=malloc, *p, q=mk(), *q.
        assert_eq!(m[1], REGION_HEAP);
        assert_eq!(m[3], REGION_HEAP);
        assert_eq!(
            ws.classify(1, PlanClass::STACK.union(PlanClass::GLOBAL)),
            SiteClass::ProvablySafe
        );
        assert_eq!(ws.classify(1, PlanClass::HEAP), SiteClass::MayHitMonitor);
    }

    #[test]
    fn arguments_propagate_into_params() {
        let (ws, _) = analyze(
            r#"
            int set(int *r) { *r = 5; return 0; }
            int main() {
                int x;
                set(&x);
                return x;
            }
            "#,
        );
        // Site 0 is `*r = 5` in `set` (functions are emitted in id
        // order; set is fid 0).
        assert_eq!(ws.site_mask(0), REGION_ALL & !REGION_GLOBAL & !REGION_HEAP);
        assert_eq!(ws.classify(0, PlanClass::HEAP), SiteClass::ProvablySafe);
        assert_eq!(ws.classify(0, PlanClass::STACK), SiteClass::MayHitMonitor);
    }

    #[test]
    fn escaped_objects_saturate() {
        let m = masks(
            r#"
            int main() {
                int x;
                int *p;
                int **q;
                p = &x;
                q = &p;
                *q = (int *)malloc(4);
                *p = 7;
                return 0;
            }
            "#,
        );
        // `&p` escapes p (value position) → p's content is ALL → the
        // store through p may hit anything.
        assert_eq!(*m.last().unwrap(), REGION_ALL);
    }

    #[test]
    fn array_index_bases_escape() {
        let m = masks(
            r#"
            int main() {
                int a[4];
                int i;
                for (i = 0; i < 4; i = i + 1) {
                    a[i] = i;
                }
                return a[0];
            }
            "#,
        );
        // `a[i] = i` stores through a computed address whose base is a
        // direct &a — the descriptor still proves "stack".
        let store_into_a = m[1];
        assert_eq!(store_into_a, REGION_STACK);
    }

    #[test]
    fn forged_addresses_prove_nothing() {
        let (ws, _) = analyze(
            r#"
            int main() {
                int *p;
                p = (int *)1048576;
                *p = 1;
                return 0;
            }
            "#,
        );
        // The forged constant saturates p; the indirect store is never
        // elidable.
        let last = ws.len() - 1;
        assert_eq!(ws.site_mask(last), REGION_ALL);
        for class in [PlanClass::STACK, PlanClass::GLOBAL, PlanClass::HEAP] {
            assert_eq!(ws.classify(last, class), SiteClass::MayHitMonitor);
        }
    }

    #[test]
    fn site_value_consts_and_funcs_surface() {
        let (ws, debug) = analyze(
            r#"
            int g;
            int put(int k) { g = k; return 0; }
            int main() {
                int x;
                x = 300;
                g = 7;
                put(9);
                return 0;
            }
            "#,
        );
        // Sites: put's param spill, g = k (put), x = 300, g = 7 (main).
        assert_eq!(ws.len(), 4);
        let put = debug.func_id("put").unwrap();
        let main = debug.func_id("main").unwrap();
        assert_eq!(ws.site_func(0), put);
        assert_eq!(ws.site_func(1), put);
        assert_eq!(ws.site_func(2), main);
        assert_eq!(ws.site_func(3), main);
        assert_eq!(ws.site_value_const(0), None, "spilled argument");
        assert_eq!(ws.site_value_const(1), None, "parameter value");
        assert_eq!(ws.site_value_const(2), Some(300));
        assert_eq!(ws.site_value_const(3), Some(7));
        assert!(!ws.site_dead(3));
        assert_eq!(ws.site_chk_pc(3), None, "plain build has no chks");
    }

    #[test]
    fn elided_pc_lists_align_with_builds() {
        let src = r#"
            int g;
            int main() {
                int x;
                x = 1;
                g = 2;
                return 0;
            }
        "#;
        let hir = lower(src).unwrap();
        let plain = compile(src, &Options::plain()).unwrap();
        let cp = compile(src, &Options::codepatch()).unwrap();
        let ws_plain = analyze_writes(&hir, &plain.debug);
        let ws_cp = analyze_writes(&hir, &cp.debug);
        // Masks agree index-wise across builds.
        for i in 0..ws_plain.len() {
            assert_eq!(ws_plain.site_mask(i), ws_cp.site_mask(i));
        }
        // Under a global-only plan the stack store is elidable.
        let class = PlanClass::GLOBAL;
        assert_eq!(ws_plain.elided_count(class), 1);
        assert_eq!(
            ws_plain.elided_store_pcs(class).len(),
            ws_cp.elided_chk_pcs(class).len()
        );
        assert!(ws_plain.elided_chk_pcs(class).is_empty());
        assert_eq!(ws_cp.elided_count(class), 1);
        // Everything stays checked under ALL; nothing under NONE plans
        // still elides the provable sites (NONE means "monitors nothing").
        assert_eq!(ws_cp.elided_count(PlanClass::ALL), 0);
        assert_eq!(ws_cp.elided_count(PlanClass::NONE), 2);
    }
}
