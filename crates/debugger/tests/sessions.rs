//! Scripted debugging sessions exercising the full command surface.

use databp_debugger::{Debugger, DebuggerError, RunState};

const PROGRAM: &str = r#"
    int counter;
    int history[4];

    int bump(int by) {
        int before;
        before = counter;
        counter = counter + by;
        history[counter % 4] = before;
        return before;
    }

    int main() {
        int i;
        for (i = 1; i <= 5; i = i + 1) {
            bump(i);
        }
        print_int(counter);
        return counter;
    }
"#;

fn launch() -> Debugger {
    Debugger::launch(PROGRAM, &[]).expect("program compiles")
}

#[test]
fn watch_global_pauses_on_each_write() {
    let mut dbg = launch();
    dbg.execute("watch counter").unwrap();
    let mut pauses = 0;
    let mut out = dbg.execute("run").unwrap();
    while dbg.state() == RunState::Paused {
        assert!(out.contains("data breakpoint"), "{out}");
        assert!(out.contains("global 'counter'"), "{out}");
        assert!(out.contains("in bump()"), "{out}");
        pauses += 1;
        out = dbg.execute("continue").unwrap();
    }
    assert_eq!(pauses, 5, "five writes to counter");
    assert!(out.contains("exited with code 15"), "{out}");
}

#[test]
fn conditional_watch_pauses_only_when_predicate_holds() {
    let mut dbg = launch();
    dbg.execute("watch counter if == 6").unwrap();
    let out = dbg.execute("run").unwrap();
    // counter takes values 1, 3, 6, 10, 15 — exactly one pause.
    assert!(out.contains("wrote 6"), "{out}");
    assert_eq!(dbg.state(), RunState::Paused);
    let out = dbg.execute("continue").unwrap();
    assert!(out.contains("exited"), "{out}");
    // The watch still counted every hit.
    let info = dbg.execute("info watch").unwrap();
    assert!(info.contains("5 hits"), "{info}");
}

#[test]
fn predicate_watch_sees_old_value() {
    let mut dbg = launch();
    dbg.execute("watch counter if value == old + 1").unwrap();
    let out = dbg.execute("run").unwrap();
    // counter goes 0→1, 1→3, 3→6, 6→10, 10→15: only the first write
    // satisfies value == old + 1.
    assert!(out.contains("wrote 1"), "{out}");
    assert_eq!(dbg.state(), RunState::Paused);
    let out = dbg.execute("continue").unwrap();
    assert!(out.contains("exited"), "{out}");
    let info = dbg.execute("info watch").unwrap();
    assert!(info.contains("if value == old + 1"), "{info}");
    assert!(info.contains("5 hits"), "{info}");
}

#[test]
fn predicate_watch_hit_counter_and_writer_filter() {
    let mut dbg = launch();
    dbg.execute("watch counter if hits % 2 == 0").unwrap();
    let out = dbg.execute("run").unwrap();
    assert!(out.contains("wrote 3"), "second candidate fires: {out}");
    let out = dbg.execute("continue").unwrap();
    assert!(out.contains("wrote 10"), "fourth candidate fires: {out}");
    let out = dbg.execute("continue").unwrap();
    assert!(out.contains("exited"), "{out}");

    // Writer-site filters: every write to `counter` happens in bump().
    let mut dbg = launch();
    dbg.execute("watch counter if writer in main").unwrap();
    let out = dbg.execute("run").unwrap();
    assert!(out.contains("exited"), "no write from main pauses: {out}");
    let mut dbg = launch();
    dbg.execute("watch counter if writer in bump").unwrap();
    let mut pauses = 0;
    let mut out = dbg.execute("run").unwrap();
    while dbg.state() == RunState::Paused {
        pauses += 1;
        out = dbg.execute("continue").unwrap();
    }
    assert_eq!(pauses, 5, "{out}");
    // Unknown function names fail at install time.
    assert!(dbg.execute("watch counter if writer in missing").is_err());
}

#[test]
fn watch_local_catches_per_instantiation_writes() {
    let mut dbg = launch();
    dbg.execute("watch bump.before").unwrap();
    let mut pauses = 0;
    let mut out = dbg.execute("run").unwrap();
    while dbg.state() == RunState::Paused {
        assert!(out.contains("local 'bump.before'"), "{out}");
        pauses += 1;
        out = dbg.execute("continue").unwrap();
    }
    assert_eq!(pauses, 5, "one write per call");
}

#[test]
fn control_breakpoint_and_inspection() {
    let mut dbg = launch();
    dbg.execute("break bump").unwrap();
    let out = dbg.execute("run").unwrap();
    assert!(out.contains("entered bump()"), "{out}");

    // Stack: bump under main.
    let bt = dbg.execute("backtrace").unwrap();
    assert!(bt.starts_with("#0 bump()"), "{bt}");
    assert!(bt.contains("#1 main()"), "{bt}");

    // The breakpoint fires at frame establishment, *before* the argument
    // spills to its slot (that spill is itself a traced write).
    let by = dbg.execute("print by").unwrap();
    assert!(by.contains("by = 0"), "{by}");
    // Two instructions later (chk + sw) the parameter has landed.
    dbg.execute("stepi 2").unwrap();
    let by = dbg.execute("print by").unwrap();
    assert!(by.contains("by = 1"), "{by}");
    let c = dbg.execute("print counter").unwrap();
    assert!(c.contains("counter = 0"), "{c}");
    let qualified = dbg.execute("print main.i").unwrap();
    assert!(qualified.contains("main.i = 1"), "{qualified}");

    // Second entry: argument advanced.
    dbg.execute("continue").unwrap();
    dbg.execute("stepi 2").unwrap();
    let by = dbg.execute("print by").unwrap();
    assert!(by.contains("by = 2"), "{by}");
}

#[test]
fn delete_watch_stops_future_pauses() {
    let mut dbg = launch();
    dbg.execute("watch counter").unwrap();
    dbg.execute("run").unwrap();
    assert_eq!(dbg.state(), RunState::Paused);
    let out = dbg.execute("delete 0").unwrap();
    assert!(out.contains("deleted watch #0"), "{out}");
    let out = dbg.execute("continue").unwrap();
    assert!(out.contains("exited"), "{out}");
}

#[test]
fn watch_heap_object() {
    let src = r#"
        int main() {
            int *a;
            int *b;
            a = (int*)malloc(8);
            b = (int*)malloc(8);
            a[0] = 1;
            b[0] = 2;   // second allocation = heap #1
            b[1] = 3;
            free((char*)a);
            free((char*)b);
            return 0;
        }
    "#;
    let mut dbg = Debugger::launch(src, &[]).expect("compiles");
    dbg.execute("watch heap 1").unwrap();
    let out = dbg.execute("run").unwrap();
    assert!(out.contains("heap object #1"), "{out}");
    assert!(out.contains("wrote 2"), "{out}");
    let out = dbg.execute("continue").unwrap();
    assert!(out.contains("wrote 3"), "{out}");
    let out = dbg.execute("continue").unwrap();
    assert!(out.contains("exited"), "{out}");
}

#[test]
fn stepi_and_disasm() {
    let mut dbg = launch();
    let out = dbg.execute("stepi 3").unwrap();
    assert!(out.contains("stopped at pc"), "{out}");
    let dis = dbg.execute("disasm 4").unwrap();
    assert!(dis.contains("=>"), "{dis}");
    assert_eq!(dis.lines().count(), 4);
    // Stepping a lot eventually exits.
    let out = dbg.execute("stepi 1000000").unwrap();
    assert!(out.contains("exited"), "{out}");
}

#[test]
fn output_command_shows_program_output() {
    let mut dbg = launch();
    dbg.execute("run").unwrap();
    let out = dbg.execute("output").unwrap();
    assert_eq!(out.trim(), "15");
}

#[test]
fn state_machine_errors() {
    let mut dbg = launch();
    assert!(matches!(
        dbg.execute("continue"),
        Err(DebuggerError::Command(m)) if m.contains("not started")
    ));
    dbg.execute("run").unwrap(); // exits (no watches)
    assert!(matches!(dbg.state(), RunState::Exited(15)));
    assert!(dbg.execute("run").is_err());
    assert!(dbg.execute("continue").is_err());
}

#[test]
fn bad_names_are_reported() {
    let mut dbg = launch();
    assert!(dbg.execute("watch nonexistent").is_err());
    assert!(dbg.execute("watch bump.nothing").is_err());
    assert!(dbg.execute("watch missing.x").is_err());
    assert!(dbg.execute("break missing").is_err());
    assert!(dbg.execute("print missing").is_err());
    assert!(dbg.execute("delete 99").is_err());
    assert!(dbg.execute("gibberish").is_err());
}

#[test]
fn watch_function_static_by_name() {
    let src = r#"
        int tick() { static int n; n = n + 1; return n; }
        int main() { tick(); tick(); return tick(); }
    "#;
    let mut dbg = Debugger::launch(src, &[]).expect("compiles");
    dbg.execute("watch n").unwrap(); // resolves tick::n
    let mut pauses = 0;
    let mut out = dbg.execute("run").unwrap();
    while dbg.state() == RunState::Paused {
        assert!(out.contains("tick::n"), "{out}");
        pauses += 1;
        out = dbg.execute("continue").unwrap();
    }
    assert_eq!(pauses, 3);
}

#[test]
fn help_lists_commands() {
    let mut dbg = launch();
    let h = dbg.execute("help").unwrap();
    for cmd in ["watch", "break", "stepi", "backtrace", "disasm"] {
        assert!(h.contains(cmd), "help missing {cmd}");
    }
}
