//! Smoke test: `qei` command dispatch is covered by telemetry spans.
//!
//! Drives the `Debugger` engine in-process with telemetry enabled and
//! asserts the dispatch/resume spans and command counters land in a
//! registry snapshot — the ROADMAP's "extend telemetry to the debugger"
//! item.

use databp_debugger::{Debugger, RunState};

const PROGRAM: &str = r#"
    int total;
    int add(int x) { total = total + x; return total; }
    int main() {
        add(5);
        add(7);
        return total;
    }
"#;

#[test]
fn dispatch_spans_appear_in_snapshot() {
    databp_telemetry::set_enabled(true);
    databp_telemetry::global().reset();

    let mut dbg = Debugger::launch(PROGRAM, &[]).expect("program compiles");
    dbg.execute("watch total").expect("watch");
    dbg.execute("run").expect("run");
    dbg.execute("continue").expect("continue");
    dbg.execute("continue").expect("continue to exit");
    assert!(matches!(dbg.state(), RunState::Exited(_)));
    dbg.execute("bogus command").expect_err("rejected");

    let snap = databp_telemetry::global().snapshot();
    databp_telemetry::set_enabled(false);

    let dispatch = snap.span("debugger.dispatch").expect("dispatch span");
    assert_eq!(dispatch.count, 5, "one dispatch span per execute call");
    let resume = snap.span("debugger.resume").expect("resume span");
    assert_eq!(resume.count, 3, "run + two continues");
    assert_eq!(snap.counter("debugger.commands"), Some(5));
    assert_eq!(snap.counter("debugger.commands.rejected"), Some(1));
}
