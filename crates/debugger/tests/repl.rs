//! End-to-end test of the `qei` REPL binary: spawn it on a source file,
//! feed a command script over stdin, check the transcript.

use std::io::Write;
use std::process::{Command, Stdio};

const PROGRAM: &str = r#"
    int total;
    int add(int x) { total = total + x; return total; }
    int main() {
        add(5);
        add(7);
        print_int(total);
        return total;
    }
"#;

fn run_script(program: &str, script: &str, args: &[&str]) -> (String, String, bool) {
    let dir = std::env::temp_dir().join(format!(
        "qei-test-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let src = dir.join("program.c");
    std::fs::write(&src, program).expect("write source");

    let mut cmd = Command::new(env!("CARGO_BIN_EXE_qei"));
    cmd.arg(&src)
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    let mut child = cmd.spawn().expect("spawn qei");
    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(script.as_bytes())
        .expect("write script");
    let out = child.wait_with_output().expect("qei runs");
    let _ = std::fs::remove_dir_all(&dir);
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn scripted_watch_session_over_stdin() {
    let script = "watch total\nrun\ncontinue\ncontinue\ninfo watch\noutput\nquit\n";
    let (stdout, stderr, ok) = run_script(PROGRAM, script, &[]);
    assert!(ok, "qei failed: {stderr}");
    assert!(stdout.contains("loaded"), "{stdout}");
    // Two pauses (one per write), then exit.
    assert_eq!(stdout.matches("data breakpoint").count(), 2, "{stdout}");
    assert!(stdout.contains("wrote 5"), "{stdout}");
    assert!(stdout.contains("wrote 12"), "{stdout}");
    assert!(stdout.contains("exited with code 12"), "{stdout}");
    assert!(stdout.contains("2 hits"), "{stdout}");
}

#[test]
fn bad_commands_keep_the_repl_alive() {
    let script = "frobnicate\nwatch nosuch\nrun\nquit\n";
    let (stdout, _, ok) = run_script(PROGRAM, script, &[]);
    assert!(ok);
    assert!(stdout.contains("error: unknown command"), "{stdout}");
    assert!(stdout.contains("error: no global named"), "{stdout}");
    assert!(stdout.contains("exited with code 12"), "{stdout}");
}

#[test]
fn program_arguments_flow_through() {
    let src = "int main() { print_int(arg(0) * arg(1)); return 0; }";
    let (stdout, _, ok) = run_script(src, "run\noutput\nquit\n", &["6", "7"]);
    assert!(ok);
    assert!(stdout.contains("42"), "{stdout}");
}

#[test]
fn missing_file_is_a_clean_failure() {
    let out = Command::new(env!("CARGO_BIN_EXE_qei"))
        .arg("/nonexistent/nowhere.c")
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn compile_errors_are_reported_with_line() {
    let (_, stderr, ok) = {
        let dir = std::env::temp_dir().join(format!("qei-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let src = dir.join("bad.c");
        std::fs::write(&src, "int main() { return unknown_var; }").unwrap();
        let out = Command::new(env!("CARGO_BIN_EXE_qei"))
            .arg(&src)
            .output()
            .expect("spawn");
        let _ = std::fs::remove_dir_all(&dir);
        (
            String::from_utf8_lossy(&out.stdout).into_owned(),
            String::from_utf8_lossy(&out.stderr).into_owned(),
            out.status.success(),
        )
    };
    assert!(!ok);
    assert!(stderr.contains("line 1"), "{stderr}");
}
