//! `qei` — a scriptable source-level debugger with data breakpoints.
//!
//! The paper closes with the system this library was meant for: "a
//! sophisticated high-level debugging system called QEI" (a Latin
//! abbreviation for "which was to be found out"), to be built on a
//! CodePatch write monitor service. This crate is that debugger, scaled
//! to the `tinyc`/`spar` world:
//!
//! * **data breakpoints** on globals, locals (per-instantiation, as the
//!   paper's `OneLocalAuto`), and heap objects — including *conditional*
//!   ones (`watch g if == 42`);
//! * **control breakpoints** on function entry (the ubiquitous kind the
//!   paper contrasts with);
//! * inspection: print variables, backtrace, disassembly around a pc;
//! * fully scriptable ([`Debugger::execute`] takes one command and
//!   returns text), with a REPL binary (`qei`) on top.
//!
//! # Examples
//!
//! ```
//! use databp_debugger::Debugger;
//!
//! let src = "int g; int main() { g = 7; g = g + 1; return g; }";
//! let mut dbg = Debugger::launch(src, &[]).expect("program compiles");
//! dbg.execute("watch g").unwrap();
//! let out = dbg.execute("run").unwrap();
//! assert!(out.contains("data breakpoint"), "{out}");
//! let out = dbg.execute("print g").unwrap();
//! assert!(out.contains("= 7"), "{out}");
//! ```

mod command;
mod debugger;
mod watches;

pub use command::{parse_command, Command, WatchTarget};
pub use debugger::{Debugger, DebuggerError, RunState};
pub use watches::{Condition, WatchId, WatchKind};
