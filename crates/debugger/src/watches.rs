//! Watch (data breakpoint) and breakpoint bookkeeping.

use std::fmt;

/// Identifies a user-visible watch (data breakpoint).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WatchId(pub u32);

impl fmt::Display for WatchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "watch #{}", self.0)
    }
}

/// What a watch monitors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WatchKind {
    /// A file-scope global (or function-static) by id.
    Global {
        /// Global table id.
        id: u32,
        /// Display name.
        name: String,
    },
    /// Every instantiation of a local automatic variable.
    Local {
        /// Function id.
        func: u16,
        /// Variable index.
        var: u16,
        /// Display name (`func.var`).
        name: String,
    },
    /// One heap object by allocation sequence number (may not exist yet).
    Heap {
        /// Allocation sequence number.
        seq: u32,
    },
}

impl fmt::Display for WatchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WatchKind::Global { name, .. } => write!(f, "global '{name}'"),
            WatchKind::Local { name, .. } => write!(f, "local '{name}'"),
            WatchKind::Heap { seq } => write!(f, "heap object #{seq}"),
        }
    }
}

/// A condition on the *newly stored* value; the debugger pauses only when
/// it holds (the watch still counts every hit).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum Condition {
    /// Pause on every write.
    #[default]
    Always,
    /// Pause when the stored value equals the operand.
    Eq(i32),
    /// Pause when it differs.
    Ne(i32),
    /// Pause when it is less (signed).
    Lt(i32),
    /// Pause when it is greater (signed).
    Gt(i32),
    /// Pause when the full monitor predicate fires (`value`, `old`,
    /// `hits`, `writer in f` — see [`databp_core::Predicate`]). Holds
    /// the source text; the compiled form lives on the installed watch.
    Pred(String),
}

impl Condition {
    /// Evaluates a simple comparison against the stored value. For
    /// [`Condition::Pred`] this is vacuously true — the debugger
    /// evaluates the compiled predicate on the watch instead, which
    /// also sees `old`, the per-watch hit count, and the writer.
    pub fn holds(&self, value: i32) -> bool {
        match self {
            Condition::Always | Condition::Pred(_) => true,
            Condition::Eq(x) => value == *x,
            Condition::Ne(x) => value != *x,
            Condition::Lt(x) => value < *x,
            Condition::Gt(x) => value > *x,
        }
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Condition::Always => Ok(()),
            Condition::Eq(x) => write!(f, " if == {x}"),
            Condition::Ne(x) => write!(f, " if != {x}"),
            Condition::Lt(x) => write!(f, " if < {x}"),
            Condition::Gt(x) => write!(f, " if > {x}"),
            Condition::Pred(src) => write!(f, " if {src}"),
        }
    }
}

/// One installed watch.
#[derive(Debug, Clone)]
pub(crate) struct Watch {
    pub kind: WatchKind,
    pub cond: Condition,
    /// Compiled form of [`Condition::Pred`], with its own hit counter
    /// (the predicate's `hits` variable counts this watch's hits).
    pub pred: Option<databp_core::PredEval>,
    pub hits: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conditions_evaluate() {
        assert!(Condition::Always.holds(0));
        assert!(Condition::Eq(5).holds(5));
        assert!(!Condition::Eq(5).holds(6));
        assert!(Condition::Ne(5).holds(6));
        assert!(Condition::Lt(0).holds(-1));
        assert!(!Condition::Lt(0).holds(0));
        assert!(Condition::Gt(10).holds(11));
    }

    #[test]
    fn displays() {
        assert_eq!(WatchId(3).to_string(), "watch #3");
        assert_eq!(
            WatchKind::Global {
                id: 0,
                name: "g".into()
            }
            .to_string(),
            "global 'g'"
        );
        assert_eq!(Condition::Eq(7).to_string(), " if == 7");
        assert_eq!(Condition::Always.to_string(), "");
        assert_eq!(
            Condition::Pred("value == old + 1".into()).to_string(),
            " if value == old + 1"
        );
    }
}
