//! Command-line grammar of the `qei` debugger.

use crate::watches::Condition;

/// A watch target as written by the user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WatchTarget {
    /// `watch name` — a global.
    Global(String),
    /// `watch func.var` — a local, every instantiation.
    Local {
        /// Function name.
        func: String,
        /// Variable name.
        var: String,
    },
    /// `watch heap N` — a heap object by allocation number.
    Heap(u32),
}

/// A parsed debugger command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Set a data breakpoint.
    Watch(WatchTarget, Condition),
    /// Set a control breakpoint on function entry.
    Break(String),
    /// Delete a watch by number.
    Delete(u32),
    /// Start the program.
    Run,
    /// Resume after a pause.
    Continue,
    /// Execute `n` machine instructions.
    StepI(u64),
    /// Print a variable (`name` or `func.name`).
    Print(String),
    /// Show the call stack.
    Backtrace,
    /// List watches.
    InfoWatch,
    /// List control breakpoints.
    InfoBreak,
    /// Disassemble `n` instructions at the current pc.
    Disasm(u32),
    /// Show program output so far.
    Output,
    /// Show help.
    Help,
    /// Exit the debugger.
    Quit,
}

/// Parses one command line.
///
/// # Errors
///
/// A human-readable message naming the problem.
pub fn parse_command(line: &str) -> Result<Command, String> {
    let mut words = line.split_whitespace();
    let Some(head) = words.next() else {
        return Err("empty command (try 'help')".into());
    };
    let rest: Vec<&str> = words.collect();
    match head {
        "watch" | "w" => parse_watch(&rest),
        "break" | "b" => match rest.as_slice() {
            [func] => Ok(Command::Break(func.to_string())),
            _ => Err("usage: break <function>".into()),
        },
        "delete" | "d" => match rest.as_slice() {
            [n] => n
                .parse()
                .map(Command::Delete)
                .map_err(|_| "usage: delete <watch-number>".into()),
            _ => Err("usage: delete <watch-number>".into()),
        },
        "run" | "r" => Ok(Command::Run),
        "continue" | "c" => Ok(Command::Continue),
        "stepi" | "si" => match rest.as_slice() {
            [] => Ok(Command::StepI(1)),
            [n] => n
                .parse()
                .map(Command::StepI)
                .map_err(|_| "usage: stepi [n]".into()),
            _ => Err("usage: stepi [n]".into()),
        },
        "print" | "p" => match rest.as_slice() {
            [name] => Ok(Command::Print(name.to_string())),
            _ => Err("usage: print <var> or print <func>.<var>".into()),
        },
        "backtrace" | "bt" => Ok(Command::Backtrace),
        "info" => match rest.as_slice() {
            ["watch"] | ["watches"] => Ok(Command::InfoWatch),
            ["break"] | ["breaks"] => Ok(Command::InfoBreak),
            _ => Err("usage: info watch | info break".into()),
        },
        "disasm" | "x" => match rest.as_slice() {
            [] => Ok(Command::Disasm(8)),
            [n] => n
                .parse()
                .map(Command::Disasm)
                .map_err(|_| "usage: disasm [n]".into()),
            _ => Err("usage: disasm [n]".into()),
        },
        "output" | "o" => Ok(Command::Output),
        "help" | "h" | "?" => Ok(Command::Help),
        "quit" | "q" | "exit" => Ok(Command::Quit),
        other => Err(format!("unknown command '{other}' (try 'help')")),
    }
}

fn parse_watch(rest: &[&str]) -> Result<Command, String> {
    if rest.is_empty() {
        return Err("usage: watch <var>|<func>.<var>|heap <n> [if ==|!=|<|> <value>]".into());
    }
    // Split off a trailing "if ...": either the short comparison form
    // `if <op> <value>` or a full monitor predicate (`value`, `old`,
    // `hits`, `writer in f` — e.g. `if value == old + 1 && hits > 3`).
    let (target_words, cond) = match rest.iter().position(|w| *w == "if") {
        Some(pos) => {
            let cond_words = &rest[pos + 1..];
            let legacy = match cond_words {
                [op, val] => val.parse::<i32>().ok().and_then(|v| match *op {
                    "==" => Some(Condition::Eq(v)),
                    "!=" => Some(Condition::Ne(v)),
                    "<" => Some(Condition::Lt(v)),
                    ">" => Some(Condition::Gt(v)),
                    _ => None,
                }),
                _ => None,
            };
            let cond = match legacy {
                Some(c) => c,
                None => {
                    if cond_words.is_empty() {
                        return Err("usage: ... if ==|!=|<|> <value>, or if <predicate>".into());
                    }
                    let src = cond_words.join(" ");
                    databp_core::Predicate::parse(&src)
                        .map_err(|e| format!("bad watch condition '{src}': {e}"))?;
                    Condition::Pred(src)
                }
            };
            (&rest[..pos], cond)
        }
        None => (rest, Condition::Always),
    };
    let target = match target_words {
        ["heap", n] => WatchTarget::Heap(
            n.parse()
                .map_err(|_| format!("bad heap object number '{n}'"))?,
        ),
        [name] => match name.split_once('.') {
            Some((func, var)) if !func.is_empty() && !var.is_empty() => WatchTarget::Local {
                func: func.to_string(),
                var: var.to_string(),
            },
            Some(_) => return Err(format!("malformed local name '{name}'")),
            None => WatchTarget::Global(name.to_string()),
        },
        _ => return Err("usage: watch <var>|<func>.<var>|heap <n>".into()),
    };
    Ok(Command::Watch(target, cond))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_watch_forms() {
        assert_eq!(
            parse_command("watch g").unwrap(),
            Command::Watch(WatchTarget::Global("g".into()), Condition::Always)
        );
        assert_eq!(
            parse_command("w main.i").unwrap(),
            Command::Watch(
                WatchTarget::Local {
                    func: "main".into(),
                    var: "i".into()
                },
                Condition::Always
            )
        );
        assert_eq!(
            parse_command("watch heap 7").unwrap(),
            Command::Watch(WatchTarget::Heap(7), Condition::Always)
        );
        assert_eq!(
            parse_command("watch g if == 42").unwrap(),
            Command::Watch(WatchTarget::Global("g".into()), Condition::Eq(42))
        );
        assert_eq!(
            parse_command("watch heap 3 if > -1").unwrap(),
            Command::Watch(WatchTarget::Heap(3), Condition::Gt(-1))
        );
    }

    #[test]
    fn parses_predicate_conditions() {
        assert_eq!(
            parse_command("watch g if value == old + 1").unwrap(),
            Command::Watch(
                WatchTarget::Global("g".into()),
                Condition::Pred("value == old + 1".into())
            )
        );
        assert_eq!(
            parse_command("w main.i if hits % 2 == 0 && writer in main").unwrap(),
            Command::Watch(
                WatchTarget::Local {
                    func: "main".into(),
                    var: "i".into()
                },
                Condition::Pred("hits % 2 == 0 && writer in main".into())
            )
        );
        // The two-word comparison form still wins where it applies.
        assert_eq!(
            parse_command("watch g if > 5").unwrap(),
            Command::Watch(WatchTarget::Global("g".into()), Condition::Gt(5))
        );
        assert!(parse_command("watch g if value >").is_err());
        assert!(parse_command("watch g if").is_err());
    }

    #[test]
    fn parses_control_commands() {
        assert_eq!(
            parse_command("break main").unwrap(),
            Command::Break("main".into())
        );
        assert_eq!(parse_command("r").unwrap(), Command::Run);
        assert_eq!(parse_command("c").unwrap(), Command::Continue);
        assert_eq!(parse_command("si 100").unwrap(), Command::StepI(100));
        assert_eq!(parse_command("stepi").unwrap(), Command::StepI(1));
        assert_eq!(
            parse_command("p main.x").unwrap(),
            Command::Print("main.x".into())
        );
        assert_eq!(parse_command("bt").unwrap(), Command::Backtrace);
        assert_eq!(parse_command("info watch").unwrap(), Command::InfoWatch);
        assert_eq!(parse_command("delete 2").unwrap(), Command::Delete(2));
        assert_eq!(parse_command("disasm").unwrap(), Command::Disasm(8));
        assert_eq!(parse_command("q").unwrap(), Command::Quit);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_command("").is_err());
        assert!(parse_command("frobnicate").is_err());
        assert!(parse_command("watch").is_err());
        assert!(parse_command("watch g if >= 3").is_err());
        assert!(parse_command("watch g if == many").is_err());
        assert!(parse_command("watch heap x").is_err());
        assert!(parse_command("watch .x").is_err());
        assert!(parse_command("delete two").is_err());
        assert!(parse_command("info nothing").is_err());
    }
}
