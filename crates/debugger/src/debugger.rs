//! The debugger engine.

use crate::command::{parse_command, Command, WatchTarget};
use crate::watches::{Condition, Watch, WatchId, WatchKind};
use databp_core::{Monitor, MonitorId, PageMap, PredEval, Predicate, WriterMap};
use databp_machine::{disasm, Machine, MachineError, MarkKind, NoHooks, StopConfig, StopReason};
use databp_tinyc::{compile, CompileError, Compiled, Options};
use std::collections::{BTreeMap, HashMap};
use std::error::Error;
use std::fmt;

/// Where the debuggee currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunState {
    /// `run` not issued yet.
    NotStarted,
    /// Paused at a breakpoint (data or control).
    Paused,
    /// Program finished with the given exit code.
    Exited(i32),
}

/// Debugger failures.
#[derive(Debug)]
pub enum DebuggerError {
    /// The debuggee failed to compile.
    Compile(CompileError),
    /// The debuggee faulted.
    Machine(MachineError),
    /// A bad command or bad debugger state; the message says why.
    Command(String),
}

impl fmt::Display for DebuggerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DebuggerError::Compile(e) => write!(f, "compile error: {e}"),
            DebuggerError::Machine(e) => write!(f, "machine error: {e}"),
            DebuggerError::Command(m) => f.write_str(m),
        }
    }
}

impl Error for DebuggerError {}

impl From<MachineError> for DebuggerError {
    fn from(e: MachineError) -> Self {
        DebuggerError::Machine(e)
    }
}

/// Instruction budget per `run`/`continue` (a runaway-debuggee guard).
const RUN_BUDGET: u64 = 2_000_000_000;

/// A scriptable debugger over a CodePatch-instrumented `tinyc` program.
pub struct Debugger {
    machine: Machine,
    compiled: Compiled,
    map: PageMap,
    mon_watch: HashMap<MonitorId, WatchId>,
    watches: BTreeMap<u32, Watch>,
    next_watch: u32,
    next_monitor: u64,
    /// Control breakpoints: break number -> function id.
    breaks: BTreeMap<u32, u16>,
    next_break: u32,
    stack: Vec<(u16, u32)>,
    frame_monitors: Vec<Vec<(MonitorId, Monitor)>>,
    heap_live: HashMap<u32, (u32, u32)>,
    heap_monitors: HashMap<u32, (MonitorId, Monitor)>,
    /// pc → function id, for `writer in f` watch predicates.
    writers: WriterMap,
    state: RunState,
}

impl Debugger {
    /// Compiles `source` with CodePatch instrumentation and prepares a
    /// machine (program not started yet).
    ///
    /// # Errors
    ///
    /// [`DebuggerError::Compile`] on a bad program.
    pub fn launch(source: &str, args: &[i32]) -> Result<Debugger, DebuggerError> {
        let compiled = compile(source, &Options::codepatch()).map_err(DebuggerError::Compile)?;
        let mut machine = Machine::new();
        machine.load(&compiled.program);
        machine.set_args(args.to_vec());
        machine.set_stop_config(StopConfig {
            marks: true,
            heap: true,
            chk: true,
        });
        let writers = WriterMap::new(
            compiled
                .debug
                .functions
                .iter()
                .enumerate()
                .map(|(id, f)| (f.entry_pc, id as u16)),
        );
        Ok(Debugger {
            machine,
            compiled,
            writers,
            map: PageMap::new(),
            mon_watch: HashMap::new(),
            watches: BTreeMap::new(),
            next_watch: 0,
            next_monitor: 0,
            breaks: BTreeMap::new(),
            next_break: 0,
            stack: Vec::new(),
            frame_monitors: Vec::new(),
            heap_live: HashMap::new(),
            heap_monitors: HashMap::new(),
            state: RunState::NotStarted,
        })
    }

    /// Current run state.
    pub fn state(&self) -> RunState {
        self.state
    }

    /// The debuggee machine (inspection).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Parses and executes one command, returning its output text.
    ///
    /// # Errors
    ///
    /// [`DebuggerError`] for bad commands, bad state, or debuggee faults.
    pub fn execute(&mut self, line: &str) -> Result<String, DebuggerError> {
        // `qei` command-latency instrumentation: one span over the whole
        // parse+dispatch, so a snapshot shows commands served and the
        // wall time spent serving them.
        let _t = databp_telemetry::time!("debugger.dispatch");
        databp_telemetry::count!("debugger.commands");
        let cmd = parse_command(line).map_err(|e| {
            databp_telemetry::count!("debugger.commands.rejected");
            DebuggerError::Command(e)
        })?;
        self.dispatch(cmd)
    }

    fn dispatch(&mut self, cmd: Command) -> Result<String, DebuggerError> {
        match cmd {
            Command::Watch(target, cond) => self.add_watch(target, cond),
            Command::Break(func) => self.add_break(&func),
            Command::Delete(n) => self.delete_watch(n),
            Command::Run => {
                if self.state != RunState::NotStarted {
                    return Err(DebuggerError::Command(
                        "program already started (use 'continue')".into(),
                    ));
                }
                self.resume()
            }
            Command::Continue => {
                if self.state != RunState::Paused {
                    return Err(DebuggerError::Command(match self.state {
                        RunState::NotStarted => "program not started (use 'run')".into(),
                        _ => "program has exited".into(),
                    }));
                }
                self.resume()
            }
            Command::StepI(n) => self.stepi(n),
            Command::Print(name) => self.print_var(&name),
            Command::Backtrace => Ok(self.backtrace()),
            Command::InfoWatch => Ok(self.info_watch()),
            Command::InfoBreak => Ok(self.info_break()),
            Command::Disasm(n) => self.disassemble(n),
            Command::Output => Ok(String::from_utf8_lossy(self.machine.output()).into_owned()),
            Command::Help => Ok(HELP.to_string()),
            Command::Quit => Ok("bye".to_string()),
        }
    }

    // ---- watch management ----

    fn install(&mut self, ba: u32, ea: u32, owner: WatchId) -> MonitorId {
        let id = MonitorId::from_raw(self.next_monitor);
        self.next_monitor += 1;
        self.map.install(
            id,
            Monitor::new(ba, ea).expect("object ranges are non-empty"),
        );
        self.mon_watch.insert(id, owner);
        id
    }

    fn add_watch(&mut self, target: WatchTarget, cond: Condition) -> Result<String, DebuggerError> {
        let debug = &self.compiled.debug;
        let kind = match &target {
            WatchTarget::Global(name) => {
                let g = debug
                    .global(name)
                    .or_else(|| {
                        debug
                            .globals
                            .iter()
                            .find(|g| !g.is_literal && g.name.ends_with(&format!("::{name}")))
                    })
                    .ok_or_else(|| DebuggerError::Command(format!("no global named '{name}'")))?;
                WatchKind::Global {
                    id: g.id,
                    name: g.name.clone(),
                }
            }
            WatchTarget::Local { func, var } => {
                let fid = debug
                    .func_id(func)
                    .ok_or_else(|| DebuggerError::Command(format!("no function '{func}'")))?;
                let local = debug.functions[fid as usize]
                    .locals
                    .iter()
                    .find(|l| l.name == *var)
                    .ok_or_else(|| {
                        DebuggerError::Command(format!("{func}() has no local '{var}'"))
                    })?;
                WatchKind::Local {
                    func: fid,
                    var: local.var,
                    name: format!("{func}.{var}"),
                }
            }
            WatchTarget::Heap(seq) => WatchKind::Heap { seq: *seq },
        };

        // Compile a predicate condition against this program's debug
        // info (function names must resolve) before the watch installs.
        let pred = match &cond {
            Condition::Pred(src) => Some(PredEval::new(
                Predicate::parse(src)
                    .map_err(|e| DebuggerError::Command(format!("bad predicate: {e}")))?
                    .compile(|n| debug.func_id(n))
                    .map_err(|e| DebuggerError::Command(format!("bad predicate: {e}")))?,
            )),
            _ => None,
        };

        let wid = WatchId(self.next_watch);
        self.next_watch += 1;
        self.watches.insert(
            wid.0,
            Watch {
                kind: kind.clone(),
                cond,
                pred,
                hits: 0,
            },
        );

        // Realize monitors for already-live objects.
        let mut realized = 0usize;
        match kind {
            WatchKind::Global { id, .. } => {
                let g = &self.compiled.debug.globals[id as usize];
                let (ba, ea) = (g.ba, g.ea);
                self.install(ba, ea, wid);
                realized += 1;
            }
            WatchKind::Local { func, var, .. } => {
                let local =
                    self.compiled.debug.functions[func as usize].locals[var as usize].clone();
                for depth in 0..self.stack.len() {
                    let (fid, fp) = self.stack[depth];
                    if fid == func {
                        let ba = fp.wrapping_add(local.offset as u32);
                        let id = self.install(ba, ba + local.size, wid);
                        self.frame_monitors[depth]
                            .push((id, Monitor::new(ba, ba + local.size).expect("non-empty")));
                        realized += 1;
                    }
                }
            }
            WatchKind::Heap { seq } => {
                if let Some(&(ba, ea)) = self.heap_live.get(&seq) {
                    let id = self.install(ba, ea, wid);
                    self.heap_monitors
                        .insert(seq, (id, Monitor::new(ba, ea).expect("non-empty")));
                    realized += 1;
                }
            }
        }
        let w = &self.watches[&wid.0];
        Ok(format!(
            "{wid}: {}{} ({} live monitor{})",
            w.kind,
            w.cond,
            realized,
            if realized == 1 { "" } else { "s" }
        ))
    }

    fn delete_watch(&mut self, n: u32) -> Result<String, DebuggerError> {
        let w = self
            .watches
            .remove(&n)
            .ok_or_else(|| DebuggerError::Command(format!("no watch #{n}")))?;
        // Remove every monitor owned by this watch.
        let owned: Vec<MonitorId> = self
            .mon_watch
            .iter()
            .filter(|(_, wid)| wid.0 == n)
            .map(|(m, _)| *m)
            .collect();
        for id in owned {
            self.mon_watch.remove(&id);
            for frames in &mut self.frame_monitors {
                if let Some(pos) = frames.iter().position(|(m, _)| *m == id) {
                    let (_, mon) = frames.remove(pos);
                    self.map.remove(id, mon);
                }
            }
            if let Some(seq) = self
                .heap_monitors
                .iter()
                .find(|(_, (m, _))| *m == id)
                .map(|(s, _)| *s)
            {
                let (_, mon) = self.heap_monitors.remove(&seq).expect("just found");
                self.map.remove(id, mon);
            }
            if let WatchKind::Global { id: gid, .. } = w.kind {
                let g = &self.compiled.debug.globals[gid as usize];
                let mon = Monitor::new(g.ba, g.ea).expect("non-empty");
                self.map.remove(id, mon);
            }
        }
        Ok(format!("deleted watch #{n} ({})", w.kind))
    }

    fn add_break(&mut self, func: &str) -> Result<String, DebuggerError> {
        let fid = self
            .compiled
            .debug
            .func_id(func)
            .ok_or_else(|| DebuggerError::Command(format!("no function '{func}'")))?;
        let n = self.next_break;
        self.next_break += 1;
        self.breaks.insert(n, fid);
        Ok(format!("breakpoint #{n} at {func}()"))
    }

    // ---- execution ----

    fn resume(&mut self) -> Result<String, DebuggerError> {
        let _t = databp_telemetry::time!("debugger.resume");
        loop {
            let executed = self.machine.cost().instructions;
            if executed >= RUN_BUDGET {
                return Err(DebuggerError::Machine(MachineError::StepLimitExceeded {
                    limit: RUN_BUDGET,
                }));
            }
            let stop = self.machine.run(&mut NoHooks, RUN_BUDGET - executed)?;
            if let Some(msg) = self.handle_stop(stop, true)? {
                return Ok(msg);
            }
        }
    }

    fn stepi(&mut self, n: u64) -> Result<String, DebuggerError> {
        let _t = databp_telemetry::time!("debugger.stepi");
        if matches!(self.state, RunState::Exited(_)) {
            return Err(DebuggerError::Command("program has exited".into()));
        }
        let mut executed = 0u64;
        while executed < n {
            let before = self.machine.cost().instructions;
            if let Some(stop) = self.machine.step(&mut NoHooks)? {
                if let Some(msg) = self.handle_stop(stop, false)? {
                    return Ok(format!("{msg} (after {executed} steps)"));
                }
            }
            executed += self.machine.cost().instructions - before;
            self.state = RunState::Paused;
        }
        let pc = self.machine.cpu().pc();
        let instr = self
            .machine
            .pc_to_index(pc)
            .and_then(|i| self.machine.instr_at(i))
            .map(|i| disasm::format_instr(&i))
            .unwrap_or_else(|_| "<outside code>".into());
        Ok(format!("stopped at pc {pc:#010x}: {instr}"))
    }

    /// Services a stop; `Some(text)` means control returns to the user.
    fn handle_stop(
        &mut self,
        stop: StopReason,
        pausing: bool,
    ) -> Result<Option<String>, DebuggerError> {
        match stop {
            StopReason::Halted => {
                let code = self.machine.exit_code();
                self.state = RunState::Exited(code);
                Ok(Some(format!("program exited with code {code}")))
            }
            StopReason::Chk(ev) => {
                let mut ids = Vec::new();
                self.map.hits(ev.addr, ev.addr + ev.len, &mut ids);
                if ids.is_empty() {
                    return Ok(None);
                }
                // Read the overwritten value first — predicate
                // conditions can reference `old` — then execute the
                // store itself (the next instruction) so the
                // notification happens *after the write succeeds* and
                // conditions can read the new value.
                let old = self.read_value(ev.addr, ev.len)?;
                self.machine.step(&mut NoHooks)?;
                let value = self.read_value(ev.addr, ev.len)?;
                // Predicates see values as the CP check does: unsigned,
                // masked to the store width.
                let mask = if ev.len == 1 { 0xff } else { u32::MAX };
                let (uval, uold) = (value as u32 & mask, old as u32 & mask);
                let writer = self.writers.writer_of(ev.pc);
                let mut pauses = Vec::new();
                let in_func = self.func_at(ev.pc).to_string();
                for id in ids {
                    let Some(&wid) = self.mon_watch.get(&id) else {
                        continue;
                    };
                    let w = self.watches.get_mut(&wid.0).expect("monitor owner exists");
                    w.hits += 1;
                    let fires = match &mut w.pred {
                        Some(p) => p.observe(uval, uold, writer),
                        None => w.cond.holds(value),
                    };
                    if fires {
                        pauses.push(format!(
                            "data breakpoint: {wid} ({}{}) — wrote {} to [{:#010x}, {:#010x}) at pc {:#010x} in {in_func}()",
                            w.kind,
                            w.cond,
                            value,
                            ev.addr,
                            ev.addr + ev.len,
                            ev.pc,
                        ));
                    }
                }
                if pausing && !pauses.is_empty() {
                    self.state = RunState::Paused;
                    return Ok(Some(pauses.join("\n")));
                }
                Ok(None)
            }
            StopReason::Mark {
                kind: MarkKind::Enter,
                fid,
                fp,
                ..
            } => {
                self.stack.push((fid, fp));
                self.frame_monitors.push(Vec::new());
                // Install monitors for local watches on this function.
                let to_install: Vec<(WatchId, i32, u32)> = self
                    .watches
                    .iter()
                    .filter_map(|(n, w)| match w.kind {
                        WatchKind::Local { func, var, .. } if func == fid => {
                            let l =
                                &self.compiled.debug.functions[func as usize].locals[var as usize];
                            Some((WatchId(*n), l.offset, l.size))
                        }
                        _ => None,
                    })
                    .collect();
                for (wid, off, size) in to_install {
                    let ba = fp.wrapping_add(off as u32);
                    let id = self.install(ba, ba + size, wid);
                    self.frame_monitors
                        .last_mut()
                        .expect("frame just pushed")
                        .push((id, Monitor::new(ba, ba + size).expect("non-empty")));
                }
                if pausing {
                    if let Some((n, _)) = self.breaks.iter().find(|(_, f)| **f == fid) {
                        self.state = RunState::Paused;
                        return Ok(Some(format!(
                            "breakpoint #{n}: entered {}()",
                            self.func_name(fid)
                        )));
                    }
                }
                Ok(None)
            }
            StopReason::Mark {
                kind: MarkKind::Exit,
                ..
            } => {
                let frames = self.frame_monitors.pop().unwrap_or_default();
                for (id, mon) in frames {
                    self.map.remove(id, mon);
                    self.mon_watch.remove(&id);
                }
                self.stack.pop();
                Ok(None)
            }
            StopReason::HeapAlloc { seq, ba, ea } => {
                self.heap_live.insert(seq, (ba, ea));
                let wid = self.watches.iter().find_map(|(n, w)| match w.kind {
                    WatchKind::Heap { seq: s } if s == seq => Some(WatchId(*n)),
                    _ => None,
                });
                if let Some(wid) = wid {
                    let id = self.install(ba, ea, wid);
                    self.heap_monitors
                        .insert(seq, (id, Monitor::new(ba, ea).expect("non-empty")));
                }
                Ok(None)
            }
            StopReason::HeapFree { seq, .. } => {
                self.heap_live.remove(&seq);
                if let Some((id, mon)) = self.heap_monitors.remove(&seq) {
                    self.map.remove(id, mon);
                    self.mon_watch.remove(&id);
                }
                Ok(None)
            }
            StopReason::HeapRealloc {
                seq,
                new_ba,
                new_ea,
                ..
            } => {
                self.heap_live.insert(seq, (new_ba, new_ea));
                if let Some((id, mon)) = self.heap_monitors.remove(&seq) {
                    let wid = self.mon_watch.remove(&id).expect("owned monitor");
                    self.map.remove(id, mon);
                    let nid = self.install(new_ba, new_ea, wid);
                    self.heap_monitors
                        .insert(seq, (nid, Monitor::new(new_ba, new_ea).expect("non-empty")));
                }
                Ok(None)
            }
            other => Err(DebuggerError::Command(format!(
                "unexpected machine stop {other:?}"
            ))),
        }
    }

    // ---- inspection ----

    fn read_value(&self, addr: u32, len: u32) -> Result<i32, DebuggerError> {
        Ok(match len {
            1 => self.machine.mem().load_u8(addr, 0)? as i8 as i32,
            _ => self.machine.mem().load_u32(addr & !3, 0)? as i32,
        })
    }

    fn func_name(&self, fid: u16) -> &str {
        self.compiled
            .debug
            .functions
            .get(fid as usize)
            .map(|f| f.name.as_str())
            .unwrap_or("?")
    }

    fn func_at(&self, pc: u32) -> &str {
        self.compiled
            .debug
            .functions
            .iter()
            .filter(|f| f.entry_pc <= pc)
            .max_by_key(|f| f.entry_pc)
            .map(|f| f.name.as_str())
            .unwrap_or("<startup>")
    }

    fn print_var(&self, name: &str) -> Result<String, DebuggerError> {
        let debug = &self.compiled.debug;
        // func.var form: topmost live frame of func.
        if let Some((func, var)) = name.split_once('.') {
            let fid = debug
                .func_id(func)
                .ok_or_else(|| DebuggerError::Command(format!("no function '{func}'")))?;
            let local = debug.functions[fid as usize]
                .locals
                .iter()
                .find(|l| l.name == var)
                .ok_or_else(|| DebuggerError::Command(format!("{func}() has no local '{var}'")))?;
            let (_, fp) = self
                .stack
                .iter()
                .rev()
                .find(|(f, _)| *f == fid)
                .ok_or_else(|| DebuggerError::Command(format!("{func}() is not live")))?;
            let ba = fp.wrapping_add(local.offset as u32);
            let v = self.read_value(ba, local.size.min(4))?;
            return Ok(format!(
                "{name} = {v} (at {ba:#010x}, {} bytes)",
                local.size
            ));
        }
        // Bare name: local of the innermost frame, then global.
        if let Some(&(fid, fp)) = self.stack.last() {
            if let Some(l) = debug.functions[fid as usize]
                .locals
                .iter()
                .find(|l| l.name == name)
            {
                let ba = fp.wrapping_add(l.offset as u32);
                let v = self.read_value(ba, l.size.min(4))?;
                return Ok(format!(
                    "{name} = {v} (local of {}(), at {ba:#010x})",
                    self.func_name(fid)
                ));
            }
        }
        let g = debug
            .global(name)
            .ok_or_else(|| DebuggerError::Command(format!("no variable named '{name}'")))?;
        let v = self.read_value(g.ba, (g.ea - g.ba).min(4))?;
        Ok(format!(
            "{name} = {v} (global at {:#010x}, {} bytes)",
            g.ba,
            g.ea - g.ba
        ))
    }

    fn backtrace(&self) -> String {
        if self.stack.is_empty() {
            return "no stack (program not running)".to_string();
        }
        let mut out = String::new();
        for (i, (fid, fp)) in self.stack.iter().rev().enumerate() {
            out.push_str(&format!("#{i} {}() fp={fp:#010x}\n", self.func_name(*fid)));
        }
        out
    }

    fn info_watch(&self) -> String {
        if self.watches.is_empty() {
            return "no watches".to_string();
        }
        let mut out = String::new();
        for (n, w) in &self.watches {
            let live = self.mon_watch.values().filter(|wid| wid.0 == *n).count();
            out.push_str(&format!(
                "watch #{n}: {}{} — {} hit{}, {} live monitor{}\n",
                w.kind,
                w.cond,
                w.hits,
                if w.hits == 1 { "" } else { "s" },
                live,
                if live == 1 { "" } else { "s" },
            ));
        }
        out
    }

    fn info_break(&self) -> String {
        if self.breaks.is_empty() {
            return "no breakpoints".to_string();
        }
        self.breaks
            .iter()
            .map(|(n, fid)| format!("breakpoint #{n}: {}()\n", self.func_name(*fid)))
            .collect()
    }

    fn disassemble(&self, n: u32) -> Result<String, DebuggerError> {
        let pc = self.machine.cpu().pc();
        let start = self.machine.pc_to_index(pc)?;
        let mut out = String::new();
        for i in start..(start + n as usize).min(self.machine.code_len()) {
            let instr = self.machine.instr_at(i)?;
            let addr = databp_machine::CODE_BASE + 4 * i as u32;
            let marker = if addr == pc { "=>" } else { "  " };
            out.push_str(&format!(
                "{marker} {addr:#010x}: {}\n",
                disasm::format_instr(&instr)
            ));
        }
        Ok(out)
    }
}

const HELP: &str = "\
qei — data-breakpoint debugger (after Wahbe, ASPLOS 1992)
  watch <g>                 data breakpoint on global g
  watch <f>.<v>             data breakpoint on local v of function f
  watch heap <n>            data breakpoint on heap allocation #n
  ... if ==|!=|<|> <value>  pause only when the stored value matches
  break <f>                 control breakpoint at function entry
  delete <n>                remove watch #n
  run / continue            start / resume the program
  stepi [n]                 execute n instructions
  print <v> | <f>.<v>       read a variable
  backtrace                 show the call stack
  info watch | info break   list breakpoints
  disasm [n]                disassemble at pc
  output                    show program output so far
  quit";
