//! `qei` — interactive REPL over the databp debugger.
//!
//! ```text
//! usage: qei <program.c> [args...]
//! ```
//!
//! Reads debugger commands from stdin (one per line; see `help`).

use databp_debugger::{Debugger, RunState};
use std::io::{BufRead, Write};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!("usage: qei <program.c> [args...]");
        return ExitCode::FAILURE;
    };
    let prog_args: Vec<i32> = args
        .map(|a| a.parse().expect("program arguments are integers"))
        .collect();
    let source = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("qei: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut dbg = match Debugger::launch(&source, &prog_args) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("qei: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("qei: loaded {path} (type 'help' for commands)");

    let stdin = std::io::stdin();
    loop {
        print!("(qei) ");
        std::io::stdout().flush().expect("stdout");
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("qei: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == "quit" || line == "q" || line == "exit" {
            break;
        }
        match dbg.execute(line) {
            Ok(out) => {
                if !out.is_empty() {
                    println!("{out}");
                }
            }
            Err(e) => println!("error: {e}"),
        }
        if matches!(dbg.state(), RunState::Exited(_)) && line.starts_with(['r', 'c']) {
            // Show any remaining program output on exit.
            let out = dbg.execute("output").expect("output always works");
            if !out.is_empty() {
                println!("--- program output ---\n{out}");
            }
        }
    }
    ExitCode::SUCCESS
}
