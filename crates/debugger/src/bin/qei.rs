//! `qei` — interactive REPL over the databp debugger.
//!
//! ```text
//! usage: qei [--telemetry FMT] <program.c> [args...]
//! ```
//!
//! Reads debugger commands from stdin (one per line; see `help`).
//! `--telemetry` (FMT: text, json, csv) enables command-latency spans
//! and dumps a snapshot when the session ends.

use databp_debugger::{Debugger, RunState};
use std::io::{BufRead, Write};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    let mut telemetry: Option<String> = None;
    if let Some(pos) = argv.iter().position(|a| a == "--telemetry") {
        argv.remove(pos);
        if pos >= argv.len() {
            eprintln!("--telemetry needs a format: text, json, or csv");
            return ExitCode::FAILURE;
        }
        let fmt = argv.remove(pos);
        if !matches!(fmt.as_str(), "text" | "json" | "csv") {
            eprintln!("unknown telemetry format '{fmt}' (expected text, json, or csv)");
            return ExitCode::FAILURE;
        }
        databp_telemetry::set_enabled(true);
        telemetry = Some(fmt);
    }
    let mut args = argv.into_iter();
    let Some(path) = args.next() else {
        eprintln!("usage: qei [--telemetry FMT] <program.c> [args...]");
        return ExitCode::FAILURE;
    };
    let prog_args: Vec<i32> = args
        .map(|a| a.parse().expect("program arguments are integers"))
        .collect();
    let source = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("qei: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut dbg = match Debugger::launch(&source, &prog_args) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("qei: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("qei: loaded {path} (type 'help' for commands)");

    let stdin = std::io::stdin();
    loop {
        print!("(qei) ");
        std::io::stdout().flush().expect("stdout");
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("qei: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == "quit" || line == "q" || line == "exit" {
            break;
        }
        match dbg.execute(line) {
            Ok(out) => {
                if !out.is_empty() {
                    println!("{out}");
                }
            }
            Err(e) => println!("error: {e}"),
        }
        if matches!(dbg.state(), RunState::Exited(_)) && line.starts_with(['r', 'c']) {
            // Show any remaining program output on exit.
            let out = dbg.execute("output").expect("output always works");
            if !out.is_empty() {
                println!("--- program output ---\n{out}");
            }
        }
    }
    if let Some(fmt) = telemetry {
        let snap = databp_telemetry::global().snapshot();
        print!(
            "{}",
            match fmt.as_str() {
                "json" => snap.to_json(),
                "csv" => snap.to_csv(),
                _ => snap.to_text(),
            }
        );
    }
    ExitCode::SUCCESS
}
