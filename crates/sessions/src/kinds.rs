//! Session types and instances.

use databp_tinyc::DebugInfo;
use std::fmt;

/// The five session types of Section 5 (Table 1's columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SessionKind {
    /// Monitor a single local automatic variable.
    OneLocalAuto,
    /// Monitor all locals of a function, including local statics.
    AllLocalInFunc,
    /// Monitor a single file-scope variable.
    OneGlobalStatic,
    /// Monitor a single heap object.
    OneHeap,
    /// Monitor all heap objects allocated in a function's dynamic
    /// context.
    AllHeapInFunc,
}

impl SessionKind {
    /// All kinds in Table 1 column order.
    pub const ALL: [SessionKind; 5] = [
        SessionKind::OneLocalAuto,
        SessionKind::AllLocalInFunc,
        SessionKind::OneGlobalStatic,
        SessionKind::OneHeap,
        SessionKind::AllHeapInFunc,
    ];

    /// The paper's column heading.
    pub fn title(self) -> &'static str {
        match self {
            SessionKind::OneLocalAuto => "OneLocalAuto",
            SessionKind::AllLocalInFunc => "AllLocalInFunc",
            SessionKind::OneGlobalStatic => "OneGlobalStatic",
            SessionKind::OneHeap => "OneHeap",
            SessionKind::AllHeapInFunc => "AllHeapInFunc",
        }
    }
}

impl fmt::Display for SessionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.title())
    }
}

/// One concrete monitor session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Session {
    /// Monitor local `var` of function `func`.
    OneLocalAuto {
        /// Function id.
        func: u16,
        /// Variable index.
        var: u16,
    },
    /// Monitor every local (and static) of `func`.
    AllLocalInFunc {
        /// Function id.
        func: u16,
    },
    /// Monitor file-scope global `global`.
    OneGlobalStatic {
        /// Global id.
        global: u32,
    },
    /// Monitor heap object `seq`.
    OneHeap {
        /// Allocation sequence number.
        seq: u32,
    },
    /// Monitor heap objects allocated while `func` is on the stack.
    AllHeapInFunc {
        /// Function id.
        func: u16,
    },
}

impl Session {
    /// The session's kind.
    pub fn kind(&self) -> SessionKind {
        match self {
            Session::OneLocalAuto { .. } => SessionKind::OneLocalAuto,
            Session::AllLocalInFunc { .. } => SessionKind::AllLocalInFunc,
            Session::OneGlobalStatic { .. } => SessionKind::OneGlobalStatic,
            Session::OneHeap { .. } => SessionKind::OneHeap,
            Session::AllHeapInFunc { .. } => SessionKind::AllHeapInFunc,
        }
    }

    /// A human-readable description using program symbol names.
    pub fn describe(&self, debug: &DebugInfo) -> String {
        let fname = |fid: u16| {
            debug
                .functions
                .get(fid as usize)
                .map(|f| f.name.as_str())
                .unwrap_or("?")
        };
        match *self {
            Session::OneLocalAuto { func, var } => {
                let vname = debug
                    .functions
                    .get(func as usize)
                    .and_then(|f| f.locals.get(var as usize))
                    .map(|l| l.name.as_str())
                    .unwrap_or("?");
                format!("watch local '{}' of {}()", vname, fname(func))
            }
            Session::AllLocalInFunc { func } => {
                format!("watch all locals of {}()", fname(func))
            }
            Session::OneGlobalStatic { global } => {
                let gname = debug
                    .globals
                    .get(global as usize)
                    .map(|g| g.name.as_str())
                    .unwrap_or("?");
                format!("watch global '{gname}'")
            }
            Session::OneHeap { seq } => format!("watch heap object #{seq}"),
            Session::AllHeapInFunc { func } => {
                format!("watch all heap objects allocated under {}()", fname(func))
            }
        }
    }
}

impl fmt::Display for Session {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Session::OneLocalAuto { func, var } => write!(f, "OneLocalAuto(f{func}.v{var})"),
            Session::AllLocalInFunc { func } => write!(f, "AllLocalInFunc(f{func})"),
            Session::OneGlobalStatic { global } => write!(f, "OneGlobalStatic(g{global})"),
            Session::OneHeap { seq } => write!(f, "OneHeap(h{seq})"),
            Session::AllHeapInFunc { func } => write!(f, "AllHeapInFunc(f{func})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_cover_all_sessions() {
        assert_eq!(
            Session::OneLocalAuto { func: 0, var: 1 }.kind(),
            SessionKind::OneLocalAuto
        );
        assert_eq!(
            Session::AllLocalInFunc { func: 0 }.kind(),
            SessionKind::AllLocalInFunc
        );
        assert_eq!(
            Session::OneGlobalStatic { global: 0 }.kind(),
            SessionKind::OneGlobalStatic
        );
        assert_eq!(Session::OneHeap { seq: 0 }.kind(), SessionKind::OneHeap);
        assert_eq!(
            Session::AllHeapInFunc { func: 0 }.kind(),
            SessionKind::AllHeapInFunc
        );
    }

    #[test]
    fn titles_match_table_1() {
        let titles: Vec<_> = SessionKind::ALL.iter().map(|k| k.title()).collect();
        assert_eq!(
            titles,
            [
                "OneLocalAuto",
                "AllLocalInFunc",
                "OneGlobalStatic",
                "OneHeap",
                "AllHeapInFunc"
            ]
        );
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Session::OneHeap { seq: 7 }.to_string(), "OneHeap(h7)");
        assert_eq!(
            Session::OneLocalAuto { func: 2, var: 3 }.to_string(),
            "OneLocalAuto(f2.v3)"
        );
    }
}
