//! Monitor sessions — the paper's Section 5.
//!
//! A *monitor session* characterizes the write-monitor activity of one
//! debugging scenario over one program run. The paper defines five
//! program-independent session types and instantiates each over every
//! matching program object:
//!
//! * [`Session::OneLocalAuto`] — one local automatic variable (all of
//!   its instantiations);
//! * [`Session::AllLocalInFunc`] — all locals of one function,
//!   *including function-static variables*;
//! * [`Session::OneGlobalStatic`] — one file-scope variable;
//! * [`Session::OneHeap`] — one heap object (identity survives
//!   `realloc`);
//! * [`Session::AllHeapInFunc`] — every heap object allocated by `f` or
//!   by functions executing in `f`'s dynamic context.
//!
//! This crate enumerates all candidate sessions from debug information
//! plus a trace ([`enumerate_sessions`]), adapts them to both evaluation
//! paths — [`databp_sim::Membership`] for trace-driven simulation
//! ([`SessionSet`]) and [`databp_core::MonitorPlan`] for executable
//! strategy runs ([`SessionPlan`]) — and mirrors the paper's filtering of
//! sessions with no monitor hits.

mod enumerate;
mod kinds;
mod plan;
mod setindex;
mod stream;

pub use enumerate::{enumerate_sessions, heap_contexts};
pub use kinds::{Session, SessionKind};
pub use plan::SessionPlan;
pub use setindex::SessionSet;
pub use stream::StreamSessionSet;
