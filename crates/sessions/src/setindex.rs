//! [`SessionSet`]: indexed membership for the one-pass simulator.

use crate::enumerate::heap_contexts;
use crate::kinds::Session;
use databp_sim::Membership;
use databp_tinyc::DebugInfo;
use databp_trace::{ObjectDesc, Trace};
use std::collections::HashMap;

/// A set of sessions indexed for O(1) object→sessions lookup, the
/// [`Membership`] implementation fed to [`databp_sim::simulate`].
#[derive(Debug, Clone)]
pub struct SessionSet {
    sessions: Vec<Session>,
    by_local: HashMap<(u16, u16), u32>,
    by_allloc: HashMap<u16, u32>,
    by_global: HashMap<u32, u32>,
    static_owner: HashMap<u32, u16>,
    by_heap: HashMap<u32, u32>,
    by_allheap: HashMap<u16, u32>,
    heap_ctx: HashMap<u32, Vec<u16>>,
}

impl SessionSet {
    /// Indexes `sessions` for the program described by `debug` and the
    /// run recorded in `trace` (needed for heap allocation contexts).
    pub fn new(sessions: Vec<Session>, debug: &DebugInfo, trace: &Trace) -> Self {
        let mut s = SessionSet {
            sessions,
            by_local: HashMap::new(),
            by_allloc: HashMap::new(),
            by_global: HashMap::new(),
            static_owner: HashMap::new(),
            by_heap: HashMap::new(),
            by_allheap: HashMap::new(),
            heap_ctx: heap_contexts(trace),
        };
        for g in &debug.globals {
            if let Some(owner) = g.owner {
                s.static_owner.insert(g.id, owner);
            }
        }
        for (i, sess) in s.sessions.iter().enumerate() {
            let i = i as u32;
            match *sess {
                Session::OneLocalAuto { func, var } => {
                    s.by_local.insert((func, var), i);
                }
                Session::AllLocalInFunc { func } => {
                    s.by_allloc.insert(func, i);
                }
                Session::OneGlobalStatic { global } => {
                    s.by_global.insert(global, i);
                }
                Session::OneHeap { seq } => {
                    s.by_heap.insert(seq, i);
                }
                Session::AllHeapInFunc { func } => {
                    s.by_allheap.insert(func, i);
                }
            }
        }
        s
    }

    /// The indexed sessions, in index order.
    pub fn sessions(&self) -> &[Session] {
        &self.sessions
    }

    /// The session at index `i`.
    pub fn session(&self, i: u32) -> Session {
        self.sessions[i as usize]
    }
}

impl Membership for SessionSet {
    fn count(&self) -> usize {
        self.sessions.len()
    }

    fn sessions_of(&self, obj: &ObjectDesc, out: &mut Vec<u32>) {
        out.clear();
        match *obj {
            ObjectDesc::Local { func, var } => {
                if let Some(&i) = self.by_local.get(&(func, var)) {
                    out.push(i);
                }
                if let Some(&i) = self.by_allloc.get(&func) {
                    out.push(i);
                }
            }
            ObjectDesc::Global { id } => match self.static_owner.get(&id) {
                Some(owner) => {
                    if let Some(&i) = self.by_allloc.get(owner) {
                        out.push(i);
                    }
                }
                None => {
                    if let Some(&i) = self.by_global.get(&id) {
                        out.push(i);
                    }
                }
            },
            ObjectDesc::Heap { seq } => {
                if let Some(&i) = self.by_heap.get(&seq) {
                    out.push(i);
                }
                if let Some(fids) = self.heap_ctx.get(&seq) {
                    for f in fids {
                        if let Some(&i) = self.by_allheap.get(f) {
                            out.push(i);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::enumerate_sessions;
    use databp_machine::{Machine, StopReason};
    use databp_tinyc::{compile, Options};
    use databp_trace::Tracer;

    fn setup(src: &str) -> (DebugInfo, Trace, SessionSet) {
        let c = compile(src, &Options::plain()).unwrap();
        let mut m = Machine::new();
        m.load(&c.program);
        let mut tracer = Tracer::new(c.debug.frame_map(), c.debug.global_specs())
            .with_untraced(c.debug.untraced_store_pcs.clone());
        tracer.begin();
        assert_eq!(m.run(&mut tracer, 50_000_000).unwrap(), StopReason::Halted);
        let trace = tracer.finish();
        let sessions = enumerate_sessions(&c.debug, &trace);
        let set = SessionSet::new(sessions, &c.debug, &trace);
        (c.debug, trace, set)
    }

    const SRC: &str = r#"
        int g;
        int alloc_one(int n) {
            int *p;
            p = (int*)malloc(8);
            p[0] = n;
            free((char*)p);
            return n;
        }
        int worker() { static int calls; calls = calls + 1; return alloc_one(calls); }
        int main() { g = worker() + worker(); return g; }
    "#;

    #[test]
    fn local_objects_map_to_both_local_session_types() {
        let (debug, _, set) = setup(SRC);
        let f = debug.func_id("alloc_one").unwrap();
        let mut out = Vec::new();
        set.sessions_of(&ObjectDesc::Local { func: f, var: 0 }, &mut out);
        assert_eq!(out.len(), 2);
        let kinds: Vec<_> = out.iter().map(|&i| set.session(i).kind()).collect();
        assert!(kinds.contains(&crate::SessionKind::OneLocalAuto));
        assert!(kinds.contains(&crate::SessionKind::AllLocalInFunc));
    }

    #[test]
    fn statics_map_to_owner_allloc_only() {
        let (debug, _, set) = setup(SRC);
        let worker = debug.func_id("worker").unwrap();
        let static_gid = debug
            .globals
            .iter()
            .find(|g| g.owner == Some(worker))
            .unwrap()
            .id;
        let mut out = Vec::new();
        set.sessions_of(&ObjectDesc::Global { id: static_gid }, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(
            set.session(out[0]),
            Session::AllLocalInFunc { func: worker }
        );
    }

    #[test]
    fn file_scope_global_maps_to_one_global_static() {
        let (debug, _, set) = setup(SRC);
        let gid = debug.global("g").unwrap().id;
        let mut out = Vec::new();
        set.sessions_of(&ObjectDesc::Global { id: gid }, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(
            set.session(out[0]),
            Session::OneGlobalStatic { global: gid }
        );
    }

    #[test]
    fn heap_objects_map_to_one_heap_and_context_funcs() {
        let (debug, _, set) = setup(SRC);
        let mut out = Vec::new();
        set.sessions_of(&ObjectDesc::Heap { seq: 0 }, &mut out);
        // OneHeap(0) + AllHeapInFunc for alloc_one, worker, main.
        assert_eq!(out.len(), 4, "{out:?}");
        let _ = debug;
    }

    #[test]
    fn unknown_objects_map_to_nothing() {
        let (_, _, set) = setup(SRC);
        let mut out = Vec::new();
        set.sessions_of(&ObjectDesc::Heap { seq: 999 }, &mut out);
        assert!(out.is_empty());
        set.sessions_of(&ObjectDesc::Local { func: 99, var: 0 }, &mut out);
        assert!(out.is_empty());
    }
}
