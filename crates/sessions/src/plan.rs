//! Adapting a session to the executable strategies' [`MonitorPlan`].

use crate::kinds::Session;
use databp_core::{MonitorPlan, PlanClass};
use databp_tinyc::DebugInfo;

/// A [`Session`] paired with the program's debug information, usable as a
/// [`MonitorPlan`] by the executable WMS strategies.
///
/// The debug info is needed because `AllLocalInFunc` includes the
/// function's *static* locals, which live in the global table with an
/// owner tag.
#[derive(Debug, Clone, Copy)]
pub struct SessionPlan<'a> {
    session: Session,
    debug: &'a DebugInfo,
}

impl<'a> SessionPlan<'a> {
    /// Pairs `session` with its program.
    pub fn new(session: Session, debug: &'a DebugInfo) -> Self {
        SessionPlan { session, debug }
    }

    /// The underlying session.
    pub fn session(&self) -> Session {
        self.session
    }
}

impl MonitorPlan for SessionPlan<'_> {
    fn monitor_global(&self, id: u32) -> bool {
        match self.session {
            Session::OneGlobalStatic { global } => global == id,
            Session::AllLocalInFunc { func } => self
                .debug
                .globals
                .get(id as usize)
                .is_some_and(|g| g.owner == Some(func)),
            _ => false,
        }
    }

    fn monitor_local(&self, func: u16, var: u16) -> bool {
        match self.session {
            Session::OneLocalAuto { func: f, var: v } => f == func && v == var,
            Session::AllLocalInFunc { func: f } => f == func,
            _ => false,
        }
    }

    fn monitor_heap(&self, seq: u32, stack: &[u16]) -> bool {
        match self.session {
            Session::OneHeap { seq: s } => s == seq,
            Session::AllHeapInFunc { func } => stack.contains(&func),
            _ => false,
        }
    }

    fn plan_class(&self) -> PlanClass {
        match self.session {
            Session::OneLocalAuto { .. } => PlanClass::STACK,
            Session::AllLocalInFunc { func } => {
                // The session also covers the function's *statics*,
                // which live in the global segment.
                let has_statics = self.debug.globals.iter().any(|g| g.owner == Some(func));
                if has_statics {
                    PlanClass::STACK.union(PlanClass::GLOBAL)
                } else {
                    PlanClass::STACK
                }
            }
            Session::OneGlobalStatic { .. } => PlanClass::GLOBAL,
            Session::OneHeap { .. } | Session::AllHeapInFunc { .. } => PlanClass::HEAP,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use databp_tinyc::{compile, Options};

    fn debug() -> DebugInfo {
        compile(
            r#"
            int g;
            int f() { static int s; int x; x = 1; s = x; return s; }
            int main() { g = f(); return g; }
            "#,
            &Options::plain(),
        )
        .unwrap()
        .debug
    }

    #[test]
    fn one_global_static_matches_exactly() {
        let d = debug();
        let gid = d.global("g").unwrap().id;
        let p = SessionPlan::new(Session::OneGlobalStatic { global: gid }, &d);
        assert!(p.monitor_global(gid));
        assert!(!p.monitor_global(gid + 1));
        assert!(!p.monitor_local(0, 0));
        assert!(!p.monitor_heap(0, &[0]));
    }

    #[test]
    fn all_local_in_func_includes_statics() {
        let d = debug();
        let f = d.func_id("f").unwrap();
        let static_gid = d.globals.iter().find(|g| g.owner == Some(f)).unwrap().id;
        let p = SessionPlan::new(Session::AllLocalInFunc { func: f }, &d);
        assert!(p.monitor_local(f, 0), "locals of f");
        assert!(!p.monitor_local(f + 1, 0), "not other functions' locals");
        assert!(
            p.monitor_global(static_gid),
            "f's static belongs to the session"
        );
        let other_gid = d.global("g").unwrap().id;
        assert!(!p.monitor_global(other_gid));
    }

    #[test]
    fn heap_sessions_use_stack_context() {
        let d = debug();
        let p = SessionPlan::new(Session::AllHeapInFunc { func: 3 }, &d);
        assert!(p.monitor_heap(0, &[1, 3, 5]));
        assert!(!p.monitor_heap(0, &[1, 5]));
        let q = SessionPlan::new(Session::OneHeap { seq: 9 }, &d);
        assert!(q.monitor_heap(9, &[]));
        assert!(!q.monitor_heap(8, &[]));
    }

    #[test]
    fn plan_classes_cover_session_regions() {
        let d = debug();
        let f = d.func_id("f").unwrap();
        let main = d.func_id("main").unwrap();
        let mk = |s| SessionPlan::new(s, &d).plan_class();
        assert_eq!(
            mk(Session::OneLocalAuto { func: f, var: 0 }),
            PlanClass::STACK
        );
        assert_eq!(
            mk(Session::AllLocalInFunc { func: f }),
            PlanClass::STACK.union(PlanClass::GLOBAL),
            "f has a static local in the global segment"
        );
        assert_eq!(mk(Session::AllLocalInFunc { func: main }), PlanClass::STACK);
        assert_eq!(
            mk(Session::OneGlobalStatic { global: 0 }),
            PlanClass::GLOBAL
        );
        assert_eq!(mk(Session::OneHeap { seq: 0 }), PlanClass::HEAP);
        assert_eq!(mk(Session::AllHeapInFunc { func: f }), PlanClass::HEAP);
    }

    #[test]
    fn one_local_auto_matches_single_variable() {
        let d = debug();
        let f = d.func_id("f").unwrap();
        let p = SessionPlan::new(Session::OneLocalAuto { func: f, var: 0 }, &d);
        assert!(p.monitor_local(f, 0));
        assert!(!p.monitor_local(f, 1));
        assert!(!p.monitor_global(0));
    }
}
