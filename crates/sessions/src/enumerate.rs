//! Session enumeration — "we discovered all instances of the monitor
//! session types described in Section 5" (Section 8).

use crate::kinds::Session;
use databp_tinyc::DebugInfo;
use databp_trace::{Event, ObjectDesc, Trace};
use std::collections::HashMap;

/// For each heap object, the set of functions on the dynamic call stack
/// when it was (first) allocated — the membership context for
/// `AllHeapInFunc`.
///
/// Requires the trace's `Enter`/`Exit` records; re-installs of the same
/// sequence number (realloc) do not change the context.
pub fn heap_contexts(trace: &Trace) -> HashMap<u32, Vec<u16>> {
    let mut stack: Vec<u16> = Vec::new();
    let mut ctx: HashMap<u32, Vec<u16>> = HashMap::new();
    for ev in trace.events() {
        match *ev {
            Event::Enter { func } => stack.push(func),
            Event::Exit { .. } => {
                stack.pop();
            }
            Event::Install {
                obj: ObjectDesc::Heap { seq },
                ..
            } => {
                ctx.entry(seq).or_insert_with(|| {
                    let mut fids = stack.clone();
                    fids.sort_unstable();
                    fids.dedup();
                    fids
                });
            }
            _ => {}
        }
    }
    ctx
}

/// Enumerates every candidate session of all five types for one program
/// run. (Zero-hit filtering happens after simulation, as in the paper.)
///
/// * `OneLocalAuto`: every local automatic variable (parameters
///   included) of every function.
/// * `AllLocalInFunc`: every function that has at least one local or
///   function-static variable.
/// * `OneGlobalStatic`: every file-scope variable (string literals
///   excluded).
/// * `OneHeap`: every heap object allocated during the run.
/// * `AllHeapInFunc`: every function in whose dynamic context at least
///   one heap object was allocated.
pub fn enumerate_sessions(debug: &DebugInfo, trace: &Trace) -> Vec<Session> {
    let mut out = static_sessions(debug);
    let ctx = heap_contexts(trace);
    let mut seqs: Vec<u32> = ctx.keys().copied().collect();
    seqs.sort_unstable();
    for seq in seqs {
        out.push(Session::OneHeap { seq });
    }
    let mut alloc_funcs: Vec<u16> = ctx.values().flatten().copied().collect();
    alloc_funcs.sort_unstable();
    alloc_funcs.dedup();
    for func in alloc_funcs {
        out.push(Session::AllHeapInFunc { func });
    }
    out
}

/// The statically-known session prefix — everything
/// [`enumerate_sessions`] derives from debug info alone, in the same
/// order. Heap sessions (`OneHeap` / `AllHeapInFunc`) need the run's
/// trace and follow this prefix; the streaming pipeline discovers them
/// online instead (see `StreamSessionSet`).
pub(crate) fn static_sessions(debug: &DebugInfo) -> Vec<Session> {
    let mut out = Vec::new();
    for (fid, f) in debug.functions.iter().enumerate() {
        for l in &f.locals {
            out.push(Session::OneLocalAuto {
                func: fid as u16,
                var: l.var,
            });
        }
    }
    let has_static: Vec<bool> = {
        let mut v = vec![false; debug.functions.len()];
        for g in &debug.globals {
            if let Some(owner) = g.owner {
                v[owner as usize] = true;
            }
        }
        v
    };
    for (fid, f) in debug.functions.iter().enumerate() {
        if !f.locals.is_empty() || has_static[fid] {
            out.push(Session::AllLocalInFunc { func: fid as u16 });
        }
    }
    for g in &debug.globals {
        if !g.is_literal && g.owner.is_none() {
            out.push(Session::OneGlobalStatic { global: g.id });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kinds::SessionKind;
    use databp_machine::{Machine, StopReason};
    use databp_tinyc::{compile, Options};
    use databp_trace::Tracer;

    fn trace_of(src: &str) -> (DebugInfo, Trace) {
        let c = compile(src, &Options::plain()).unwrap();
        let mut m = Machine::new();
        m.load(&c.program);
        let mut tracer = Tracer::new(c.debug.frame_map(), c.debug.global_specs())
            .with_untraced(c.debug.untraced_store_pcs.clone());
        tracer.begin();
        assert_eq!(m.run(&mut tracer, 50_000_000).unwrap(), StopReason::Halted);
        (c.debug, tracer.finish())
    }

    const SRC: &str = r#"
        int g1;
        int g2;
        int leaf(int n) {
            int *p;
            p = (int*)malloc(8);
            p[0] = n;
            free((char*)p);
            return n;
        }
        int mid(int n) { static int cache; cache = n; return leaf(n) + cache; }
        int main() {
            int i;
            g1 = 0;
            for (i = 0; i < 3; i = i + 1) g1 = g1 + mid(i);
            g2 = g1;
            return g2;
        }
    "#;

    #[test]
    fn enumeration_covers_all_kinds() {
        let (debug, trace) = trace_of(SRC);
        let sessions = enumerate_sessions(&debug, &trace);
        let count = |k: SessionKind| sessions.iter().filter(|s| s.kind() == k).count();
        // Locals: leaf(n, p) + mid(n) + main(i) = 4.
        assert_eq!(count(SessionKind::OneLocalAuto), 4);
        // All three functions have locals (mid also has a static).
        assert_eq!(count(SessionKind::AllLocalInFunc), 3);
        // File-scope globals only (the static belongs to AllLocalInFunc).
        assert_eq!(count(SessionKind::OneGlobalStatic), 2);
        // Three allocations (one per loop iteration).
        assert_eq!(count(SessionKind::OneHeap), 3);
        // Allocation context: main -> mid -> leaf.
        assert_eq!(count(SessionKind::AllHeapInFunc), 3);
    }

    #[test]
    fn heap_contexts_capture_dynamic_stack() {
        let (debug, trace) = trace_of(SRC);
        let ctx = heap_contexts(&trace);
        assert_eq!(ctx.len(), 3);
        let leaf = debug.func_id("leaf").unwrap();
        let mid = debug.func_id("mid").unwrap();
        let main = debug.func_id("main").unwrap();
        for fids in ctx.values() {
            let mut expect = vec![leaf, mid, main];
            expect.sort_unstable();
            assert_eq!(fids, &expect);
        }
    }

    #[test]
    fn no_heap_program_has_no_heap_sessions() {
        // The CTEX/QCD property from Table 1: zero OneHeap /
        // AllHeapInFunc sessions.
        let (debug, trace) = trace_of("int g; int main() { g = 1; return g; }");
        let sessions = enumerate_sessions(&debug, &trace);
        assert!(sessions
            .iter()
            .all(|s| !matches!(s.kind(), SessionKind::OneHeap | SessionKind::AllHeapInFunc)));
    }

    #[test]
    fn realloc_does_not_create_a_second_heap_session() {
        let src = r#"
            int main() {
                char *p;
                p = malloc(8);
                p = realloc(p, 64);
                free(p);
                return 0;
            }
        "#;
        let (debug, trace) = trace_of(src);
        let sessions = enumerate_sessions(&debug, &trace);
        let heap: Vec<_> = sessions
            .iter()
            .filter(|s| s.kind() == SessionKind::OneHeap)
            .collect();
        assert_eq!(heap.len(), 1);
    }
}
