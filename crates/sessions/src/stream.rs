//! [`StreamSessionSet`]: online session discovery for the streaming
//! pipeline.
//!
//! The materialized pipeline enumerates sessions *after* the run
//! ([`crate::enumerate_sessions`] needs the whole trace for heap
//! allocation contexts) and then replays against a fixed
//! [`crate::SessionSet`]. When replay overlaps trace generation, the
//! session universe cannot be known up front, so this type discovers it
//! from the event stream itself: the statically-known sessions (locals,
//! per-function groups, globals) are indexed at construction from debug
//! info alone, and heap sessions (`OneHeap`, `AllHeapInFunc`) are
//! created the moment the first install of the allocation is resolved —
//! with the dynamic call stack at that instant as the allocation
//! context, exactly what [`crate::heap_contexts`] would later compute.
//!
//! Discovery order is a run artifact, so [`StreamSessionSet::into_canonical`]
//! finishes the job: it returns the session list in
//! [`crate::enumerate_sessions`] order plus the permutation taking
//! discovery indices to canonical ones, letting callers reorder
//! per-session counts and stay byte-compatible with the materialized
//! pipeline.

use crate::enumerate::static_sessions;
use crate::kinds::Session;
use databp_sim::StreamMembership;
use databp_tinyc::DebugInfo;
use databp_trace::ObjectDesc;
use std::collections::HashMap;

/// Session membership that grows as the event stream reveals heap
/// allocations. Resolution rules are identical to
/// [`crate::SessionSet::sessions_of`].
#[derive(Debug, Clone)]
pub struct StreamSessionSet {
    /// Discovery order: the static prefix, then heap sessions as seen.
    sessions: Vec<Session>,
    by_local: HashMap<(u16, u16), u32>,
    by_allloc: HashMap<u16, u32>,
    by_global: HashMap<u32, u32>,
    static_owner: HashMap<u32, u16>,
    by_heap: HashMap<u32, u32>,
    by_allheap: HashMap<u16, u32>,
    heap_ctx: HashMap<u32, Vec<u16>>,
    /// Dynamic call stack, maintained from `Enter`/`Exit` events.
    stack: Vec<u16>,
    n_static: usize,
}

impl StreamSessionSet {
    /// Indexes the statically-known sessions of `debug`; heap sessions
    /// are discovered during the stream.
    pub fn new(debug: &DebugInfo) -> Self {
        let sessions = static_sessions(debug);
        let mut s = StreamSessionSet {
            n_static: sessions.len(),
            sessions,
            by_local: HashMap::new(),
            by_allloc: HashMap::new(),
            by_global: HashMap::new(),
            static_owner: HashMap::new(),
            by_heap: HashMap::new(),
            by_allheap: HashMap::new(),
            heap_ctx: HashMap::new(),
            stack: Vec::new(),
        };
        for g in &debug.globals {
            if let Some(owner) = g.owner {
                s.static_owner.insert(g.id, owner);
            }
        }
        for (i, sess) in s.sessions.iter().enumerate() {
            let i = i as u32;
            match *sess {
                Session::OneLocalAuto { func, var } => {
                    s.by_local.insert((func, var), i);
                }
                Session::AllLocalInFunc { func } => {
                    s.by_allloc.insert(func, i);
                }
                Session::OneGlobalStatic { global } => {
                    s.by_global.insert(global, i);
                }
                Session::OneHeap { .. } | Session::AllHeapInFunc { .. } => {
                    unreachable!("static prefix holds no heap sessions")
                }
            }
        }
        s
    }

    /// The discovered sessions so far, in discovery order.
    pub fn sessions(&self) -> &[Session] {
        &self.sessions
    }

    /// Finishes discovery: the session list reordered to match
    /// [`crate::enumerate_sessions`] (static prefix, then `OneHeap` by
    /// ascending sequence number, then `AllHeapInFunc` by ascending
    /// function id), plus the permutation `perm` with
    /// `canonical[perm[i]] == discovered[i]` — apply it to per-session
    /// results indexed by discovery order.
    pub fn into_canonical(self) -> (Vec<Session>, Vec<u32>) {
        let mut seqs: Vec<u32> = self.by_heap.keys().copied().collect();
        seqs.sort_unstable();
        let mut funcs: Vec<u16> = self.by_allheap.keys().copied().collect();
        funcs.sort_unstable();
        let mut canonical = self.sessions[..self.n_static].to_vec();
        canonical.extend(seqs.iter().map(|&seq| Session::OneHeap { seq }));
        canonical.extend(funcs.iter().map(|&func| Session::AllHeapInFunc { func }));
        let mut perm = vec![0u32; self.sessions.len()];
        for (i, p) in perm.iter_mut().enumerate().take(self.n_static) {
            *p = i as u32;
        }
        for (j, seq) in seqs.iter().enumerate() {
            perm[self.by_heap[seq] as usize] = (self.n_static + j) as u32;
        }
        for (j, func) in funcs.iter().enumerate() {
            perm[self.by_allheap[func] as usize] = (self.n_static + seqs.len() + j) as u32;
        }
        (canonical, perm)
    }
}

impl StreamMembership for StreamSessionSet {
    fn count(&self) -> usize {
        self.sessions.len()
    }

    fn on_enter(&mut self, func: u16) {
        self.stack.push(func);
    }

    fn on_exit(&mut self, _func: u16) {
        self.stack.pop();
    }

    fn resolve(&mut self, obj: &ObjectDesc, out: &mut Vec<u32>) {
        out.clear();
        match *obj {
            ObjectDesc::Local { func, var } => {
                if let Some(&i) = self.by_local.get(&(func, var)) {
                    out.push(i);
                }
                if let Some(&i) = self.by_allloc.get(&func) {
                    out.push(i);
                }
            }
            ObjectDesc::Global { id } => match self.static_owner.get(&id) {
                Some(owner) => {
                    if let Some(&i) = self.by_allloc.get(owner) {
                        out.push(i);
                    }
                }
                None => {
                    if let Some(&i) = self.by_global.get(&id) {
                        out.push(i);
                    }
                }
            },
            ObjectDesc::Heap { seq } => {
                let heap_idx = match self.by_heap.get(&seq) {
                    Some(&i) => i,
                    None => {
                        // First install of this allocation: the session
                        // and its context exist from here on (realloc
                        // re-installs resolve to the same entry).
                        let i = self.sessions.len() as u32;
                        self.sessions.push(Session::OneHeap { seq });
                        self.by_heap.insert(seq, i);
                        let mut fids = self.stack.clone();
                        fids.sort_unstable();
                        fids.dedup();
                        self.heap_ctx.insert(seq, fids);
                        i
                    }
                };
                out.push(heap_idx);
                let fids = self.heap_ctx.get(&seq).expect("context recorded").clone();
                for func in fids {
                    let i = match self.by_allheap.get(&func) {
                        Some(&i) => i,
                        None => {
                            let i = self.sessions.len() as u32;
                            self.sessions.push(Session::AllHeapInFunc { func });
                            self.by_allheap.insert(func, i);
                            i
                        }
                    };
                    out.push(i);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::enumerate_sessions;
    use crate::setindex::SessionSet;
    use databp_machine::{Machine, StopReason};
    use databp_sim::Membership;
    use databp_tinyc::{compile, Options};
    use databp_trace::{Event, Trace, Tracer};

    fn trace_of(src: &str) -> (DebugInfo, Trace) {
        let c = compile(src, &Options::plain()).unwrap();
        let mut m = Machine::new();
        m.load(&c.program);
        let mut tracer = Tracer::new(c.debug.frame_map(), c.debug.global_specs())
            .with_untraced(c.debug.untraced_store_pcs.clone());
        tracer.begin();
        assert_eq!(m.run(&mut tracer, 50_000_000).unwrap(), StopReason::Halted);
        (c.debug, tracer.finish())
    }

    const SRC: &str = r#"
        int g;
        int alloc_one(int n) {
            int *p;
            p = (int*)malloc(8);
            p[0] = n;
            free((char*)p);
            return n;
        }
        int worker() { static int calls; calls = calls + 1; return alloc_one(calls); }
        int main() { g = worker() + worker(); return g; }
    "#;

    /// Drives a StreamSessionSet over a trace the way the streaming
    /// replay does: enter/exit bookkeeping plus resolve at installs.
    fn discover(debug: &DebugInfo, trace: &Trace) -> StreamSessionSet {
        let mut set = StreamSessionSet::new(debug);
        let mut out = Vec::new();
        for ev in trace.events() {
            match *ev {
                Event::Enter { func } => set.on_enter(func),
                Event::Exit { func } => set.on_exit(func),
                Event::Install { obj, .. } => set.resolve(&obj, &mut out),
                _ => {}
            }
        }
        set
    }

    #[test]
    fn canonical_order_matches_enumerate_sessions() {
        let (debug, trace) = trace_of(SRC);
        let expected = enumerate_sessions(&debug, &trace);
        let (canonical, perm) = discover(&debug, &trace).into_canonical();
        assert_eq!(canonical, expected);
        // perm is a permutation: every canonical index hit exactly once.
        let mut seen = vec![false; perm.len()];
        for &p in &perm {
            assert!(!seen[p as usize]);
            seen[p as usize] = true;
        }
    }

    #[test]
    fn permutation_maps_discovery_to_canonical() {
        let (debug, trace) = trace_of(SRC);
        let set = discover(&debug, &trace);
        let discovered = set.sessions().to_vec();
        let (canonical, perm) = set.into_canonical();
        for (i, s) in discovered.iter().enumerate() {
            assert_eq!(canonical[perm[i] as usize], *s);
        }
    }

    #[test]
    fn resolution_agrees_with_session_set_up_to_permutation() {
        let (debug, trace) = trace_of(SRC);
        let sessions = enumerate_sessions(&debug, &trace);
        let fixed = SessionSet::new(sessions, &debug, &trace);

        let mut stream = StreamSessionSet::new(&debug);
        let mut out = Vec::new();
        let mut resolved: Vec<(databp_trace::ObjectDesc, Vec<u32>)> = Vec::new();
        for ev in trace.events() {
            match *ev {
                Event::Enter { func } => stream.on_enter(func),
                Event::Exit { func } => stream.on_exit(func),
                Event::Install { obj, .. } => {
                    stream.resolve(&obj, &mut out);
                    resolved.push((obj, out.clone()));
                }
                _ => {}
            }
        }
        let (_, perm) = stream.into_canonical();
        let mut expect = Vec::new();
        for (obj, got) in resolved {
            fixed.sessions_of(&obj, &mut expect);
            let mut mapped: Vec<u32> = got.iter().map(|&i| perm[i as usize]).collect();
            mapped.sort_unstable();
            let mut want = expect.clone();
            want.sort_unstable();
            assert_eq!(mapped, want, "membership mismatch for {obj}");
        }
    }

    #[test]
    fn no_heap_program_discovers_only_the_static_prefix() {
        let (debug, trace) = trace_of("int g; int main() { g = 1; return g; }");
        let expected = enumerate_sessions(&debug, &trace);
        let set = discover(&debug, &trace);
        assert_eq!(set.sessions(), expected.as_slice());
        let (canonical, perm) = set.into_canonical();
        assert_eq!(canonical, expected);
        assert!(perm.iter().enumerate().all(|(i, &p)| p as usize == i));
    }
}
