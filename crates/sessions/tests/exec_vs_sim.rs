//! End-to-end cross-validation of the two evaluation paths.
//!
//! The paper's numbers come from trace-driven simulation (phase 1 trace →
//! phase 2 counting → analytical model). This repository additionally
//! *executes* each strategy. For any session, the two paths must agree on
//! every counting variable — hits, misses, installs, removes, page
//! transitions, active-page misses — and therefore on modeled overhead.

use databp_core::{CodePatch, NativeHardware, TrapPatch, VirtualMemory};
use databp_machine::{Machine, PageSize, StopReason};
use databp_models::Counts;
use databp_sessions::{enumerate_sessions, SessionPlan, SessionSet};
use databp_sim::simulate;
use databp_tinyc::{compile, Compiled, Options};
use databp_trace::{Trace, Tracer};

const SRC: &str = r#"
    struct Item { int key; int weight; struct Item *next; };
    int table_size;
    int total_weight;

    struct Item *make(int key, int weight) {
        struct Item *it;
        it = (struct Item*)malloc(sizeof(struct Item));
        it->key = key;
        it->weight = weight;
        it->next = (struct Item*)0;
        return it;
    }

    int churn(int rounds) {
        struct Item *head;
        struct Item *p;
        int i; int acc;
        static int invocations;
        invocations = invocations + 1;
        head = (struct Item*)0;
        for (i = 0; i < rounds; i = i + 1) {
            p = make(i, i * 3 % 7);
            p->next = head;
            head = p;
            total_weight = total_weight + p->weight;
        }
        acc = 0;
        p = head;
        while (p != (struct Item*)0) {
            acc = acc + p->key;
            head = p->next;
            free((char*)p);
            p = head;
        }
        return acc + invocations;
    }

    int main() {
        int r;
        table_size = 12;
        r = churn(table_size);
        r = r + churn(5);
        print_int(r);
        print_int(total_weight);
        return 0;
    }
"#;

fn build_trace(compiled: &Compiled) -> Trace {
    let mut m = Machine::new();
    m.load(&compiled.program);
    let mut tracer = Tracer::new(compiled.debug.frame_map(), compiled.debug.global_specs())
        .with_untraced(compiled.debug.untraced_store_pcs.clone());
    tracer.begin();
    assert_eq!(m.run(&mut tracer, 100_000_000).unwrap(), StopReason::Halted);
    tracer.finish()
}

#[test]
fn executable_counts_equal_simulated_counts_for_every_session() {
    let plain = compile(SRC, &Options::plain()).unwrap();
    let cp = compile(SRC, &Options::codepatch()).unwrap();
    let trace = build_trace(&plain);
    let sessions = enumerate_sessions(&plain.debug, &trace);
    assert!(
        sessions.len() > 25,
        "rich session population, got {}",
        sessions.len()
    );
    let set = SessionSet::new(sessions.clone(), &plain.debug, &trace);
    let sim4: Vec<Counts> = simulate(&trace, &set, PageSize::K4);
    let sim8: Vec<Counts> = simulate(&trace, &set, PageSize::K8);

    for (i, &session) in sessions.iter().enumerate() {
        let plan = SessionPlan::new(session, &plain.debug);

        // NativeHardware: hits must match (NH does not observe misses).
        let mut m = Machine::new();
        m.load(&plain.program);
        let nh = NativeHardware::default()
            .run(&mut m, &plain.debug, &plan, 100_000_000)
            .unwrap();
        assert_eq!(nh.counts.hit, sim4[i].hit, "NH hit mismatch for {session}");
        assert_eq!(
            nh.counts.install, sim4[i].install,
            "NH install mismatch for {session}"
        );
        assert_eq!(
            nh.counts.remove, sim4[i].remove,
            "NH remove mismatch for {session}"
        );

        // VirtualMemory 4K: full counting-variable agreement.
        let mut m = Machine::new();
        m.load(&plain.program);
        let vm4 = VirtualMemory::k4()
            .run(&mut m, &plain.debug, &plan, 100_000_000)
            .unwrap();
        assert_eq!(
            (
                vm4.counts.hit,
                vm4.counts.vm_active_page_miss,
                vm4.counts.vm_protect,
                vm4.counts.vm_unprotect
            ),
            (
                sim4[i].hit,
                sim4[i].vm_active_page_miss,
                sim4[i].vm_protect,
                sim4[i].vm_unprotect
            ),
            "VM-4K mismatch for {session}"
        );

        // VirtualMemory 8K.
        let mut m = Machine::new();
        m.load(&plain.program);
        let vm8 = VirtualMemory::k8()
            .run(&mut m, &plain.debug, &plan, 100_000_000)
            .unwrap();
        assert_eq!(
            (
                vm8.counts.hit,
                vm8.counts.vm_active_page_miss,
                vm8.counts.vm_protect,
                vm8.counts.vm_unprotect
            ),
            (
                sim8[i].hit,
                sim8[i].vm_active_page_miss,
                sim8[i].vm_protect,
                sim8[i].vm_unprotect
            ),
            "VM-8K mismatch for {session}"
        );

        // TrapPatch: hit + miss over the same checked-write population.
        let mut m = Machine::new();
        m.load(&plain.program);
        let tp = TrapPatch::default()
            .run(&mut m, &plain.debug, &plan, 100_000_000)
            .unwrap();
        assert_eq!(tp.counts.hit, sim4[i].hit, "TP hit mismatch for {session}");
        assert_eq!(
            tp.counts.miss, sim4[i].miss,
            "TP miss mismatch for {session}"
        );

        // CodePatch on the instrumented build.
        let mut m = Machine::new();
        m.load(&cp.program);
        let cpr = CodePatch::default()
            .run(&mut m, &cp.debug, &plan, 100_000_000)
            .unwrap();
        assert_eq!(cpr.counts.hit, sim4[i].hit, "CP hit mismatch for {session}");
        assert_eq!(
            cpr.counts.miss, sim4[i].miss,
            "CP miss mismatch for {session}"
        );
    }
}

#[test]
fn modeled_overhead_agrees_between_paths() {
    use databp_models::{overhead, Approach, TimingVars};
    let plain = compile(SRC, &Options::plain()).unwrap();
    let trace = build_trace(&plain);
    let sessions = enumerate_sessions(&plain.debug, &trace);
    let set = SessionSet::new(sessions.clone(), &plain.debug, &trace);
    let sim4 = simulate(&trace, &set, PageSize::K4);
    let t = TimingVars::default();

    // Pick the busiest session by hits.
    let (i, _) = sim4.iter().enumerate().max_by_key(|(_, c)| c.hit).unwrap();
    let plan = SessionPlan::new(sessions[i], &plain.debug);

    let mut m = Machine::new();
    m.load(&plain.program);
    let vm = VirtualMemory::k4()
        .run(&mut m, &plain.debug, &plan, 100_000_000)
        .unwrap();
    let model = overhead(Approach::Vm4k, &sim4[i], &t);
    assert!(
        (vm.overhead.total_us() - model.total_us()).abs() < 1e-6,
        "exec charged {} µs, model says {} µs for {}",
        vm.overhead.total_us(),
        model.total_us(),
        sessions[i]
    );
}
