//! Trace record types.

use std::fmt;

/// Identifies the *program object* behind a write monitor — the paper's
/// `ObjectDesc` argument to `InstallMonitorEvent`.
///
/// The phase-2 simulator uses object descriptors to decide which monitors
/// belong to which monitor session; addresses alone are insufficient
/// because stack and heap addresses are recycled across instantiations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ObjectDesc {
    /// A file-scope global or function-scope static variable, by index in
    /// the program's global table.
    Global {
        /// Global table index.
        id: u32,
    },
    /// One *instantiation* of a local automatic variable. Distinct
    /// activations of the same `(func, var)` are distinguished positionally
    /// in the trace (install/remove pairs nest with function entry/exit).
    Local {
        /// Function id owning the variable.
        func: u16,
        /// Variable index within the function's frame map.
        var: u16,
    },
    /// A heap object, by allocation sequence number. An object keeps its
    /// number across `realloc` (the paper: "heap objects whose size is
    /// changed via a call to realloc are considered to be the same
    /// object").
    Heap {
        /// Allocation sequence number.
        seq: u32,
    },
}

impl fmt::Display for ObjectDesc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ObjectDesc::Global { id } => write!(f, "G{id}"),
            ObjectDesc::Local { func, var } => write!(f, "L{func}.{var}"),
            ObjectDesc::Heap { seq } => write!(f, "H{seq}"),
        }
    }
}

/// One trace record.
///
/// `ba`/`ea` are the paper's Beginning/Ending Address convention: the
/// half-open byte range `[ba, ea)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A monitorable object came into existence at `[ba, ea)`.
    Install {
        /// The object.
        obj: ObjectDesc,
        /// Beginning address.
        ba: u32,
        /// Ending address (exclusive).
        ea: u32,
    },
    /// The object at `[ba, ea)` ceased to exist (or moved, for realloc —
    /// expressed as `Remove` + `Install` of the same [`ObjectDesc`]).
    Remove {
        /// The object.
        obj: ObjectDesc,
        /// Beginning address.
        ba: u32,
        /// Ending address (exclusive).
        ea: u32,
    },
    /// A traced write instruction wrote `[ba, ea)`; `pc` is the writing
    /// instruction's address (the paper's `MonitorNotification` carries
    /// it).
    Write {
        /// Program counter of the write.
        pc: u32,
        /// Beginning address.
        ba: u32,
        /// Ending address (exclusive).
        ea: u32,
        /// The value written, masked to the store width — the input to
        /// predicate evaluation and trace queries.
        value: u32,
        /// The value the target held before the write, masked to the
        /// store width. Traces written by pre-predicate codec versions
        /// decode with `value = old = 0`.
        old: u32,
    },
    /// Control entered function `func` (frame established).
    Enter {
        /// Function id.
        func: u16,
    },
    /// Control left function `func` (frame about to die).
    Exit {
        /// Function id.
        func: u16,
    },
}

impl Event {
    /// True for [`Event::Write`].
    pub fn is_write(&self) -> bool {
        matches!(self, Event::Write { .. })
    }
}

/// Aggregate trace statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceStats {
    /// Number of `Write` events — the paper's population of checked write
    /// instructions.
    pub writes: u64,
    /// Number of `Install` events.
    pub installs: u64,
    /// Number of `Remove` events.
    pub removes: u64,
    /// Number of `Enter` events (== dynamic call count of traced
    /// functions).
    pub enters: u64,
    /// Number of `Exit` events.
    pub exits: u64,
    /// Number of distinct heap objects installed.
    pub heap_objects: u64,
}

/// A destination for trace events as they are generated.
///
/// The tracer is generic over its sink so the same instrumentation
/// serves both pipelines: [`Trace`] materializes the whole event list
/// (the paper's two sequential phases), while `StreamSink` batches
/// events into a channel consumed concurrently by the replay engine.
pub trait EventSink {
    /// Accepts the next event, in program order.
    fn emit(&mut self, ev: Event);
}

impl EventSink for Trace {
    fn emit(&mut self, ev: Event) {
        self.push(ev);
    }
}

/// A complete program event trace: phase-1 output, phase-2 input.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    events: Vec<Event>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// An empty trace with room for `n` events — decoders that know the
    /// event count up front allocate once.
    pub fn with_capacity(n: usize) -> Self {
        Trace {
            events: Vec::with_capacity(n),
        }
    }

    /// Wraps an event list as a trace.
    pub fn from_events(events: Vec<Event>) -> Self {
        Trace { events }
    }

    /// The events, in program order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Appends an event.
    pub fn push(&mut self, e: Event) {
        self.events.push(e);
    }

    /// Approximate resident size of this trace in bytes: the event
    /// storage plus the container itself. The replay service's trace
    /// cache charges entries against its byte budget with this, so it
    /// only needs to be honest about scale (events dominate), not exact
    /// about allocator overhead.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.events.capacity() * std::mem::size_of::<Event>()
    }

    /// Computes aggregate statistics in one pass.
    pub fn stats(&self) -> TraceStats {
        let mut s = TraceStats::default();
        let mut heap_seen = std::collections::HashSet::new();
        for e in &self.events {
            match e {
                Event::Write { .. } => s.writes += 1,
                Event::Install { obj, .. } => {
                    s.installs += 1;
                    if let ObjectDesc::Heap { seq } = obj {
                        if heap_seen.insert(*seq) {
                            s.heap_objects += 1;
                        }
                    }
                }
                Event::Remove { .. } => s.removes += 1,
                Event::Enter { .. } => s.enters += 1,
                Event::Exit { .. } => s.exits += 1,
            }
        }
        s
    }
}

impl FromIterator<Event> for Trace {
    fn from_iter<I: IntoIterator<Item = Event>>(iter: I) -> Self {
        Trace {
            events: iter.into_iter().collect(),
        }
    }
}

impl Extend<Event> for Trace {
    fn extend<I: IntoIterator<Item = Event>>(&mut self, iter: I) {
        self.events.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(id: u32) -> ObjectDesc {
        ObjectDesc::Global { id }
    }

    #[test]
    fn stats_count_each_kind() {
        let t = Trace::from_events(vec![
            Event::Install {
                obj: g(0),
                ba: 0,
                ea: 4,
            },
            Event::Install {
                obj: ObjectDesc::Heap { seq: 1 },
                ba: 8,
                ea: 16,
            },
            Event::Install {
                obj: ObjectDesc::Heap { seq: 1 },
                ba: 16,
                ea: 32,
            }, // realloc re-install
            Event::Enter { func: 0 },
            Event::Write {
                pc: 0,
                ba: 0,
                ea: 4,
                value: 1,
                old: 0,
            },
            Event::Write {
                pc: 4,
                ba: 8,
                ea: 9,
                value: 2,
                old: 1,
            },
            Event::Exit { func: 0 },
            Event::Remove {
                obj: g(0),
                ba: 0,
                ea: 4,
            },
        ]);
        let s = t.stats();
        assert_eq!(s.writes, 2);
        assert_eq!(s.installs, 3);
        assert_eq!(s.removes, 1);
        assert_eq!(s.enters, 1);
        assert_eq!(s.exits, 1);
        assert_eq!(s.heap_objects, 1, "realloc re-install is the same object");
    }

    #[test]
    fn object_desc_display() {
        assert_eq!(g(3).to_string(), "G3");
        assert_eq!(ObjectDesc::Local { func: 1, var: 2 }.to_string(), "L1.2");
        assert_eq!(ObjectDesc::Heap { seq: 9 }.to_string(), "H9");
    }

    #[test]
    fn collect_and_extend() {
        let mut t: Trace = vec![Event::Enter { func: 0 }].into_iter().collect();
        t.extend([Event::Exit { func: 0 }]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn is_write_classifier() {
        assert!(Event::Write {
            pc: 0,
            ba: 0,
            ea: 1,
            value: 0,
            old: 0
        }
        .is_write());
        assert!(!Event::Enter { func: 0 }.is_write());
    }
}
