//! Machine instrumentation: turning a run into a program event trace.
//!
//! [`Tracer`] plugs into [`databp_machine::Machine::run`] as a
//! [`Hooks`] implementation. It needs two pieces of static information
//! from the compiler:
//!
//! * a [`FrameMap`] — for each function id, where its local automatic
//!   variables live relative to the frame pointer, so `Enter`/`Exit`
//!   marks expand into per-instantiation `Install`/`Remove` events
//!   ("write monitors for automatic variables are installed and removed
//!   on function boundaries", Section 6);
//! * a [`GlobalSpec`] table — address ranges of globals and
//!   function-statics, installed once at run start.

use crate::event::{Event, EventSink, ObjectDesc, Trace};
use databp_machine::{Hooks, StoreEvent, CODE_BASE};
use std::collections::HashMap;

/// Set of store pcs excluded from the trace, as a bitset indexed by code
/// word — [`Tracer::on_store`] runs once per traced store, so membership
/// must be O(1) rather than a binary search.
#[derive(Debug, Clone, Default)]
struct UntracedPcs {
    /// Bit `(pc - CODE_BASE) / 4` is set when `pc` is untraced.
    bits: Vec<u64>,
}

impl UntracedPcs {
    fn new(pcs: &[u32]) -> Self {
        let mut bits = Vec::new();
        for &pc in pcs {
            let word = (pc.wrapping_sub(CODE_BASE) / 4) as usize;
            let slot = word / 64;
            if slot >= bits.len() {
                bits.resize(slot + 1, 0u64);
            }
            bits[slot] |= 1u64 << (word % 64);
        }
        UntracedPcs { bits }
    }

    #[inline]
    fn contains(&self, pc: u32) -> bool {
        let word = (pc.wrapping_sub(CODE_BASE) / 4) as usize;
        match self.bits.get(word / 64) {
            Some(slot) => slot & (1u64 << (word % 64)) != 0,
            None => false,
        }
    }
}

/// One local automatic variable's slot in a function frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameVar {
    /// Variable index within the function (matches
    /// [`ObjectDesc::Local::var`]).
    pub var: u16,
    /// Offset of the variable's first byte relative to the frame pointer
    /// (negative: below `fp`).
    pub offset: i32,
    /// Size in bytes.
    pub size: u32,
}

/// Per-function frame layouts, indexed by function id.
#[derive(Debug, Clone, Default)]
pub struct FrameMap {
    /// `funcs[fid]` lists the local automatic variables of function `fid`.
    pub funcs: Vec<Vec<FrameVar>>,
}

impl FrameMap {
    /// Frame variables of function `fid`; unknown functions have none.
    pub fn vars(&self, fid: u16) -> &[FrameVar] {
        self.funcs
            .get(fid as usize)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }
}

/// A global or function-static variable's placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GlobalSpec {
    /// Global table index (matches [`ObjectDesc::Global::id`]).
    pub id: u32,
    /// Beginning address.
    pub ba: u32,
    /// Ending address (exclusive).
    pub ea: u32,
}

/// A [`Hooks`] implementation that records the program event trace.
///
/// Use [`Tracer::begin`] before running (it installs global monitors) and
/// [`Tracer::finish`] afterwards (it unwinds outstanding frames, frees
/// live heap objects, and removes globals so every `Install` has a
/// matching `Remove`).
///
/// The tracer is generic over its [`EventSink`]: [`Tracer::new`] records
/// into a materialized [`Trace`], while [`Tracer::with_sink`] streams the
/// same events into any sink (e.g. `StreamSink`, which feeds the replay
/// engine concurrently).
#[derive(Debug)]
pub struct Tracer<S: EventSink = Trace> {
    frame_map: FrameMap,
    globals: Vec<GlobalSpec>,
    sink: S,
    /// Stack of (fid, fp) for frames currently live.
    frames: Vec<(u16, u32)>,
    /// Live heap objects: seq -> (ba, ea).
    live_heap: HashMap<u32, (u32, u32)>,
    /// Byte pcs of implicit stores to exclude from the trace
    /// (the paper: "implicit writes (e.g., register spilling) do not
    /// appear in the trace").
    untraced_pcs: UntracedPcs,
    begun: bool,
}

impl Tracer<Trace> {
    /// Creates a tracer for a program with the given frame layouts and
    /// globals, recording into a materialized [`Trace`].
    pub fn new(frame_map: FrameMap, globals: Vec<GlobalSpec>) -> Self {
        Tracer::with_sink(frame_map, globals, Trace::new())
    }

    /// The trace recorded so far (mainly for tests).
    pub fn trace(&self) -> &Trace {
        &self.sink
    }
}

impl<S: EventSink> Tracer<S> {
    /// Creates a tracer emitting into `sink`.
    pub fn with_sink(frame_map: FrameMap, globals: Vec<GlobalSpec>, sink: S) -> Self {
        Tracer {
            frame_map,
            globals,
            sink,
            frames: Vec::new(),
            live_heap: HashMap::new(),
            untraced_pcs: UntracedPcs::default(),
            begun: false,
        }
    }

    /// Excludes the given store pcs from the trace — pass the compiler's
    /// implicit-store list (`DebugInfo::untraced_store_pcs`).
    pub fn with_untraced(mut self, pcs: Vec<u32>) -> Self {
        self.untraced_pcs = UntracedPcs::new(&pcs);
        self
    }

    /// Emits `Install` events for all globals. Call once, before the run.
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn begin(&mut self) {
        assert!(!self.begun, "Tracer::begin called twice");
        self.begun = true;
        for g in &self.globals {
            self.sink.emit(Event::Install {
                obj: ObjectDesc::Global { id: g.id },
                ba: g.ba,
                ea: g.ea,
            });
        }
    }

    /// Closes the trace: removes monitors for any still-live frames
    /// (program may have exited from a nested call), live heap objects,
    /// and globals. Returns the sink.
    pub fn finish(mut self) -> S {
        while let Some((fid, fp)) = self.frames.pop() {
            Self::emit_frame(&self.frame_map, &mut self.sink, fid, fp, false);
            self.sink.emit(Event::Exit { func: fid });
        }
        let mut live: Vec<(u32, (u32, u32))> = self.live_heap.drain().collect();
        live.sort_unstable();
        for (seq, (ba, ea)) in live {
            self.sink.emit(Event::Remove {
                obj: ObjectDesc::Heap { seq },
                ba,
                ea,
            });
        }
        for g in self.globals.iter().rev() {
            self.sink.emit(Event::Remove {
                obj: ObjectDesc::Global { id: g.id },
                ba: g.ba,
                ea: g.ea,
            });
        }
        self.sink
    }

    fn emit_frame(map: &FrameMap, sink: &mut S, fid: u16, fp: u32, install: bool) {
        for v in map.vars(fid) {
            let ba = fp.wrapping_add(v.offset as u32);
            let ea = ba + v.size;
            let obj = ObjectDesc::Local {
                func: fid,
                var: v.var,
            };
            sink.emit(if install {
                Event::Install { obj, ba, ea }
            } else {
                Event::Remove { obj, ba, ea }
            });
        }
    }
}

impl<S: EventSink> Hooks for Tracer<S> {
    fn on_store(&mut self, ev: &StoreEvent) {
        if self.untraced_pcs.contains(ev.pc) {
            return;
        }
        self.sink.emit(Event::Write {
            pc: ev.pc,
            ba: ev.addr,
            ea: ev.addr + ev.len,
            value: ev.value,
            old: ev.old,
        });
    }

    fn on_enter(&mut self, fid: u16, fp: u32, _sp: u32) {
        self.frames.push((fid, fp));
        self.sink.emit(Event::Enter { func: fid });
        Self::emit_frame(&self.frame_map, &mut self.sink, fid, fp, true);
    }

    fn on_exit(&mut self, fid: u16, fp: u32, _sp: u32) {
        match self.frames.pop() {
            Some((top_fid, top_fp)) => {
                debug_assert_eq!(top_fid, fid, "mismatched function exit");
                debug_assert_eq!(top_fp, fp, "frame pointer changed between enter and exit");
            }
            None => debug_assert!(false, "exit with no live frame"),
        }
        Self::emit_frame(&self.frame_map, &mut self.sink, fid, fp, false);
        self.sink.emit(Event::Exit { func: fid });
    }

    fn on_heap_alloc(&mut self, seq: u32, ba: u32, ea: u32) {
        self.live_heap.insert(seq, (ba, ea));
        self.sink.emit(Event::Install {
            obj: ObjectDesc::Heap { seq },
            ba,
            ea,
        });
    }

    fn on_heap_free(&mut self, seq: u32, ba: u32, ea: u32) {
        self.live_heap.remove(&seq);
        self.sink.emit(Event::Remove {
            obj: ObjectDesc::Heap { seq },
            ba,
            ea,
        });
    }

    fn on_heap_realloc(&mut self, seq: u32, old: (u32, u32), new: (u32, u32)) {
        self.live_heap.insert(seq, new);
        let obj = ObjectDesc::Heap { seq };
        self.sink.emit(Event::Remove {
            obj,
            ba: old.0,
            ea: old.1,
        });
        self.sink.emit(Event::Install {
            obj,
            ba: new.0,
            ea: new.1,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use databp_machine::{asm, Machine, NoHooks, Program, StopReason, DATA_BASE};

    fn frame_map_one_func() -> FrameMap {
        FrameMap {
            funcs: vec![vec![
                FrameVar {
                    var: 0,
                    offset: -4,
                    size: 4,
                },
                FrameVar {
                    var: 1,
                    offset: -12,
                    size: 8,
                },
            ]],
        }
    }

    #[test]
    fn untraced_pc_bitset_membership() {
        let pcs = vec![CODE_BASE, CODE_BASE + 8, CODE_BASE + 4 * 1000];
        let set = UntracedPcs::new(&pcs);
        for &pc in &pcs {
            assert!(set.contains(pc), "pc {pc:#x} should be untraced");
        }
        assert!(!set.contains(CODE_BASE + 4));
        assert!(!set.contains(CODE_BASE + 4 * 999));
        assert!(!set.contains(CODE_BASE + 4 * 1001));
        assert!(!set.contains(0)); // below the code segment
        assert!(!UntracedPcs::default().contains(CODE_BASE));
    }

    #[test]
    fn untraced_stores_do_not_reach_the_trace() {
        let mut tr = Tracer::new(FrameMap::default(), vec![]).with_untraced(vec![CODE_BASE + 4]);
        tr.begin();
        tr.on_store(&StoreEvent {
            pc: CODE_BASE + 4,
            addr: DATA_BASE,
            len: 4,
            value: 0,
            old: 0,
        });
        tr.on_store(&StoreEvent {
            pc: CODE_BASE + 8,
            addr: DATA_BASE,
            len: 4,
            value: 0,
            old: 0,
        });
        let t = tr.finish();
        assert_eq!(t.stats().writes, 1, "only the traced store appears");
    }

    #[test]
    fn begin_installs_globals_finish_removes_them() {
        let globals = vec![
            GlobalSpec {
                id: 0,
                ba: DATA_BASE,
                ea: DATA_BASE + 4,
            },
            GlobalSpec {
                id: 1,
                ba: DATA_BASE + 4,
                ea: DATA_BASE + 104,
            },
        ];
        let mut tr = Tracer::new(FrameMap::default(), globals);
        tr.begin();
        let t = tr.finish();
        assert_eq!(t.len(), 4);
        assert!(matches!(
            t.events()[0],
            Event::Install {
                obj: ObjectDesc::Global { id: 0 },
                ..
            }
        ));
        assert!(matches!(
            t.events()[3],
            Event::Remove {
                obj: ObjectDesc::Global { id: 0 },
                ..
            }
        ));
    }

    #[test]
    #[should_panic(expected = "begin called twice")]
    fn double_begin_panics() {
        let mut tr = Tracer::new(FrameMap::default(), vec![]);
        tr.begin();
        tr.begin();
    }

    #[test]
    fn enter_exit_install_remove_locals_at_fp_relative_addresses() {
        let mut tr = Tracer::new(frame_map_one_func(), vec![]);
        tr.begin();
        tr.on_enter(0, 0x00F0_0000, 0x00EF_FFE0);
        tr.on_exit(0, 0x00F0_0000, 0x00EF_FFE0);
        let t = tr.finish();
        let ev = t.events();
        assert_eq!(ev[0], Event::Enter { func: 0 });
        assert_eq!(
            ev[1],
            Event::Install {
                obj: ObjectDesc::Local { func: 0, var: 0 },
                ba: 0x00F0_0000 - 4,
                ea: 0x00F0_0000,
            }
        );
        assert_eq!(
            ev[2],
            Event::Install {
                obj: ObjectDesc::Local { func: 0, var: 1 },
                ba: 0x00F0_0000 - 12,
                ea: 0x00F0_0000 - 4,
            }
        );
        assert!(matches!(
            ev[3],
            Event::Remove {
                obj: ObjectDesc::Local { var: 0, .. },
                ..
            }
        ));
        assert!(matches!(
            ev[4],
            Event::Remove {
                obj: ObjectDesc::Local { var: 1, .. },
                ..
            }
        ));
        assert_eq!(ev[5], Event::Exit { func: 0 });
    }

    #[test]
    fn finish_unwinds_outstanding_frames() {
        let mut tr = Tracer::new(frame_map_one_func(), vec![]);
        tr.begin();
        tr.on_enter(0, 0x00F0_0000, 0);
        // Program exits without returning.
        let t = tr.finish();
        let removes = t
            .events()
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    Event::Remove {
                        obj: ObjectDesc::Local { .. },
                        ..
                    }
                )
            })
            .count();
        assert_eq!(removes, 2);
        assert_eq!(t.stats().installs, t.stats().removes);
    }

    #[test]
    fn finish_removes_live_heap_objects() {
        let mut tr = Tracer::new(FrameMap::default(), vec![]);
        tr.begin();
        tr.on_heap_alloc(0, 0x40_0000, 0x40_0010);
        tr.on_heap_alloc(1, 0x40_0010, 0x40_0020);
        tr.on_heap_free(0, 0x40_0000, 0x40_0010);
        let t = tr.finish();
        assert_eq!(t.stats().installs, 2);
        assert_eq!(t.stats().removes, 2);
    }

    #[test]
    fn realloc_is_remove_plus_install_of_same_object() {
        let mut tr = Tracer::new(FrameMap::default(), vec![]);
        tr.begin();
        tr.on_heap_alloc(7, 0x40_0000, 0x40_0008);
        tr.on_heap_realloc(7, (0x40_0000, 0x40_0008), (0x40_0100, 0x40_0140));
        let t = tr.finish();
        let heap_events: Vec<_> = t
            .events()
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    Event::Install {
                        obj: ObjectDesc::Heap { seq: 7 },
                        ..
                    } | Event::Remove {
                        obj: ObjectDesc::Heap { seq: 7 },
                        ..
                    }
                )
            })
            .collect();
        // install, remove(old), install(new), remove(at finish)
        assert_eq!(heap_events.len(), 4);
    }

    #[test]
    fn traces_a_real_machine_run() {
        // One function with a local at fp-4; writes it twice.
        let prog = Program::from_asm(&[
            asm::addi(29, 29, -16), // sp -= 16
            asm::addi(30, 29, 16),  // fp = sp + 16
            asm::mark_enter(0),
            asm::addi(9, 0, 1),
            asm::sw(9, 30, -4),
            asm::addi(9, 0, 2),
            asm::sw(9, 30, -4),
            asm::mark_exit(0),
            asm::halt(),
        ]);
        let mut machine = Machine::new();
        machine.load(&prog);
        let fm = FrameMap {
            funcs: vec![vec![FrameVar {
                var: 0,
                offset: -4,
                size: 4,
            }]],
        };
        let mut tracer = Tracer::new(fm, vec![]);
        tracer.begin();
        assert_eq!(machine.run(&mut tracer, 1000).unwrap(), StopReason::Halted);
        let t = tracer.finish();
        let s = t.stats();
        assert_eq!(s.writes, 2);
        assert_eq!(s.installs, 1);
        assert_eq!(s.removes, 1);
        // The write events land inside the installed local's range.
        let (ba, ea) = t
            .events()
            .iter()
            .find_map(|e| match e {
                Event::Install { ba, ea, .. } => Some((*ba, *ea)),
                _ => None,
            })
            .unwrap();
        for e in t.events() {
            if let Event::Write {
                ba: wba, ea: wea, ..
            } = e
            {
                assert!(*wba >= ba && *wea <= ea);
            }
        }
        // NoHooks run for comparison: same machine behaviour.
        let mut m2 = Machine::new();
        m2.load(&prog);
        m2.run(&mut NoHooks, 1000).unwrap();
        assert_eq!(m2.cpu().pc(), machine.cpu().pc());
    }
}
