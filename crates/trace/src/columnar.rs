//! DBPT v2 — the columnar, delta-encoded binary trace format.
//!
//! Where v1 interleaves tag and payload per event, v2 splits events into
//! per-field *columns* packed in fixed-size blocks, which is what the
//! persistent trace store serializes:
//!
//! ```text
//! "DBPT" u32:4
//! u32:meta_len  meta bytes            (opaque application blob)
//! u64:n_events
//! u32:dict_len  { u8:kind u32:payload }*   (dense ObjectDesc dictionary)
//! u32:n_blocks
//! blocks: u32:block_events  8 × ( u32:col_len col_bytes )
//! trailer (optional): "ZMAP" u32:payload_len u64:fnv1a64(payload) payload
//! ```
//!
//! The eight columns per block, in order: **tags** (run-length pairs
//! `u8:tag varint:run`), **objs** (varint dictionary ids, one per
//! install/remove), **pcs** (zigzag-delta varints, one per write),
//! **bas** (zigzag-delta varints, one per install/remove/write),
//! **lens** (zigzag varints of `ea − ba`, same events as `bas`),
//! **funcs** (varint function ids, one per enter/exit), **values**
//! (zigzag-delta varints of the written value, one per write), and
//! **olds** (likewise for the overwritten value). Delta state resets at
//! block boundaries, so blocks decode independently.
//!
//! Version 2 is the pre-predicate layout — the same container with only
//! the first six columns; it still decodes, with write values and olds
//! zero-filled.
//!
//! Run-length tags are what remove per-event decode branching: the
//! reader dispatches once per *run* and then decodes a straight-line
//! batch of same-shaped events from the column cursors. A whole file is
//! loaded with one read into a byte arena ([`read_columnar`] takes
//! `&[u8]`) and columns are sliced out of it — no per-event I/O, no
//! intermediate buffers.
//!
//! # Zone-map trailer and format compatibility
//!
//! The trailer carries one fixed-width [`ZoneMap`] per block — per-tag
//! event counts, min/max of write `pc`/`value`/`old` and of addressed
//! `ba`, and a 64-bucket write-pc occupancy filter — which is what the
//! query engine's block-skipping pushdown consumes. The trailer is
//! **optional and ignorable**: files without one (everything written
//! before zone maps existed, or via [`WriteOpts`] `zone_maps: false`)
//! decode unchanged, and the full-decode path skips the trailer without
//! reading its contents, so its layout can evolve behind the checksum.
//! [`ColumnarReader::open`] validates the trailer (framing, FNV-1a
//! checksum, per-block consistency) and silently drops it when anything
//! is off — a damaged trailer degrades queries to a full scan, never to
//! a wrong answer.
//!
//! Malformed or truncated input yields a clean
//! [`TraceCodecError`] — any valid prefix of a trailer-less v2 file
//! fails with an error, never a panic (for files carrying a trailer,
//! the one prefix that drops exactly the whole trailer decodes, to the
//! complete and correct trace), and allocation sizes are bounded by the
//! input length so corrupted headers cannot trigger huge reservations.

use crate::codec::TraceCodecError;
use crate::event::{Event, ObjectDesc, Trace};
use std::io::{self, Write};

const MAGIC: &[u8; 4] = b"DBPT";
/// Legacy columnar version: six columns, no write values.
const VERSION2: u32 = 2;
/// Current columnar version: eight columns including values/olds.
const VERSION4: u32 = 4;

/// Events per column block. 64K events keeps every block's columns in
/// cache during decode while bounding the delta chains corruption can
/// damage.
pub const BLOCK_EVENTS: usize = 1 << 16;

const TAG_INSTALL: u8 = 1;
const TAG_REMOVE: u8 = 2;
const TAG_WRITE: u8 = 3;
const TAG_ENTER: u8 = 4;
const TAG_EXIT: u8 = 5;

const OBJ_GLOBAL: u8 = 1;
const OBJ_LOCAL: u8 = 2;
const OBJ_HEAP: u8 = 3;

const TRAILER_MAGIC: &[u8; 4] = b"ZMAP";
const ZONE_VERSION: u32 = 1;
/// Serialized size of one [`ZoneMap`]: 14 × u32 + u64 filter.
const ZONE_BYTES: usize = 64;

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            break;
        }
        out.push(b | 0x80);
    }
}

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// FNV-1a over `bytes`; guards the zone-map trailer against the random
/// corruption the property suites throw at it (not cryptographic).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A read cursor over one column slice.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Cursor<'a> {
        Cursor { bytes, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn u8(&mut self) -> Result<u8, TraceCodecError> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or_else(|| truncated("column byte"))?;
        self.pos += 1;
        Ok(b)
    }

    fn u32(&mut self) -> Result<u32, TraceCodecError> {
        let end = self.pos.checked_add(4).filter(|&e| e <= self.bytes.len());
        let end = end.ok_or_else(|| truncated("u32"))?;
        let v = u32::from_le_bytes(self.bytes[self.pos..end].try_into().expect("4 bytes"));
        self.pos = end;
        Ok(v)
    }

    fn u64(&mut self) -> Result<u64, TraceCodecError> {
        let end = self.pos.checked_add(8).filter(|&e| e <= self.bytes.len());
        let end = end.ok_or_else(|| truncated("u64"))?;
        let v = u64::from_le_bytes(self.bytes[self.pos..end].try_into().expect("8 bytes"));
        self.pos = end;
        Ok(v)
    }

    fn varint(&mut self) -> Result<u64, TraceCodecError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.u8()?;
            if shift >= 64 {
                return Err(TraceCodecError::Malformed("varint overflow".into()));
            }
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Slices off a `u32`-length-prefixed segment.
    fn segment(&mut self) -> Result<&'a [u8], TraceCodecError> {
        let len = self.u32()? as usize;
        let end = self
            .pos
            .checked_add(len)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| truncated("column segment"))?;
        let seg = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(seg)
    }
}

fn truncated(what: &str) -> TraceCodecError {
    TraceCodecError::Malformed(format!("truncated {what}"))
}

fn obj_key(obj: &ObjectDesc) -> (u8, u32) {
    match *obj {
        ObjectDesc::Global { id } => (OBJ_GLOBAL, id),
        ObjectDesc::Local { func, var } => (OBJ_LOCAL, (u32::from(func) << 16) | u32::from(var)),
        ObjectDesc::Heap { seq } => (OBJ_HEAP, seq),
    }
}

fn obj_from_key(kind: u8, payload: u32) -> Result<ObjectDesc, TraceCodecError> {
    Ok(match kind {
        OBJ_GLOBAL => ObjectDesc::Global { id: payload },
        OBJ_LOCAL => ObjectDesc::Local {
            func: (payload >> 16) as u16,
            var: (payload & 0xffff) as u16,
        },
        OBJ_HEAP => ObjectDesc::Heap { seq: payload },
        k => return Err(TraceCodecError::Malformed(format!("dictionary kind {k}"))),
    })
}

fn event_tag(e: &Event) -> u8 {
    match e {
        Event::Install { .. } => TAG_INSTALL,
        Event::Remove { .. } => TAG_REMOVE,
        Event::Write { .. } => TAG_WRITE,
        Event::Enter { .. } => TAG_ENTER,
        Event::Exit { .. } => TAG_EXIT,
    }
}

/// Per-block summary statistics, serialized in the optional `ZMAP`
/// trailer and consumed by the query engine's block-skipping pushdown.
///
/// Range fields use `min = u32::MAX, max = 0` as the empty sentinel
/// (checked through the `*_range` accessors). `ba` covers every
/// addressed event (install/remove/write); `pc`, `value` and `old`
/// cover writes only.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ZoneMap {
    /// Total events in the block.
    pub events: u32,
    /// Install events in the block.
    pub installs: u32,
    /// Remove events in the block.
    pub removes: u32,
    /// Write events in the block.
    pub writes: u32,
    /// Enter events in the block.
    pub enters: u32,
    /// Exit events in the block.
    pub exits: u32,
    /// Min `ba` over install/remove/write events.
    pub ba_min: u32,
    /// Max `ba` over install/remove/write events.
    pub ba_max: u32,
    /// Min write `pc`.
    pub pc_min: u32,
    /// Max write `pc`.
    pub pc_max: u32,
    /// Min written value.
    pub value_min: u32,
    /// Max written value.
    pub value_max: u32,
    /// Min overwritten (old) value.
    pub old_min: u32,
    /// Max overwritten (old) value.
    pub old_max: u32,
    /// 64-bucket occupancy filter over `[pc_min, pc_max]`: bit `i` is
    /// set iff some write pc falls in equal-width bucket `i`.
    pub pc_filter: u64,
}

impl ZoneMap {
    fn empty(events: u32) -> ZoneMap {
        ZoneMap {
            events,
            installs: 0,
            removes: 0,
            writes: 0,
            enters: 0,
            exits: 0,
            ba_min: u32::MAX,
            ba_max: 0,
            pc_min: u32::MAX,
            pc_max: 0,
            value_min: u32::MAX,
            value_max: 0,
            old_min: u32::MAX,
            old_max: 0,
            pc_filter: 0,
        }
    }

    #[inline]
    fn filter_bucket_width(&self) -> u32 {
        (self.pc_max - self.pc_min) / 64 + 1
    }

    /// Inclusive `(min, max)` of write pcs, or `None` when the block
    /// has no writes.
    pub fn write_pc_range(&self) -> Option<(u32, u32)> {
        (self.writes > 0).then_some((self.pc_min, self.pc_max))
    }

    /// Inclusive `(min, max)` of written values, or `None` when the
    /// block has no writes.
    pub fn write_value_range(&self) -> Option<(u32, u32)> {
        (self.writes > 0).then_some((self.value_min, self.value_max))
    }

    /// Inclusive `(min, max)` of overwritten (old) values, or `None`
    /// when the block has no writes.
    pub fn write_old_range(&self) -> Option<(u32, u32)> {
        (self.writes > 0).then_some((self.old_min, self.old_max))
    }

    /// Could any write pc fall within `[lo, hi]` (inclusive)? `false`
    /// is definitive; `true` is a may-answer (the filter buckets are
    /// coarse).
    pub fn any_write_pc_in(&self, lo: u32, hi: u32) -> bool {
        if self.writes == 0 || lo > hi {
            return false;
        }
        let lo = lo.max(self.pc_min);
        let hi = hi.min(self.pc_max);
        if lo > hi {
            return false;
        }
        let w = self.filter_bucket_width();
        let b_lo = (lo - self.pc_min) / w;
        let b_hi = (hi - self.pc_min) / w;
        let mask = if b_hi - b_lo >= 63 {
            !0u64
        } else {
            ((1u64 << (b_hi - b_lo + 1)) - 1) << b_lo
        };
        self.pc_filter & mask != 0
    }

    /// Do *all* write pcs fall within `[lo, hi]` (inclusive)? `false`
    /// when the block has no writes.
    pub fn all_write_pcs_in(&self, lo: u32, hi: u32) -> bool {
        self.writes > 0 && lo <= self.pc_min && self.pc_max <= hi
    }

    fn observe_write_pcs(&mut self, pcs: &[u32]) {
        let w = self.filter_bucket_width();
        for &pc in pcs {
            self.pc_filter |= 1u64 << ((pc - self.pc_min) / w);
        }
    }

    fn encode(&self, out: &mut Vec<u8>) {
        for v in [
            self.events,
            self.installs,
            self.removes,
            self.writes,
            self.enters,
            self.exits,
            self.ba_min,
            self.ba_max,
            self.pc_min,
            self.pc_max,
            self.value_min,
            self.value_max,
            self.old_min,
            self.old_max,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&self.pc_filter.to_le_bytes());
    }

    fn decode(cur: &mut Cursor<'_>) -> Result<ZoneMap, TraceCodecError> {
        Ok(ZoneMap {
            events: cur.u32()?,
            installs: cur.u32()?,
            removes: cur.u32()?,
            writes: cur.u32()?,
            enters: cur.u32()?,
            exits: cur.u32()?,
            ba_min: cur.u32()?,
            ba_max: cur.u32()?,
            pc_min: cur.u32()?,
            pc_max: cur.u32()?,
            value_min: cur.u32()?,
            value_max: cur.u32()?,
            old_min: cur.u32()?,
            old_max: cur.u32()?,
            pc_filter: cur.u64()?,
        })
    }
}

/// The eight per-block column buffers, reused across blocks.
#[derive(Default)]
struct Columns {
    tags: Vec<u8>,
    objs: Vec<u8>,
    pcs: Vec<u8>,
    bas: Vec<u8>,
    lens: Vec<u8>,
    funcs: Vec<u8>,
    values: Vec<u8>,
    olds: Vec<u8>,
}

impl Columns {
    fn clear(&mut self) {
        self.tags.clear();
        self.objs.clear();
        self.pcs.clear();
        self.bas.clear();
        self.lens.clear();
        self.funcs.clear();
        self.values.clear();
        self.olds.clear();
    }
}

/// Encoder knobs for [`write_columnar_with`]. The defaults match
/// [`write_columnar`]: full-size blocks with a zone-map trailer.
#[derive(Clone, Copy, Debug)]
pub struct WriteOpts {
    /// Events per block, clamped to `1..=BLOCK_EVENTS`. Small blocks
    /// exist for tests that want many block boundaries on tiny traces.
    pub block_events: usize,
    /// Emit the `ZMAP` zone-map trailer. `false` reproduces the
    /// pre-trailer byte format exactly.
    pub zone_maps: bool,
}

impl Default for WriteOpts {
    fn default() -> WriteOpts {
        WriteOpts {
            block_events: BLOCK_EVENTS,
            zone_maps: true,
        }
    }
}

/// Serializes `trace` in the DBPT v2 columnar format, embedding `meta`
/// as an opaque application blob (the trace store keeps workload
/// provenance there; pass `&[]` for a plain trace file). Appends the
/// zone-map trailer; use [`write_columnar_with`] to opt out.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_columnar(trace: &Trace, meta: &[u8], w: &mut impl Write) -> io::Result<()> {
    write_columnar_with(trace, meta, w, WriteOpts::default())
}

/// [`write_columnar`] with explicit block size and trailer control.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_columnar_with(
    trace: &Trace,
    meta: &[u8],
    w: &mut impl Write,
    opts: WriteOpts,
) -> io::Result<()> {
    let block_events = opts.block_events.clamp(1, BLOCK_EVENTS);
    // Dense object dictionary, ids in order of first appearance. The
    // dictionary is small (hundreds of objects), so the standard hasher
    // is fine and keeps this crate dependency-free.
    let mut dict_ids: std::collections::HashMap<(u8, u32), u32> = std::collections::HashMap::new();
    let mut dict: Vec<(u8, u32)> = Vec::new();
    for e in trace.events() {
        if let Event::Install { obj, .. } | Event::Remove { obj, .. } = e {
            let key = obj_key(obj);
            dict_ids.entry(key).or_insert_with(|| {
                dict.push(key);
                (dict.len() - 1) as u32
            });
        }
    }

    w.write_all(MAGIC)?;
    w.write_all(&VERSION4.to_le_bytes())?;
    w.write_all(&(meta.len() as u32).to_le_bytes())?;
    w.write_all(meta)?;
    w.write_all(&(trace.len() as u64).to_le_bytes())?;
    w.write_all(&(dict.len() as u32).to_le_bytes())?;
    for &(kind, payload) in &dict {
        w.write_all(&[kind])?;
        w.write_all(&payload.to_le_bytes())?;
    }
    let n_blocks = trace.len().div_ceil(block_events);
    w.write_all(&(n_blocks as u32).to_le_bytes())?;

    let mut cols = Columns::default();
    let mut zones: Vec<ZoneMap> = Vec::with_capacity(if opts.zone_maps { n_blocks } else { 0 });
    let mut pc_scratch: Vec<u32> = Vec::new();
    for block in trace.events().chunks(block_events) {
        cols.clear();
        pc_scratch.clear();
        let mut zone = ZoneMap::empty(block.len() as u32);
        let mut prev_pc = 0i64;
        let mut prev_ba = 0i64;
        let mut prev_value = 0i64;
        let mut prev_old = 0i64;
        let mut run_tag = 0u8;
        let mut run_len = 0u64;
        for e in block {
            let tag = event_tag(e);
            if tag == run_tag {
                run_len += 1;
            } else {
                if run_len > 0 {
                    cols.tags.push(run_tag);
                    put_varint(&mut cols.tags, run_len);
                }
                run_tag = tag;
                run_len = 1;
            }
            match *e {
                Event::Install { obj, ba, ea } | Event::Remove { obj, ba, ea } => {
                    if tag == TAG_INSTALL {
                        zone.installs += 1;
                    } else {
                        zone.removes += 1;
                    }
                    zone.ba_min = zone.ba_min.min(ba);
                    zone.ba_max = zone.ba_max.max(ba);
                    let id = dict_ids[&obj_key(&obj)];
                    put_varint(&mut cols.objs, u64::from(id));
                    put_varint(&mut cols.bas, zigzag(i64::from(ba) - prev_ba));
                    prev_ba = i64::from(ba);
                    put_varint(&mut cols.lens, zigzag(i64::from(ea) - i64::from(ba)));
                }
                Event::Write {
                    pc,
                    ba,
                    ea,
                    value,
                    old,
                } => {
                    zone.writes += 1;
                    zone.ba_min = zone.ba_min.min(ba);
                    zone.ba_max = zone.ba_max.max(ba);
                    zone.pc_min = zone.pc_min.min(pc);
                    zone.pc_max = zone.pc_max.max(pc);
                    zone.value_min = zone.value_min.min(value);
                    zone.value_max = zone.value_max.max(value);
                    zone.old_min = zone.old_min.min(old);
                    zone.old_max = zone.old_max.max(old);
                    pc_scratch.push(pc);
                    put_varint(&mut cols.pcs, zigzag(i64::from(pc) - prev_pc));
                    prev_pc = i64::from(pc);
                    put_varint(&mut cols.bas, zigzag(i64::from(ba) - prev_ba));
                    prev_ba = i64::from(ba);
                    put_varint(&mut cols.lens, zigzag(i64::from(ea) - i64::from(ba)));
                    put_varint(&mut cols.values, zigzag(i64::from(value) - prev_value));
                    prev_value = i64::from(value);
                    put_varint(&mut cols.olds, zigzag(i64::from(old) - prev_old));
                    prev_old = i64::from(old);
                }
                Event::Enter { func } => {
                    zone.enters += 1;
                    put_varint(&mut cols.funcs, u64::from(func));
                }
                Event::Exit { func } => {
                    zone.exits += 1;
                    put_varint(&mut cols.funcs, u64::from(func));
                }
            }
        }
        if run_len > 0 {
            cols.tags.push(run_tag);
            put_varint(&mut cols.tags, run_len);
        }
        if opts.zone_maps {
            if zone.writes > 0 {
                zone.observe_write_pcs(&pc_scratch);
            }
            zones.push(zone);
        }
        w.write_all(&(block.len() as u32).to_le_bytes())?;
        for col in [
            &cols.tags,
            &cols.objs,
            &cols.pcs,
            &cols.bas,
            &cols.lens,
            &cols.funcs,
            &cols.values,
            &cols.olds,
        ] {
            w.write_all(&(col.len() as u32).to_le_bytes())?;
            w.write_all(col)?;
        }
    }
    if opts.zone_maps {
        let mut payload = Vec::with_capacity(8 + zones.len() * ZONE_BYTES);
        payload.extend_from_slice(&ZONE_VERSION.to_le_bytes());
        payload.extend_from_slice(&(zones.len() as u32).to_le_bytes());
        for z in &zones {
            z.encode(&mut payload);
        }
        w.write_all(TRAILER_MAGIC)?;
        w.write_all(&(payload.len() as u32).to_le_bytes())?;
        w.write_all(&fnv1a64(&payload).to_le_bytes())?;
        w.write_all(&payload)?;
    }
    Ok(())
}

/// One block's raw (still encoded) column slices, borrowed from the
/// file arena. Decoding is explicit and column-selective — this is the
/// unit of lazy decode for query pushdown.
#[derive(Clone, Copy)]
pub struct RawBlock<'a> {
    events: u32,
    tags: &'a [u8],
    objs: &'a [u8],
    pcs: &'a [u8],
    bas: &'a [u8],
    lens: &'a [u8],
    funcs: &'a [u8],
    values: &'a [u8],
    olds: &'a [u8],
}

/// Which write-bearing columns [`RawBlock::decode_writes`] should
/// materialize. Unrequested columns are never touched.
#[derive(Clone, Copy, Debug, Default)]
pub struct WriteCols {
    /// Decode write pcs.
    pub pcs: bool,
    /// Decode write `(ba, ea)` pairs (walks the tags/bas/lens chain,
    /// which interleaves install/remove entries).
    pub addrs: bool,
    /// Decode written values.
    pub values: bool,
    /// Decode overwritten (old) values.
    pub olds: bool,
}

/// Decoded per-write columns for one block, reusable across blocks.
/// Only the vectors requested via [`WriteCols`] are filled.
#[derive(Default, Debug)]
pub struct BlockWrites {
    /// Write pcs (if requested).
    pub pcs: Vec<u32>,
    /// Write base addresses (if `addrs` requested).
    pub bas: Vec<u32>,
    /// Write end addresses (if `addrs` requested).
    pub eas: Vec<u32>,
    /// Written values (if requested).
    pub values: Vec<u32>,
    /// Overwritten values (if requested).
    pub olds: Vec<u32>,
}

impl BlockWrites {
    fn clear(&mut self) {
        self.pcs.clear();
        self.bas.clear();
        self.eas.clear();
        self.values.clear();
        self.olds.clear();
    }
}

impl<'a> RawBlock<'a> {
    /// Events in this block (from the block header, no decode).
    pub fn events(&self) -> u32 {
        self.events
    }

    /// `(column name, encoded byte length)` for the eight columns —
    /// what `repro trace dump --meta` prints.
    pub fn column_sizes(&self) -> [(&'static str, usize); 8] {
        [
            ("tags", self.tags.len()),
            ("objs", self.objs.len()),
            ("pcs", self.pcs.len()),
            ("bas", self.bas.len()),
            ("lens", self.lens.len()),
            ("funcs", self.funcs.len()),
            ("values", self.values.len()),
            ("olds", self.olds.len()),
        ]
    }

    /// Decodes only the write rows of the requested columns into
    /// `out` (cleared first), returning the block's write count.
    /// Requires the current 8-column layout (see
    /// [`ColumnarReader::has_write_values`]).
    ///
    /// # Errors
    ///
    /// [`TraceCodecError::Malformed`] on any column inconsistency —
    /// including requested columns disagreeing on the write count.
    pub fn decode_writes(
        &self,
        want: WriteCols,
        out: &mut BlockWrites,
    ) -> Result<u32, TraceCodecError> {
        out.clear();
        let mut count: Option<usize> = None;
        fn merge(count: &mut Option<usize>, n: usize, col: &str) -> Result<(), TraceCodecError> {
            match *count {
                None => {
                    *count = Some(n);
                    Ok(())
                }
                Some(c) if c == n => Ok(()),
                Some(c) => Err(TraceCodecError::Malformed(format!(
                    "write columns disagree: {c} writes vs {n} in {col}"
                ))),
            }
        }
        if want.pcs {
            let mut cur = Cursor::new(self.pcs);
            let mut prev = 0i64;
            while cur.remaining() > 0 {
                let v = prev + unzigzag(cur.varint()?);
                prev = v;
                out.pcs.push(
                    u32::try_from(v)
                        .map_err(|_| TraceCodecError::Malformed("pc delta out of range".into()))?,
                );
            }
            merge(&mut count, out.pcs.len(), "pcs")?;
        }
        if want.values {
            let mut cur = Cursor::new(self.values);
            let mut prev = 0i64;
            while cur.remaining() > 0 {
                let v = prev + unzigzag(cur.varint()?);
                prev = v;
                out.values.push(word_value(v)?);
            }
            merge(&mut count, out.values.len(), "values")?;
        }
        if want.olds {
            let mut cur = Cursor::new(self.olds);
            let mut prev = 0i64;
            while cur.remaining() > 0 {
                let v = prev + unzigzag(cur.varint()?);
                prev = v;
                out.olds.push(word_value(v)?);
            }
            merge(&mut count, out.olds.len(), "olds")?;
        }
        if want.addrs || count.is_none() {
            // The bas/lens delta chain interleaves install/remove and
            // write entries, so write addresses require the tag runs;
            // when no column was requested at all, the tags alone still
            // yield the write count.
            let mut tags = Cursor::new(self.tags);
            let mut bas = Cursor::new(self.bas);
            let mut lens = Cursor::new(self.lens);
            let mut prev_ba = 0i64;
            let mut decoded = 0usize;
            let mut writes = 0usize;
            let events = self.events as usize;
            while decoded < events {
                let tag = tags.u8()?;
                let run = tags.varint()? as usize;
                if run == 0 || run > events - decoded {
                    return Err(TraceCodecError::Malformed(format!(
                        "tag run of {run} overflows block"
                    )));
                }
                match tag {
                    TAG_INSTALL | TAG_REMOVE => {
                        if want.addrs {
                            for _ in 0..run {
                                let ba = prev_ba + unzigzag(bas.varint()?);
                                prev_ba = ba;
                                let len = unzigzag(lens.varint()?);
                                addr_pair(ba, len)?;
                            }
                        }
                    }
                    TAG_WRITE => {
                        writes += run;
                        if want.addrs {
                            for _ in 0..run {
                                let ba = prev_ba + unzigzag(bas.varint()?);
                                prev_ba = ba;
                                let len = unzigzag(lens.varint()?);
                                let (ba, ea) = addr_pair(ba, len)?;
                                out.bas.push(ba);
                                out.eas.push(ea);
                            }
                        }
                    }
                    TAG_ENTER | TAG_EXIT => {}
                    t => return Err(TraceCodecError::Malformed(format!("event tag {t}"))),
                }
                decoded += run;
            }
            merge(&mut count, writes, "tags")?;
        }
        Ok(count.unwrap_or(0) as u32)
    }

    /// Fully decodes this block's events, appending to `out`.
    fn decode_into(
        &self,
        has_values: bool,
        dict: &[ObjectDesc],
        out: &mut Trace,
    ) -> Result<(), TraceCodecError> {
        let block_events = self.events as usize;
        let mut tags = Cursor::new(self.tags);
        let mut objs = Cursor::new(self.objs);
        let mut pcs = Cursor::new(self.pcs);
        let mut bas = Cursor::new(self.bas);
        let mut lens = Cursor::new(self.lens);
        let mut funcs = Cursor::new(self.funcs);
        let mut values = Cursor::new(self.values);
        let mut olds = Cursor::new(self.olds);
        let mut prev_pc = 0i64;
        let mut prev_ba = 0i64;
        let mut prev_value = 0i64;
        let mut prev_old = 0i64;
        let mut decoded = 0usize;
        while decoded < block_events {
            let tag = tags.u8()?;
            let run = tags.varint()? as usize;
            if run == 0 || run > block_events - decoded {
                return Err(TraceCodecError::Malformed(format!(
                    "tag run of {run} overflows block"
                )));
            }
            // One dispatch per run; the loop body is branch-free on the
            // event shape.
            match tag {
                TAG_INSTALL | TAG_REMOVE => {
                    for _ in 0..run {
                        let id = objs.varint()? as usize;
                        let obj = *dict.get(id).ok_or_else(|| {
                            TraceCodecError::Malformed(format!("dictionary id {id} out of range"))
                        })?;
                        let ba = prev_ba + unzigzag(bas.varint()?);
                        prev_ba = ba;
                        let len = unzigzag(lens.varint()?);
                        let (ba, ea) = addr_pair(ba, len)?;
                        out.push(if tag == TAG_INSTALL {
                            Event::Install { obj, ba, ea }
                        } else {
                            Event::Remove { obj, ba, ea }
                        });
                    }
                }
                TAG_WRITE => {
                    for _ in 0..run {
                        let pc = prev_pc + unzigzag(pcs.varint()?);
                        prev_pc = pc;
                        let pc = u32::try_from(pc).map_err(|_| {
                            TraceCodecError::Malformed("pc delta out of range".into())
                        })?;
                        let ba = prev_ba + unzigzag(bas.varint()?);
                        prev_ba = ba;
                        let len = unzigzag(lens.varint()?);
                        let (ba, ea) = addr_pair(ba, len)?;
                        let (value, old) = if has_values {
                            let v = prev_value + unzigzag(values.varint()?);
                            prev_value = v;
                            let o = prev_old + unzigzag(olds.varint()?);
                            prev_old = o;
                            (word_value(v)?, word_value(o)?)
                        } else {
                            (0, 0)
                        };
                        out.push(Event::Write {
                            pc,
                            ba,
                            ea,
                            value,
                            old,
                        });
                    }
                }
                TAG_ENTER | TAG_EXIT => {
                    for _ in 0..run {
                        let func = u16::try_from(funcs.varint()?).map_err(|_| {
                            TraceCodecError::Malformed("function id out of range".into())
                        })?;
                        out.push(if tag == TAG_ENTER {
                            Event::Enter { func }
                        } else {
                            Event::Exit { func }
                        });
                    }
                }
                t => return Err(TraceCodecError::Malformed(format!("event tag {t}"))),
            }
            decoded += run;
        }
        for (cur, name) in [
            (&tags, "tags"),
            (&objs, "objs"),
            (&pcs, "pcs"),
            (&bas, "bas"),
            (&lens, "lens"),
            (&funcs, "funcs"),
            (&values, "values"),
            (&olds, "olds"),
        ] {
            if cur.remaining() != 0 {
                return Err(TraceCodecError::Malformed(format!(
                    "{name} column has trailing bytes"
                )));
            }
        }
        Ok(())
    }
}

/// Parsed container structure: header fields plus raw block slices and
/// whatever bytes follow the last block (empty or a trailer).
struct Parsed<'a> {
    version: u32,
    meta: &'a [u8],
    n_events: u64,
    dict: Vec<ObjectDesc>,
    blocks: Vec<RawBlock<'a>>,
    trailer: &'a [u8],
}

fn parse_container(bytes: &[u8]) -> Result<Parsed<'_>, TraceCodecError> {
    let mut cur = Cursor::new(bytes);
    let mut magic = [0u8; 4];
    for b in &mut magic {
        *b = cur.u8()?;
    }
    if &magic != MAGIC {
        return Err(TraceCodecError::Malformed("bad magic".into()));
    }
    let version = cur.u32()?;
    if version != VERSION2 && version != VERSION4 {
        return Err(TraceCodecError::Malformed(format!(
            "unsupported version {version}"
        )));
    }
    let has_values = version == VERSION4;
    let meta_len = cur.u32()? as usize;
    if meta_len > cur.remaining() {
        return Err(truncated("meta blob"));
    }
    let meta = &bytes[cur.pos..cur.pos + meta_len];
    cur.pos += meta_len;

    let n_events = cur.u64()?;
    // 5 bytes is the smallest event encoding (amortized); reject counts
    // the remaining input cannot possibly hold so corrupt headers can't
    // reserve huge buffers.
    if n_events / 8 > cur.remaining() as u64 {
        return Err(truncated("event payload"));
    }
    let dict_len = cur.u32()? as usize;
    if dict_len * 5 > cur.remaining() {
        return Err(truncated("dictionary"));
    }
    let mut dict = Vec::with_capacity(dict_len);
    for _ in 0..dict_len {
        let kind = cur.u8()?;
        let payload = cur.u32()?;
        dict.push(obj_from_key(kind, payload)?);
    }
    let n_blocks = cur.u32()? as usize;
    if n_blocks * 4 > cur.remaining() {
        return Err(truncated("blocks"));
    }
    let mut blocks = Vec::with_capacity(n_blocks);
    for _ in 0..n_blocks {
        let block_events = cur.u32()?;
        if block_events as usize > BLOCK_EVENTS {
            return Err(TraceCodecError::Malformed(format!(
                "block of {block_events} events exceeds the {BLOCK_EVENTS} cap"
            )));
        }
        let tags = cur.segment()?;
        let objs = cur.segment()?;
        let pcs = cur.segment()?;
        let bas = cur.segment()?;
        let lens = cur.segment()?;
        let funcs = cur.segment()?;
        let (values, olds) = if has_values {
            (cur.segment()?, cur.segment()?)
        } else {
            (&[][..], &[][..])
        };
        blocks.push(RawBlock {
            events: block_events,
            tags,
            objs,
            pcs,
            bas,
            lens,
            funcs,
            values,
            olds,
        });
    }
    let trailer = &bytes[cur.pos..];
    Ok(Parsed {
        version,
        meta,
        n_events,
        dict,
        blocks,
        trailer,
    })
}

/// The strict full-decode rule for post-block bytes: nothing at all, or
/// one completely framed `ZMAP` trailer (contents skipped unread).
/// Anything else — trailing garbage, a truncated trailer — is an error,
/// so truncation of a trailer-less file is always detected.
fn check_trailer_framing(trailer: &[u8]) -> Result<(), TraceCodecError> {
    if trailer.is_empty() {
        return Ok(());
    }
    let trailing = || TraceCodecError::Malformed("trailing bytes".into());
    if trailer.len() < 16 || &trailer[..4] != TRAILER_MAGIC {
        return Err(trailing());
    }
    let len = u32::from_le_bytes(trailer[4..8].try_into().expect("4 bytes")) as usize;
    if trailer.len() - 16 != len {
        return Err(TraceCodecError::Malformed(
            "zone-map trailer length mismatch".into(),
        ));
    }
    Ok(())
}

/// Lenient zone-map extraction for the query path: any defect — bad
/// magic, truncation, checksum mismatch, count disagreement with the
/// block headers — yields `None`, which callers treat as "no zone
/// maps, scan everything".
fn parse_zone_trailer(trailer: &[u8], blocks: &[RawBlock<'_>]) -> Option<Vec<ZoneMap>> {
    if trailer.len() < 16 || &trailer[..4] != TRAILER_MAGIC {
        return None;
    }
    let len = u32::from_le_bytes(trailer[4..8].try_into().expect("4 bytes")) as usize;
    let checksum = u64::from_le_bytes(trailer[8..16].try_into().expect("8 bytes"));
    if trailer.len() - 16 != len {
        return None;
    }
    let payload = &trailer[16..];
    if fnv1a64(payload) != checksum {
        return None;
    }
    let mut cur = Cursor::new(payload);
    if cur.u32().ok()? != ZONE_VERSION {
        return None;
    }
    let n = cur.u32().ok()? as usize;
    if n != blocks.len() || payload.len() != 8 + n * ZONE_BYTES {
        return None;
    }
    let mut zones = Vec::with_capacity(n);
    for block in blocks {
        let z = ZoneMap::decode(&mut cur).ok()?;
        let tag_sum = z.installs + z.removes + z.writes + z.enters + z.exits;
        if z.events != block.events || tag_sum != z.events {
            return None;
        }
        zones.push(z);
    }
    Some(zones)
}

/// A lazily-decoding view over a DBPT v2 file: header, dictionary and
/// block directory are parsed eagerly (cheap — column contents are only
/// sliced, not decoded), zone maps are validated if present, and event
/// decode happens per block, per column, on demand.
///
/// This is the substrate for query pushdown: refute a block against its
/// [`ZoneMap`], and decode only the surviving blocks' relevant columns.
pub struct ColumnarReader<'a> {
    version: u32,
    meta: &'a [u8],
    n_events: u64,
    dict: Vec<ObjectDesc>,
    blocks: Vec<RawBlock<'a>>,
    zones: Option<Vec<ZoneMap>>,
}

impl<'a> ColumnarReader<'a> {
    /// Parses the container structure of `bytes` without decoding any
    /// event columns. A malformed *trailer* is not an error here — the
    /// zone maps are simply dropped (see [`ColumnarReader::zones`]).
    ///
    /// # Errors
    ///
    /// [`TraceCodecError::Malformed`] on bad magic/version, dictionary
    /// defects, truncated block structure, or block headers that
    /// disagree with the event count.
    pub fn open(bytes: &'a [u8]) -> Result<ColumnarReader<'a>, TraceCodecError> {
        let p = parse_container(bytes)?;
        let header_sum: u64 = p.blocks.iter().map(|b| u64::from(b.events)).sum();
        if header_sum != p.n_events {
            return Err(TraceCodecError::Malformed(format!(
                "header promises {} events, blocks hold {header_sum}",
                p.n_events
            )));
        }
        let zones = parse_zone_trailer(p.trailer, &p.blocks);
        Ok(ColumnarReader {
            version: p.version,
            meta: p.meta,
            n_events: p.n_events,
            dict: p.dict,
            blocks: p.blocks,
            zones,
        })
    }

    /// Container format version (2 legacy, 4 current).
    pub fn version(&self) -> u32 {
        self.version
    }

    /// `true` when blocks carry the values/olds columns (version 4),
    /// i.e. [`RawBlock::decode_writes`] is usable.
    pub fn has_write_values(&self) -> bool {
        self.version == VERSION4
    }

    /// The embedded opaque meta blob.
    pub fn meta(&self) -> &'a [u8] {
        self.meta
    }

    /// Total events promised by the header (equals the block sum).
    pub fn n_events(&self) -> u64 {
        self.n_events
    }

    /// The object dictionary.
    pub fn dict(&self) -> &[ObjectDesc] {
        &self.dict
    }

    /// The raw (undecoded) blocks.
    pub fn blocks(&self) -> &[RawBlock<'a>] {
        &self.blocks
    }

    /// Validated zone maps, one per block — `None` when the file has no
    /// trailer or the trailer failed validation (old file, truncation,
    /// corruption): callers must then scan every block.
    pub fn zones(&self) -> Option<&[ZoneMap]> {
        self.zones.as_deref()
    }

    /// Fully decodes block `idx`, appending its events to `out`.
    ///
    /// # Errors
    ///
    /// [`TraceCodecError::Malformed`] on column defects in the block.
    ///
    /// # Panics
    ///
    /// If `idx` is out of range.
    pub fn decode_block_into(&self, idx: usize, out: &mut Trace) -> Result<(), TraceCodecError> {
        self.blocks[idx].decode_into(self.has_write_values(), &self.dict, out)
    }
}

/// Deserializes a DBPT v2 columnar trace from an in-memory arena (load
/// the whole file with one read, then call this), returning the trace
/// and the embedded meta blob. A zone-map trailer, if present, is
/// skipped without being read — this full-decode path predates zone
/// maps and stays byte-compatible in both directions.
///
/// # Errors
///
/// [`TraceCodecError::Malformed`] on bad magic/version, dictionary or
/// column inconsistencies, and any truncation — a valid prefix of a v2
/// file is an error, never a panic.
pub fn read_columnar(bytes: &[u8]) -> Result<(Trace, Vec<u8>), TraceCodecError> {
    let p = parse_container(bytes)?;
    check_trailer_framing(p.trailer)?;
    let has_values = p.version == VERSION4;
    let mut trace = Trace::with_capacity(p.n_events as usize);
    for block in &p.blocks {
        block.decode_into(has_values, &p.dict, &mut trace)?;
    }
    if trace.len() as u64 != p.n_events {
        return Err(TraceCodecError::Malformed(format!(
            "header promises {} events, blocks hold {}",
            p.n_events,
            trace.len()
        )));
    }
    Ok((trace, p.meta.to_vec()))
}

fn word_value(v: i64) -> Result<u32, TraceCodecError> {
    u32::try_from(v).map_err(|_| TraceCodecError::Malformed("value delta out of range".into()))
}

fn addr_pair(ba: i64, len: i64) -> Result<(u32, u32), TraceCodecError> {
    let ea = ba.checked_add(len);
    match (u32::try_from(ba), ea.map(u32::try_from)) {
        (Ok(ba), Some(Ok(ea))) => Ok((ba, ea)),
        _ => Err(TraceCodecError::Malformed(
            "address delta out of range".into(),
        )),
    }
}

/// Reads a serialized trace of any binary version from an in-memory
/// arena: row-oriented (v1/v3) or columnar (v2/v4). Row files carry no
/// meta blob, so it comes back empty.
///
/// # Errors
///
/// As [`read_columnar`] / [`crate::read_binary`].
pub fn read_any(bytes: &[u8]) -> Result<(Trace, Vec<u8>), TraceCodecError> {
    if bytes.len() >= 8 && &bytes[..4] == MAGIC {
        let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        if version == VERSION2 || version == VERSION4 {
            return read_columnar(bytes);
        }
    }
    let trace = crate::codec::read_binary(&mut &bytes[..])?;
    Ok((trace, Vec::new()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        Trace::from_events(vec![
            Event::Install {
                obj: ObjectDesc::Global { id: 0 },
                ba: 0x10_0000,
                ea: 0x10_0004,
            },
            Event::Enter { func: 3 },
            Event::Install {
                obj: ObjectDesc::Local { func: 3, var: 1 },
                ba: 0xeffff0,
                ea: 0xeffff4,
            },
            Event::Write {
                pc: 0x1_0010,
                ba: 0xeffff0,
                ea: 0xeffff4,
                value: 0xdead_beef,
                old: 0,
            },
            Event::Write {
                pc: 0x1_0014,
                ba: 0xeffff0,
                ea: 0xeffff1,
                value: 0x7f,
                old: 0xef,
            },
            Event::Install {
                obj: ObjectDesc::Heap { seq: 2 },
                ba: 0x40_0000,
                ea: 0x40_0010,
            },
            Event::Remove {
                obj: ObjectDesc::Heap { seq: 2 },
                ba: 0x40_0000,
                ea: 0x40_0010,
            },
            Event::Remove {
                obj: ObjectDesc::Local { func: 3, var: 1 },
                ba: 0xeffff0,
                ea: 0xeffff4,
            },
            Event::Exit { func: 3 },
            Event::Remove {
                obj: ObjectDesc::Global { id: 0 },
                ba: 0x10_0000,
                ea: 0x10_0004,
            },
        ])
    }

    fn write_no_zones(trace: &Trace, meta: &[u8]) -> Vec<u8> {
        let mut buf = Vec::new();
        write_columnar_with(
            trace,
            meta,
            &mut buf,
            WriteOpts {
                zone_maps: false,
                ..WriteOpts::default()
            },
        )
        .unwrap();
        buf
    }

    #[test]
    fn columnar_roundtrip_with_meta() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_columnar(&t, b"workload=tex", &mut buf).unwrap();
        let (back, meta) = read_columnar(&buf).unwrap();
        assert_eq!(t, back);
        assert_eq!(meta, b"workload=tex");
    }

    #[test]
    fn empty_trace_roundtrips() {
        let t = Trace::new();
        let mut buf = Vec::new();
        write_columnar(&t, &[], &mut buf).unwrap();
        let (back, meta) = read_columnar(&buf).unwrap();
        assert_eq!(back, t);
        assert!(meta.is_empty());
    }

    #[test]
    fn multi_block_roundtrip() {
        let mut t = Trace::new();
        for i in 0..(BLOCK_EVENTS as u32 + 100) {
            t.push(Event::Write {
                pc: 0x100 + (i % 7),
                ba: 0x1000 + i * 4,
                ea: 0x1004 + i * 4,
                value: i.wrapping_mul(2654435761),
                old: i % 3,
            });
        }
        let mut buf = Vec::new();
        write_columnar(&t, &[], &mut buf).unwrap();
        let (back, _) = read_columnar(&buf).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        assert!(matches!(
            read_columnar(b"NOPE\x02\0\0\0"),
            Err(TraceCodecError::Malformed(_))
        ));
        let mut buf = Vec::new();
        write_columnar(&sample_trace(), &[], &mut buf).unwrap();
        buf[4] = 9;
        assert!(matches!(
            read_columnar(&buf),
            Err(TraceCodecError::Malformed(_))
        ));
    }

    #[test]
    fn every_truncation_prefix_is_a_clean_error() {
        // Without a trailer the original guarantee holds exactly: no
        // proper prefix decodes.
        let buf = write_no_zones(&sample_trace(), b"meta");
        for cut in 0..buf.len() {
            assert!(
                read_columnar(&buf[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn trailered_file_truncation_never_yields_a_wrong_trace() {
        // With a trailer, the single prefix that drops exactly the whole
        // trailer is a valid trailer-less file and decodes to the full
        // trace; every other proper prefix errors.
        let t = sample_trace();
        let plain = write_no_zones(&t, b"meta");
        let mut buf = Vec::new();
        write_columnar(&t, b"meta", &mut buf).unwrap();
        assert!(buf.len() > plain.len(), "trailer should add bytes");
        for cut in 0..buf.len() {
            match read_columnar(&buf[..cut]) {
                Ok((back, meta)) => {
                    assert_eq!(cut, plain.len(), "unexpected prefix of {cut} bytes decoded");
                    assert_eq!(back, t);
                    assert_eq!(meta, b"meta");
                }
                Err(_) => assert_ne!(cut, plain.len()),
            }
        }
    }

    #[test]
    fn trailer_is_byte_prefix_compatible() {
        // The trailered encoding is exactly the pre-trailer encoding
        // plus the trailer: old-style bytes are a strict prefix.
        let t = sample_trace();
        let plain = write_no_zones(&t, b"m");
        let mut with = Vec::new();
        write_columnar(&t, b"m", &mut with).unwrap();
        assert_eq!(&with[..plain.len()], &plain[..]);
        assert_eq!(&with[plain.len()..plain.len() + 4], TRAILER_MAGIC);
    }

    #[test]
    fn reader_exposes_validated_zone_maps() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_columnar(&t, b"m", &mut buf).unwrap();
        let r = ColumnarReader::open(&buf).unwrap();
        assert_eq!(r.n_events(), t.len() as u64);
        assert_eq!(r.meta(), b"m");
        assert!(r.has_write_values());
        let zones = r.zones().expect("trailer should validate");
        assert_eq!(zones.len(), 1);
        let z = &zones[0];
        assert_eq!(
            (z.installs, z.removes, z.writes, z.enters, z.exits),
            (3, 3, 2, 1, 1)
        );
        assert_eq!(z.write_value_range(), Some((0x7f, 0xdead_beef)));
        assert_eq!(z.write_old_range(), Some((0, 0xef)));
        assert_eq!(z.write_pc_range(), Some((0x1_0010, 0x1_0014)));
        assert!(z.any_write_pc_in(0x1_0010, 0x1_0010));
        assert!(!z.any_write_pc_in(0, 0x1_000f));
        assert!(!z.any_write_pc_in(0x1_0015, u32::MAX));
        assert!(z.all_write_pcs_in(0x1_0000, 0x2_0000));
        assert!(!z.all_write_pcs_in(0x1_0011, 0x2_0000));
    }

    #[test]
    fn corrupt_trailer_degrades_to_no_zones_but_reader_still_opens() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_columnar(&t, b"m", &mut buf).unwrap();
        let plain_len = write_no_zones(&t, b"m").len();
        // Flip a byte inside the trailer payload: checksum breaks.
        let last = buf.len() - 1;
        buf[last] ^= 0xff;
        let r = ColumnarReader::open(&buf).unwrap();
        assert!(r.zones().is_none());
        // Blocks remain decodable.
        let mut back = Trace::new();
        for i in 0..r.blocks().len() {
            r.decode_block_into(i, &mut back).unwrap();
        }
        assert_eq!(back, t);
        // Mangle the trailer magic instead: reader still opens (no
        // zones), while the strict full decode reports trailing bytes.
        buf[last] ^= 0xff;
        buf[plain_len] ^= 0xff;
        let r = ColumnarReader::open(&buf).unwrap();
        assert!(r.zones().is_none());
        assert!(read_columnar(&buf).is_err());
    }

    #[test]
    fn decode_writes_is_column_selective() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_columnar(&t, &[], &mut buf).unwrap();
        let r = ColumnarReader::open(&buf).unwrap();
        let mut out = BlockWrites::default();
        // No columns requested: still counts writes via tags.
        let n = r.blocks()[0]
            .decode_writes(WriteCols::default(), &mut out)
            .unwrap();
        assert_eq!(n, 2);
        assert!(out.pcs.is_empty() && out.values.is_empty());
        let n = r.blocks()[0]
            .decode_writes(
                WriteCols {
                    pcs: true,
                    addrs: true,
                    values: true,
                    olds: true,
                },
                &mut out,
            )
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(out.pcs, vec![0x1_0010, 0x1_0014]);
        assert_eq!(out.bas, vec![0xeffff0, 0xeffff0]);
        assert_eq!(out.eas, vec![0xeffff4, 0xeffff1]);
        assert_eq!(out.values, vec![0xdead_beef, 0x7f]);
        assert_eq!(out.olds, vec![0, 0xef]);
    }

    #[test]
    fn small_block_writer_roundtrips_many_blocks() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_columnar_with(
            &t,
            b"m",
            &mut buf,
            WriteOpts {
                block_events: 3,
                zone_maps: true,
            },
        )
        .unwrap();
        let (back, meta) = read_columnar(&buf).unwrap();
        assert_eq!(back, t);
        assert_eq!(meta, b"m");
        let r = ColumnarReader::open(&buf).unwrap();
        assert_eq!(r.blocks().len(), t.len().div_ceil(3));
        let zones = r.zones().expect("zones validate");
        assert_eq!(zones.len(), r.blocks().len());
        let write_sum: u32 = zones.iter().map(|z| z.writes).sum();
        assert_eq!(write_sum, 2);
    }

    #[test]
    fn legacy_v2_six_column_file_decodes_with_zero_filled_values() {
        // Hand-build a version-2 container: one block, one write event,
        // six columns (no values/olds).
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION2.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes()); // meta_len
        buf.extend_from_slice(&1u64.to_le_bytes()); // n_events
        buf.extend_from_slice(&0u32.to_le_bytes()); // dict_len
        buf.extend_from_slice(&1u32.to_le_bytes()); // n_blocks
        buf.extend_from_slice(&1u32.to_le_bytes()); // block_events
        let mut tags = Vec::new();
        tags.push(TAG_WRITE);
        put_varint(&mut tags, 1);
        let mut pcs = Vec::new();
        put_varint(&mut pcs, zigzag(0x1_0010));
        let mut bas = Vec::new();
        put_varint(&mut bas, zigzag(0x10_0000));
        let mut lens = Vec::new();
        put_varint(&mut lens, zigzag(4));
        for col in [&tags, &Vec::new(), &pcs, &bas, &lens, &Vec::new()] {
            buf.extend_from_slice(&(col.len() as u32).to_le_bytes());
            buf.extend_from_slice(col);
        }
        let (t, meta) = read_columnar(&buf).unwrap();
        assert!(meta.is_empty());
        assert_eq!(
            t.events(),
            &[Event::Write {
                pc: 0x1_0010,
                ba: 0x10_0000,
                ea: 0x10_0004,
                value: 0,
                old: 0,
            }]
        );
        // read_any dispatches legacy columnar files too.
        let (t2, _) = read_any(&buf).unwrap();
        assert_eq!(t, t2);
        // The lazy reader opens legacy files as well — no zones, no
        // write-value columns.
        let r = ColumnarReader::open(&buf).unwrap();
        assert!(!r.has_write_values());
        assert!(r.zones().is_none());
    }

    #[test]
    fn read_any_dispatches_on_version() {
        let t = sample_trace();
        let mut v1 = Vec::new();
        crate::codec::write_binary(&t, &mut v1).unwrap();
        let mut v2 = Vec::new();
        write_columnar(&t, b"m", &mut v2).unwrap();
        let (t1, m1) = read_any(&v1).unwrap();
        let (t2, m2) = read_any(&v2).unwrap();
        assert_eq!(t1, t);
        assert_eq!(t2, t);
        assert!(m1.is_empty());
        assert_eq!(m2, b"m");
    }

    #[test]
    fn v2_is_smaller_than_v1_on_write_heavy_traces() {
        let mut t = Trace::new();
        for i in 0..10_000u32 {
            t.push(Event::Write {
                pc: 0x200,
                ba: 0x1000 + (i % 64) * 4,
                ea: 0x1004 + (i % 64) * 4,
                value: i % 100,
                old: (i % 100).wrapping_sub(1),
            });
        }
        let mut v1 = Vec::new();
        crate::codec::write_binary(&t, &mut v1).unwrap();
        let mut v2 = Vec::new();
        write_columnar(&t, &[], &mut v2).unwrap();
        assert!(
            v2.len() * 2 < v1.len(),
            "v2 ({}) should be well under half of v1 ({})",
            v2.len(),
            v1.len()
        );
    }
}
