//! DBPT v2 — the columnar, delta-encoded binary trace format.
//!
//! Where v1 interleaves tag and payload per event, v2 splits events into
//! per-field *columns* packed in fixed-size blocks, which is what the
//! persistent trace store serializes:
//!
//! ```text
//! "DBPT" u32:4
//! u32:meta_len  meta bytes            (opaque application blob)
//! u64:n_events
//! u32:dict_len  { u8:kind u32:payload }*   (dense ObjectDesc dictionary)
//! u32:n_blocks
//! blocks: u32:block_events  8 × ( u32:col_len col_bytes )
//! ```
//!
//! The eight columns per block, in order: **tags** (run-length pairs
//! `u8:tag varint:run`), **objs** (varint dictionary ids, one per
//! install/remove), **pcs** (zigzag-delta varints, one per write),
//! **bas** (zigzag-delta varints, one per install/remove/write),
//! **lens** (zigzag varints of `ea − ba`, same events as `bas`),
//! **funcs** (varint function ids, one per enter/exit), **values**
//! (zigzag-delta varints of the written value, one per write), and
//! **olds** (likewise for the overwritten value). Delta state resets at
//! block boundaries, so blocks decode independently.
//!
//! Version 2 is the pre-predicate layout — the same container with only
//! the first six columns; it still decodes, with write values and olds
//! zero-filled.
//!
//! Run-length tags are what remove per-event decode branching: the
//! reader dispatches once per *run* and then decodes a straight-line
//! batch of same-shaped events from the column cursors. A whole file is
//! loaded with one read into a byte arena ([`read_columnar`] takes
//! `&[u8]`) and columns are sliced out of it — no per-event I/O, no
//! intermediate buffers.
//!
//! Malformed or truncated input yields a clean
//! [`TraceCodecError`] — any valid prefix of a v2 file fails with an
//! error, never a panic, and allocation sizes are bounded by the input
//! length so corrupted headers cannot trigger huge reservations.

use crate::codec::TraceCodecError;
use crate::event::{Event, ObjectDesc, Trace};
use std::io::{self, Write};

const MAGIC: &[u8; 4] = b"DBPT";
/// Legacy columnar version: six columns, no write values.
const VERSION2: u32 = 2;
/// Current columnar version: eight columns including values/olds.
const VERSION4: u32 = 4;

/// Events per column block. 64K events keeps every block's columns in
/// cache during decode while bounding the delta chains corruption can
/// damage.
pub const BLOCK_EVENTS: usize = 1 << 16;

const TAG_INSTALL: u8 = 1;
const TAG_REMOVE: u8 = 2;
const TAG_WRITE: u8 = 3;
const TAG_ENTER: u8 = 4;
const TAG_EXIT: u8 = 5;

const OBJ_GLOBAL: u8 = 1;
const OBJ_LOCAL: u8 = 2;
const OBJ_HEAP: u8 = 3;

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            break;
        }
        out.push(b | 0x80);
    }
}

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// A read cursor over one column slice.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Cursor<'a> {
        Cursor { bytes, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn u8(&mut self) -> Result<u8, TraceCodecError> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or_else(|| truncated("column byte"))?;
        self.pos += 1;
        Ok(b)
    }

    fn u32(&mut self) -> Result<u32, TraceCodecError> {
        let end = self.pos.checked_add(4).filter(|&e| e <= self.bytes.len());
        let end = end.ok_or_else(|| truncated("u32"))?;
        let v = u32::from_le_bytes(self.bytes[self.pos..end].try_into().expect("4 bytes"));
        self.pos = end;
        Ok(v)
    }

    fn u64(&mut self) -> Result<u64, TraceCodecError> {
        let end = self.pos.checked_add(8).filter(|&e| e <= self.bytes.len());
        let end = end.ok_or_else(|| truncated("u64"))?;
        let v = u64::from_le_bytes(self.bytes[self.pos..end].try_into().expect("8 bytes"));
        self.pos = end;
        Ok(v)
    }

    fn varint(&mut self) -> Result<u64, TraceCodecError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.u8()?;
            if shift >= 64 {
                return Err(TraceCodecError::Malformed("varint overflow".into()));
            }
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Slices off a `u32`-length-prefixed segment.
    fn segment(&mut self) -> Result<&'a [u8], TraceCodecError> {
        let len = self.u32()? as usize;
        let end = self
            .pos
            .checked_add(len)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| truncated("column segment"))?;
        let seg = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(seg)
    }
}

fn truncated(what: &str) -> TraceCodecError {
    TraceCodecError::Malformed(format!("truncated {what}"))
}

fn obj_key(obj: &ObjectDesc) -> (u8, u32) {
    match *obj {
        ObjectDesc::Global { id } => (OBJ_GLOBAL, id),
        ObjectDesc::Local { func, var } => (OBJ_LOCAL, (u32::from(func) << 16) | u32::from(var)),
        ObjectDesc::Heap { seq } => (OBJ_HEAP, seq),
    }
}

fn obj_from_key(kind: u8, payload: u32) -> Result<ObjectDesc, TraceCodecError> {
    Ok(match kind {
        OBJ_GLOBAL => ObjectDesc::Global { id: payload },
        OBJ_LOCAL => ObjectDesc::Local {
            func: (payload >> 16) as u16,
            var: (payload & 0xffff) as u16,
        },
        OBJ_HEAP => ObjectDesc::Heap { seq: payload },
        k => return Err(TraceCodecError::Malformed(format!("dictionary kind {k}"))),
    })
}

fn event_tag(e: &Event) -> u8 {
    match e {
        Event::Install { .. } => TAG_INSTALL,
        Event::Remove { .. } => TAG_REMOVE,
        Event::Write { .. } => TAG_WRITE,
        Event::Enter { .. } => TAG_ENTER,
        Event::Exit { .. } => TAG_EXIT,
    }
}

/// The eight per-block column buffers, reused across blocks.
#[derive(Default)]
struct Columns {
    tags: Vec<u8>,
    objs: Vec<u8>,
    pcs: Vec<u8>,
    bas: Vec<u8>,
    lens: Vec<u8>,
    funcs: Vec<u8>,
    values: Vec<u8>,
    olds: Vec<u8>,
}

impl Columns {
    fn clear(&mut self) {
        self.tags.clear();
        self.objs.clear();
        self.pcs.clear();
        self.bas.clear();
        self.lens.clear();
        self.funcs.clear();
        self.values.clear();
        self.olds.clear();
    }
}

/// Serializes `trace` in the DBPT v2 columnar format, embedding `meta`
/// as an opaque application blob (the trace store keeps workload
/// provenance there; pass `&[]` for a plain trace file).
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_columnar(trace: &Trace, meta: &[u8], w: &mut impl Write) -> io::Result<()> {
    // Dense object dictionary, ids in order of first appearance. The
    // dictionary is small (hundreds of objects), so the standard hasher
    // is fine and keeps this crate dependency-free.
    let mut dict_ids: std::collections::HashMap<(u8, u32), u32> = std::collections::HashMap::new();
    let mut dict: Vec<(u8, u32)> = Vec::new();
    for e in trace.events() {
        if let Event::Install { obj, .. } | Event::Remove { obj, .. } = e {
            let key = obj_key(obj);
            dict_ids.entry(key).or_insert_with(|| {
                dict.push(key);
                (dict.len() - 1) as u32
            });
        }
    }

    w.write_all(MAGIC)?;
    w.write_all(&VERSION4.to_le_bytes())?;
    w.write_all(&(meta.len() as u32).to_le_bytes())?;
    w.write_all(meta)?;
    w.write_all(&(trace.len() as u64).to_le_bytes())?;
    w.write_all(&(dict.len() as u32).to_le_bytes())?;
    for &(kind, payload) in &dict {
        w.write_all(&[kind])?;
        w.write_all(&payload.to_le_bytes())?;
    }
    let n_blocks = trace.len().div_ceil(BLOCK_EVENTS);
    w.write_all(&(n_blocks as u32).to_le_bytes())?;

    let mut cols = Columns::default();
    for block in trace.events().chunks(BLOCK_EVENTS) {
        cols.clear();
        let mut prev_pc = 0i64;
        let mut prev_ba = 0i64;
        let mut prev_value = 0i64;
        let mut prev_old = 0i64;
        let mut run_tag = 0u8;
        let mut run_len = 0u64;
        for e in block {
            let tag = event_tag(e);
            if tag == run_tag {
                run_len += 1;
            } else {
                if run_len > 0 {
                    cols.tags.push(run_tag);
                    put_varint(&mut cols.tags, run_len);
                }
                run_tag = tag;
                run_len = 1;
            }
            match *e {
                Event::Install { obj, ba, ea } | Event::Remove { obj, ba, ea } => {
                    let id = dict_ids[&obj_key(&obj)];
                    put_varint(&mut cols.objs, u64::from(id));
                    put_varint(&mut cols.bas, zigzag(i64::from(ba) - prev_ba));
                    prev_ba = i64::from(ba);
                    put_varint(&mut cols.lens, zigzag(i64::from(ea) - i64::from(ba)));
                }
                Event::Write {
                    pc,
                    ba,
                    ea,
                    value,
                    old,
                } => {
                    put_varint(&mut cols.pcs, zigzag(i64::from(pc) - prev_pc));
                    prev_pc = i64::from(pc);
                    put_varint(&mut cols.bas, zigzag(i64::from(ba) - prev_ba));
                    prev_ba = i64::from(ba);
                    put_varint(&mut cols.lens, zigzag(i64::from(ea) - i64::from(ba)));
                    put_varint(&mut cols.values, zigzag(i64::from(value) - prev_value));
                    prev_value = i64::from(value);
                    put_varint(&mut cols.olds, zigzag(i64::from(old) - prev_old));
                    prev_old = i64::from(old);
                }
                Event::Enter { func } | Event::Exit { func } => {
                    put_varint(&mut cols.funcs, u64::from(func));
                }
            }
        }
        if run_len > 0 {
            cols.tags.push(run_tag);
            put_varint(&mut cols.tags, run_len);
        }
        w.write_all(&(block.len() as u32).to_le_bytes())?;
        for col in [
            &cols.tags,
            &cols.objs,
            &cols.pcs,
            &cols.bas,
            &cols.lens,
            &cols.funcs,
            &cols.values,
            &cols.olds,
        ] {
            w.write_all(&(col.len() as u32).to_le_bytes())?;
            w.write_all(col)?;
        }
    }
    Ok(())
}

/// Deserializes a DBPT v2 columnar trace from an in-memory arena (load
/// the whole file with one read, then call this), returning the trace
/// and the embedded meta blob.
///
/// # Errors
///
/// [`TraceCodecError::Malformed`] on bad magic/version, dictionary or
/// column inconsistencies, and any truncation — a valid prefix of a v2
/// file is an error, never a panic.
pub fn read_columnar(bytes: &[u8]) -> Result<(Trace, Vec<u8>), TraceCodecError> {
    let mut cur = Cursor::new(bytes);
    let mut magic = [0u8; 4];
    for b in &mut magic {
        *b = cur.u8()?;
    }
    if &magic != MAGIC {
        return Err(TraceCodecError::Malformed("bad magic".into()));
    }
    let version = cur.u32()?;
    if version != VERSION2 && version != VERSION4 {
        return Err(TraceCodecError::Malformed(format!(
            "unsupported version {version}"
        )));
    }
    let has_values = version == VERSION4;
    let meta_len = cur.u32()? as usize;
    if meta_len > cur.remaining() {
        return Err(truncated("meta blob"));
    }
    let meta = bytes[cur.pos..cur.pos + meta_len].to_vec();
    cur.pos += meta_len;

    let n_events = cur.u64()? as usize;
    // 5 bytes is the smallest event encoding (amortized); reject counts
    // the remaining input cannot possibly hold so corrupt headers can't
    // reserve huge buffers.
    if n_events / 8 > cur.remaining() {
        return Err(truncated("event payload"));
    }
    let dict_len = cur.u32()? as usize;
    if dict_len * 5 > cur.remaining() {
        return Err(truncated("dictionary"));
    }
    let mut dict = Vec::with_capacity(dict_len);
    for _ in 0..dict_len {
        let kind = cur.u8()?;
        let payload = cur.u32()?;
        dict.push(obj_from_key(kind, payload)?);
    }
    let n_blocks = cur.u32()? as usize;
    if n_blocks * 4 > cur.remaining() {
        return Err(truncated("blocks"));
    }

    let mut trace = Trace::with_capacity(n_events);
    for _ in 0..n_blocks {
        let block_events = cur.u32()? as usize;
        if block_events > BLOCK_EVENTS {
            return Err(TraceCodecError::Malformed(format!(
                "block of {block_events} events exceeds the {BLOCK_EVENTS} cap"
            )));
        }
        let mut tags = Cursor::new(cur.segment()?);
        let mut objs = Cursor::new(cur.segment()?);
        let mut pcs = Cursor::new(cur.segment()?);
        let mut bas = Cursor::new(cur.segment()?);
        let mut lens = Cursor::new(cur.segment()?);
        let mut funcs = Cursor::new(cur.segment()?);
        let (mut values, mut olds) = if has_values {
            (Cursor::new(cur.segment()?), Cursor::new(cur.segment()?))
        } else {
            (Cursor::new(&[]), Cursor::new(&[]))
        };
        let mut prev_pc = 0i64;
        let mut prev_ba = 0i64;
        let mut prev_value = 0i64;
        let mut prev_old = 0i64;
        let mut decoded = 0usize;
        while decoded < block_events {
            let tag = tags.u8()?;
            let run = tags.varint()? as usize;
            if run == 0 || run > block_events - decoded {
                return Err(TraceCodecError::Malformed(format!(
                    "tag run of {run} overflows block"
                )));
            }
            // One dispatch per run; the loop body is branch-free on the
            // event shape.
            match tag {
                TAG_INSTALL | TAG_REMOVE => {
                    for _ in 0..run {
                        let id = objs.varint()? as usize;
                        let obj = *dict.get(id).ok_or_else(|| {
                            TraceCodecError::Malformed(format!("dictionary id {id} out of range"))
                        })?;
                        let ba = prev_ba + unzigzag(bas.varint()?);
                        prev_ba = ba;
                        let len = unzigzag(lens.varint()?);
                        let (ba, ea) = addr_pair(ba, len)?;
                        trace.push(if tag == TAG_INSTALL {
                            Event::Install { obj, ba, ea }
                        } else {
                            Event::Remove { obj, ba, ea }
                        });
                    }
                }
                TAG_WRITE => {
                    for _ in 0..run {
                        let pc = prev_pc + unzigzag(pcs.varint()?);
                        prev_pc = pc;
                        let pc = u32::try_from(pc).map_err(|_| {
                            TraceCodecError::Malformed("pc delta out of range".into())
                        })?;
                        let ba = prev_ba + unzigzag(bas.varint()?);
                        prev_ba = ba;
                        let len = unzigzag(lens.varint()?);
                        let (ba, ea) = addr_pair(ba, len)?;
                        let (value, old) = if has_values {
                            let v = prev_value + unzigzag(values.varint()?);
                            prev_value = v;
                            let o = prev_old + unzigzag(olds.varint()?);
                            prev_old = o;
                            (word_value(v)?, word_value(o)?)
                        } else {
                            (0, 0)
                        };
                        trace.push(Event::Write {
                            pc,
                            ba,
                            ea,
                            value,
                            old,
                        });
                    }
                }
                TAG_ENTER | TAG_EXIT => {
                    for _ in 0..run {
                        let func = u16::try_from(funcs.varint()?).map_err(|_| {
                            TraceCodecError::Malformed("function id out of range".into())
                        })?;
                        trace.push(if tag == TAG_ENTER {
                            Event::Enter { func }
                        } else {
                            Event::Exit { func }
                        });
                    }
                }
                t => return Err(TraceCodecError::Malformed(format!("event tag {t}"))),
            }
            decoded += run;
        }
        for (cur, name) in [
            (&tags, "tags"),
            (&objs, "objs"),
            (&pcs, "pcs"),
            (&bas, "bas"),
            (&lens, "lens"),
            (&funcs, "funcs"),
            (&values, "values"),
            (&olds, "olds"),
        ] {
            if cur.remaining() != 0 {
                return Err(TraceCodecError::Malformed(format!(
                    "{name} column has trailing bytes"
                )));
            }
        }
    }
    if trace.len() != n_events {
        return Err(TraceCodecError::Malformed(format!(
            "header promises {n_events} events, blocks hold {}",
            trace.len()
        )));
    }
    if cur.remaining() != 0 {
        return Err(TraceCodecError::Malformed("trailing bytes".into()));
    }
    Ok((trace, meta))
}

fn word_value(v: i64) -> Result<u32, TraceCodecError> {
    u32::try_from(v).map_err(|_| TraceCodecError::Malformed("value delta out of range".into()))
}

fn addr_pair(ba: i64, len: i64) -> Result<(u32, u32), TraceCodecError> {
    let ea = ba.checked_add(len);
    match (u32::try_from(ba), ea.map(u32::try_from)) {
        (Ok(ba), Some(Ok(ea))) => Ok((ba, ea)),
        _ => Err(TraceCodecError::Malformed(
            "address delta out of range".into(),
        )),
    }
}

/// Reads a serialized trace of any binary version from an in-memory
/// arena: row-oriented (v1/v3) or columnar (v2/v4). Row files carry no
/// meta blob, so it comes back empty.
///
/// # Errors
///
/// As [`read_columnar`] / [`crate::read_binary`].
pub fn read_any(bytes: &[u8]) -> Result<(Trace, Vec<u8>), TraceCodecError> {
    if bytes.len() >= 8 && &bytes[..4] == MAGIC {
        let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        if version == VERSION2 || version == VERSION4 {
            return read_columnar(bytes);
        }
    }
    let trace = crate::codec::read_binary(&mut &bytes[..])?;
    Ok((trace, Vec::new()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        Trace::from_events(vec![
            Event::Install {
                obj: ObjectDesc::Global { id: 0 },
                ba: 0x10_0000,
                ea: 0x10_0004,
            },
            Event::Enter { func: 3 },
            Event::Install {
                obj: ObjectDesc::Local { func: 3, var: 1 },
                ba: 0xeffff0,
                ea: 0xeffff4,
            },
            Event::Write {
                pc: 0x1_0010,
                ba: 0xeffff0,
                ea: 0xeffff4,
                value: 0xdead_beef,
                old: 0,
            },
            Event::Write {
                pc: 0x1_0014,
                ba: 0xeffff0,
                ea: 0xeffff1,
                value: 0x7f,
                old: 0xef,
            },
            Event::Install {
                obj: ObjectDesc::Heap { seq: 2 },
                ba: 0x40_0000,
                ea: 0x40_0010,
            },
            Event::Remove {
                obj: ObjectDesc::Heap { seq: 2 },
                ba: 0x40_0000,
                ea: 0x40_0010,
            },
            Event::Remove {
                obj: ObjectDesc::Local { func: 3, var: 1 },
                ba: 0xeffff0,
                ea: 0xeffff4,
            },
            Event::Exit { func: 3 },
            Event::Remove {
                obj: ObjectDesc::Global { id: 0 },
                ba: 0x10_0000,
                ea: 0x10_0004,
            },
        ])
    }

    #[test]
    fn columnar_roundtrip_with_meta() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_columnar(&t, b"workload=tex", &mut buf).unwrap();
        let (back, meta) = read_columnar(&buf).unwrap();
        assert_eq!(t, back);
        assert_eq!(meta, b"workload=tex");
    }

    #[test]
    fn empty_trace_roundtrips() {
        let t = Trace::new();
        let mut buf = Vec::new();
        write_columnar(&t, &[], &mut buf).unwrap();
        let (back, meta) = read_columnar(&buf).unwrap();
        assert_eq!(back, t);
        assert!(meta.is_empty());
    }

    #[test]
    fn multi_block_roundtrip() {
        let mut t = Trace::new();
        for i in 0..(BLOCK_EVENTS as u32 + 100) {
            t.push(Event::Write {
                pc: 0x100 + (i % 7),
                ba: 0x1000 + i * 4,
                ea: 0x1004 + i * 4,
                value: i.wrapping_mul(2654435761),
                old: i % 3,
            });
        }
        let mut buf = Vec::new();
        write_columnar(&t, &[], &mut buf).unwrap();
        let (back, _) = read_columnar(&buf).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        assert!(matches!(
            read_columnar(b"NOPE\x02\0\0\0"),
            Err(TraceCodecError::Malformed(_))
        ));
        let mut buf = Vec::new();
        write_columnar(&sample_trace(), &[], &mut buf).unwrap();
        buf[4] = 9;
        assert!(matches!(
            read_columnar(&buf),
            Err(TraceCodecError::Malformed(_))
        ));
    }

    #[test]
    fn every_truncation_prefix_is_a_clean_error() {
        let mut buf = Vec::new();
        write_columnar(&sample_trace(), b"meta", &mut buf).unwrap();
        for cut in 0..buf.len() {
            assert!(
                read_columnar(&buf[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn legacy_v2_six_column_file_decodes_with_zero_filled_values() {
        // Hand-build a version-2 container: one block, one write event,
        // six columns (no values/olds).
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION2.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes()); // meta_len
        buf.extend_from_slice(&1u64.to_le_bytes()); // n_events
        buf.extend_from_slice(&0u32.to_le_bytes()); // dict_len
        buf.extend_from_slice(&1u32.to_le_bytes()); // n_blocks
        buf.extend_from_slice(&1u32.to_le_bytes()); // block_events
        let mut tags = Vec::new();
        tags.push(TAG_WRITE);
        put_varint(&mut tags, 1);
        let mut pcs = Vec::new();
        put_varint(&mut pcs, zigzag(0x1_0010));
        let mut bas = Vec::new();
        put_varint(&mut bas, zigzag(0x10_0000));
        let mut lens = Vec::new();
        put_varint(&mut lens, zigzag(4));
        for col in [&tags, &Vec::new(), &pcs, &bas, &lens, &Vec::new()] {
            buf.extend_from_slice(&(col.len() as u32).to_le_bytes());
            buf.extend_from_slice(col);
        }
        let (t, meta) = read_columnar(&buf).unwrap();
        assert!(meta.is_empty());
        assert_eq!(
            t.events(),
            &[Event::Write {
                pc: 0x1_0010,
                ba: 0x10_0000,
                ea: 0x10_0004,
                value: 0,
                old: 0,
            }]
        );
        // read_any dispatches legacy columnar files too.
        let (t2, _) = read_any(&buf).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn read_any_dispatches_on_version() {
        let t = sample_trace();
        let mut v1 = Vec::new();
        crate::codec::write_binary(&t, &mut v1).unwrap();
        let mut v2 = Vec::new();
        write_columnar(&t, b"m", &mut v2).unwrap();
        let (t1, m1) = read_any(&v1).unwrap();
        let (t2, m2) = read_any(&v2).unwrap();
        assert_eq!(t1, t);
        assert_eq!(t2, t);
        assert!(m1.is_empty());
        assert_eq!(m2, b"m");
    }

    #[test]
    fn v2_is_smaller_than_v1_on_write_heavy_traces() {
        let mut t = Trace::new();
        for i in 0..10_000u32 {
            t.push(Event::Write {
                pc: 0x200,
                ba: 0x1000 + (i % 64) * 4,
                ea: 0x1004 + (i % 64) * 4,
                value: i % 100,
                old: (i % 100).wrapping_sub(1),
            });
        }
        let mut v1 = Vec::new();
        crate::codec::write_binary(&t, &mut v1).unwrap();
        let mut v2 = Vec::new();
        write_columnar(&t, &[], &mut v2).unwrap();
        assert!(
            v2.len() * 2 < v1.len(),
            "v2 ({}) should be well under half of v1 ({})",
            v2.len(),
            v1.len()
        );
    }
}
