//! The program event trace — phase 1 of the paper's experiment.
//!
//! The paper post-processes each benchmark's assembly so that one run
//! emits a *program event trace* consisting of `InstallMonitorEvent`,
//! `RemoveMonitorEvent`, and `WriteEvent` records (Section 6). The trace
//! is **independent of any particular monitor session**: install/remove
//! events are emitted for *every* program object any session might
//! monitor, and the phase-2 simulator later decides which of them are
//! active.
//!
//! This crate defines:
//!
//! * [`Event`] / [`ObjectDesc`] — the trace record types (we add
//!   `Enter`/`Exit` function-boundary records, which the paper's
//!   `AllHeapInFunc` session type implicitly requires in order to know
//!   the dynamic call context of each allocation);
//! * [`Tracer`] — a [`databp_machine::Hooks`] implementation that emits a
//!   trace from an instrumented run, given per-function frame layouts and
//!   the global table ([`FrameMap`], [`GlobalSpec`]). The tracer is
//!   generic over an [`EventSink`], so the same instrumentation can
//!   materialize a [`Trace`] or stream batches to a concurrent consumer;
//! * the streaming pipeline ([`batch_channel`], [`EventBatch`],
//!   [`StreamSink`]) — a bounded SPSC channel that lets phase 2 replay
//!   events while phase 1 is still generating them;
//! * binary and text codecs ([`write_binary`] / [`read_binary`],
//!   [`write_text`] / [`read_text`]), plus the columnar DBPT v2 format
//!   ([`write_columnar`] / [`read_columnar`] / [`read_any`]) and the
//!   persistent [`TraceStore`] built on it. V2 files optionally carry a
//!   per-block [`ZoneMap`] trailer that [`ColumnarReader`] validates
//!   and the query engine uses to skip blocks; the trailer is fully
//!   backward/forward compatible — old files decode unchanged, and the
//!   full-decode path skips the trailer without reading it.
//!
//! # Examples
//!
//! ```
//! use databp_trace::{Event, ObjectDesc, Trace};
//!
//! let trace = Trace::from_events(vec![
//!     Event::Install { obj: ObjectDesc::Global { id: 0 }, ba: 0x10_0000, ea: 0x10_0004 },
//!     Event::Write { pc: 0x1_0000, ba: 0x10_0000, ea: 0x10_0004, value: 42, old: 0 },
//!     Event::Remove { obj: ObjectDesc::Global { id: 0 }, ba: 0x10_0000, ea: 0x10_0004 },
//! ]);
//! assert_eq!(trace.stats().writes, 1);
//! ```

mod codec;
mod columnar;
mod event;
mod store;
mod stream;
mod tracer;

pub use codec::{read_binary, read_text, write_binary, write_text, TraceCodecError};
pub use columnar::{
    read_any, read_columnar, write_columnar, write_columnar_with, BlockWrites, ColumnarReader,
    RawBlock, WriteCols, WriteOpts, ZoneMap, BLOCK_EVENTS,
};
pub use event::{Event, EventSink, ObjectDesc, Trace, TraceStats};
pub use store::TraceStore;
pub use stream::{batch_channel, BatchReceiver, BatchSender, EventBatch, StreamSink};
pub use tracer::{FrameMap, FrameVar, GlobalSpec, Tracer};
