//! Binary and text codecs for program event traces.
//!
//! The binary format is little-endian with a magic header, suitable for
//! archiving phase-1 output so phase-2 experiments rerun without
//! re-executing the workload. The text format is a line-oriented mirror
//! for inspection and diffing.
//!
//! ```text
//! binary: "DBPT" u32:version u64:count { u8:tag ... }*
//! text:   one record per line, e.g.
//!           I G3 00100000 00100004
//!           W 00010004 00100000 00100004 0000002a 00000000
//!           E 17            (enter)
//!           X 17            (exit)
//! ```
//!
//! Row version 3 extends the `W` record with the written value and the
//! overwritten (old) value; version-1 traces still decode, with both
//! fields zero-filled. Text `W` lines accept the legacy 3-field form the
//! same way.

use crate::event::{Event, ObjectDesc, Trace};
use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"DBPT";
/// Legacy row version: `W` records carry pc/ba/ea only.
const VERSION_V1: u32 = 1;
/// Current row version: `W` records additionally carry value/old.
const VERSION: u32 = 3;

const TAG_INSTALL: u8 = 1;
const TAG_REMOVE: u8 = 2;
const TAG_WRITE: u8 = 3;
const TAG_ENTER: u8 = 4;
const TAG_EXIT: u8 = 5;

const OBJ_GLOBAL: u8 = 1;
const OBJ_LOCAL: u8 = 2;
const OBJ_HEAP: u8 = 3;

/// Errors from reading a serialized trace.
#[derive(Debug)]
pub enum TraceCodecError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Bad magic, version, tag, or malformed text line; the message names
    /// the offending element.
    Malformed(String),
}

impl fmt::Display for TraceCodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceCodecError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceCodecError::Malformed(m) => write!(f, "malformed trace: {m}"),
        }
    }
}

impl Error for TraceCodecError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceCodecError::Io(e) => Some(e),
            TraceCodecError::Malformed(_) => None,
        }
    }
}

impl From<io::Error> for TraceCodecError {
    fn from(e: io::Error) -> Self {
        TraceCodecError::Io(e)
    }
}

fn write_obj(w: &mut impl Write, obj: &ObjectDesc) -> io::Result<()> {
    match *obj {
        ObjectDesc::Global { id } => {
            w.write_all(&[OBJ_GLOBAL])?;
            w.write_all(&id.to_le_bytes())
        }
        ObjectDesc::Local { func, var } => {
            w.write_all(&[OBJ_LOCAL])?;
            w.write_all(&func.to_le_bytes())?;
            w.write_all(&var.to_le_bytes())
        }
        ObjectDesc::Heap { seq } => {
            w.write_all(&[OBJ_HEAP])?;
            w.write_all(&seq.to_le_bytes())
        }
    }
}

fn read_u8(r: &mut impl Read) -> io::Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

fn read_u16(r: &mut impl Read) -> io::Result<u16> {
    let mut b = [0u8; 2];
    r.read_exact(&mut b)?;
    Ok(u16::from_le_bytes(b))
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_obj(r: &mut impl Read) -> Result<ObjectDesc, TraceCodecError> {
    Ok(match read_u8(r)? {
        OBJ_GLOBAL => ObjectDesc::Global { id: read_u32(r)? },
        OBJ_LOCAL => ObjectDesc::Local {
            func: read_u16(r)?,
            var: read_u16(r)?,
        },
        OBJ_HEAP => ObjectDesc::Heap { seq: read_u32(r)? },
        t => return Err(TraceCodecError::Malformed(format!("object tag {t}"))),
    })
}

/// Serializes `trace` in the binary format.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_binary(trace: &Trace, w: &mut impl Write) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(trace.len() as u64).to_le_bytes())?;
    for e in trace.events() {
        match *e {
            Event::Install { obj, ba, ea } => {
                w.write_all(&[TAG_INSTALL])?;
                write_obj(w, &obj)?;
                w.write_all(&ba.to_le_bytes())?;
                w.write_all(&ea.to_le_bytes())?;
            }
            Event::Remove { obj, ba, ea } => {
                w.write_all(&[TAG_REMOVE])?;
                write_obj(w, &obj)?;
                w.write_all(&ba.to_le_bytes())?;
                w.write_all(&ea.to_le_bytes())?;
            }
            Event::Write {
                pc,
                ba,
                ea,
                value,
                old,
            } => {
                w.write_all(&[TAG_WRITE])?;
                w.write_all(&pc.to_le_bytes())?;
                w.write_all(&ba.to_le_bytes())?;
                w.write_all(&ea.to_le_bytes())?;
                w.write_all(&value.to_le_bytes())?;
                w.write_all(&old.to_le_bytes())?;
            }
            Event::Enter { func } => {
                w.write_all(&[TAG_ENTER])?;
                w.write_all(&func.to_le_bytes())?;
            }
            Event::Exit { func } => {
                w.write_all(&[TAG_EXIT])?;
                w.write_all(&func.to_le_bytes())?;
            }
        }
    }
    Ok(())
}

/// Deserializes a binary trace.
///
/// # Errors
///
/// [`TraceCodecError::Malformed`] on bad magic/version/tags;
/// [`TraceCodecError::Io`] on underlying read failure (including
/// truncation).
pub fn read_binary(r: &mut impl Read) -> Result<Trace, TraceCodecError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(TraceCodecError::Malformed("bad magic".into()));
    }
    let version = read_u32(r)?;
    if version != VERSION_V1 && version != VERSION {
        return Err(TraceCodecError::Malformed(format!(
            "unsupported version {version}"
        )));
    }
    let count = read_u64(r)?;
    let mut trace = Trace::new();
    for _ in 0..count {
        let e = match read_u8(r)? {
            TAG_INSTALL => {
                let obj = read_obj(r)?;
                Event::Install {
                    obj,
                    ba: read_u32(r)?,
                    ea: read_u32(r)?,
                }
            }
            TAG_REMOVE => {
                let obj = read_obj(r)?;
                Event::Remove {
                    obj,
                    ba: read_u32(r)?,
                    ea: read_u32(r)?,
                }
            }
            TAG_WRITE => {
                let (pc, ba, ea) = (read_u32(r)?, read_u32(r)?, read_u32(r)?);
                let (value, old) = if version >= VERSION {
                    (read_u32(r)?, read_u32(r)?)
                } else {
                    (0, 0)
                };
                Event::Write {
                    pc,
                    ba,
                    ea,
                    value,
                    old,
                }
            }
            TAG_ENTER => Event::Enter { func: read_u16(r)? },
            TAG_EXIT => Event::Exit { func: read_u16(r)? },
            t => return Err(TraceCodecError::Malformed(format!("event tag {t}"))),
        };
        trace.push(e);
    }
    Ok(trace)
}

/// Serializes `trace` in the line-oriented text format.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_text(trace: &Trace, w: &mut impl Write) -> io::Result<()> {
    for e in trace.events() {
        match *e {
            Event::Install { obj, ba, ea } => writeln!(w, "I {obj} {ba:08x} {ea:08x}")?,
            Event::Remove { obj, ba, ea } => writeln!(w, "R {obj} {ba:08x} {ea:08x}")?,
            Event::Write {
                pc,
                ba,
                ea,
                value,
                old,
            } => writeln!(w, "W {pc:08x} {ba:08x} {ea:08x} {value:08x} {old:08x}")?,
            Event::Enter { func } => writeln!(w, "E {func}")?,
            Event::Exit { func } => writeln!(w, "X {func}")?,
        }
    }
    Ok(())
}

fn parse_obj(s: &str) -> Result<ObjectDesc, TraceCodecError> {
    let bad = || TraceCodecError::Malformed(format!("object descriptor {s:?}"));
    let (kind, rest) = s.split_at(1);
    match kind {
        "G" => Ok(ObjectDesc::Global {
            id: rest.parse().map_err(|_| bad())?,
        }),
        "H" => Ok(ObjectDesc::Heap {
            seq: rest.parse().map_err(|_| bad())?,
        }),
        "L" => {
            let (f, v) = rest.split_once('.').ok_or_else(bad)?;
            Ok(ObjectDesc::Local {
                func: f.parse().map_err(|_| bad())?,
                var: v.parse().map_err(|_| bad())?,
            })
        }
        _ => Err(bad()),
    }
}

fn parse_hex(s: &str) -> Result<u32, TraceCodecError> {
    u32::from_str_radix(s, 16).map_err(|_| TraceCodecError::Malformed(format!("hex field {s:?}")))
}

/// Parses the text format.
///
/// # Errors
///
/// [`TraceCodecError::Malformed`] with the offending line content.
pub fn read_text(input: &str) -> Result<Trace, TraceCodecError> {
    let mut trace = Trace::new();
    for (lineno, line) in input.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let bad = || TraceCodecError::Malformed(format!("line {}: {line:?}", lineno + 1));
        let tag = parts.next().ok_or_else(bad)?;
        let e = match tag {
            "I" | "R" => {
                let obj = parse_obj(parts.next().ok_or_else(bad)?)?;
                let ba = parse_hex(parts.next().ok_or_else(bad)?)?;
                let ea = parse_hex(parts.next().ok_or_else(bad)?)?;
                if tag == "I" {
                    Event::Install { obj, ba, ea }
                } else {
                    Event::Remove { obj, ba, ea }
                }
            }
            "W" => {
                let pc = parse_hex(parts.next().ok_or_else(bad)?)?;
                let ba = parse_hex(parts.next().ok_or_else(bad)?)?;
                let ea = parse_hex(parts.next().ok_or_else(bad)?)?;
                // Legacy 3-field lines zero-fill value/old; current lines
                // carry both.
                let (value, old) = match parts.next() {
                    Some(v) => (parse_hex(v)?, parse_hex(parts.next().ok_or_else(bad)?)?),
                    None => (0, 0),
                };
                Event::Write {
                    pc,
                    ba,
                    ea,
                    value,
                    old,
                }
            }
            "E" => Event::Enter {
                func: parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?,
            },
            "X" => Event::Exit {
                func: parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?,
            },
            _ => return Err(bad()),
        };
        if parts.next().is_some() {
            return Err(bad());
        }
        trace.push(e);
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        Trace::from_events(vec![
            Event::Install {
                obj: ObjectDesc::Global { id: 0 },
                ba: 0x10_0000,
                ea: 0x10_0004,
            },
            Event::Enter { func: 3 },
            Event::Install {
                obj: ObjectDesc::Local { func: 3, var: 1 },
                ba: 0xeffff0,
                ea: 0xeffff4,
            },
            Event::Write {
                pc: 0x1_0010,
                ba: 0xeffff0,
                ea: 0xeffff4,
                value: 42,
                old: 7,
            },
            Event::Install {
                obj: ObjectDesc::Heap { seq: 2 },
                ba: 0x40_0000,
                ea: 0x40_0010,
            },
            Event::Write {
                pc: 0x1_0020,
                ba: 0x40_0008,
                ea: 0x40_0009,
                value: 0xff,
                old: 0,
            },
            Event::Remove {
                obj: ObjectDesc::Heap { seq: 2 },
                ba: 0x40_0000,
                ea: 0x40_0010,
            },
            Event::Remove {
                obj: ObjectDesc::Local { func: 3, var: 1 },
                ba: 0xeffff0,
                ea: 0xeffff4,
            },
            Event::Exit { func: 3 },
            Event::Remove {
                obj: ObjectDesc::Global { id: 0 },
                ba: 0x10_0000,
                ea: 0x10_0004,
            },
        ])
    }

    #[test]
    fn binary_roundtrip() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        let back = read_binary(&mut buf.as_slice()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn text_roundtrip() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_text(&t, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let back = read_text(&text).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn legacy_v1_binary_decodes_with_zero_filled_values() {
        // Hand-build a version-1 stream: one 3-field W record.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION_V1.to_le_bytes());
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.push(TAG_WRITE);
        buf.extend_from_slice(&0x1_0010u32.to_le_bytes());
        buf.extend_from_slice(&0x10_0000u32.to_le_bytes());
        buf.extend_from_slice(&0x10_0004u32.to_le_bytes());
        let t = read_binary(&mut buf.as_slice()).unwrap();
        assert_eq!(
            t.events(),
            &[Event::Write {
                pc: 0x1_0010,
                ba: 0x10_0000,
                ea: 0x10_0004,
                value: 0,
                old: 0,
            }]
        );
    }

    #[test]
    fn legacy_3_field_text_write_lines_decode() {
        let t = read_text("W 00010010 00100000 00100004\n").unwrap();
        assert_eq!(
            t.events(),
            &[Event::Write {
                pc: 0x1_0010,
                ba: 0x10_0000,
                ea: 0x10_0004,
                value: 0,
                old: 0,
            }]
        );
        // 4 fields (value with no old) is malformed.
        assert!(read_text("W 00010010 00100000 00100004 0000002a").is_err());
    }

    #[test]
    fn text_ignores_comments_and_blank_lines() {
        let t = read_text("# comment\n\nE 1\nX 1\n").unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let err = read_binary(&mut &b"NOPE\0\0\0\0"[..]).unwrap_err();
        assert!(matches!(err, TraceCodecError::Malformed(_)));
    }

    #[test]
    fn binary_rejects_truncation() {
        let mut buf = Vec::new();
        write_binary(&sample_trace(), &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(matches!(
            read_binary(&mut buf.as_slice()),
            Err(TraceCodecError::Io(_))
        ));
    }

    #[test]
    fn text_rejects_garbage() {
        assert!(read_text("Q 1 2 3").is_err());
        assert!(read_text("W zz 0 0").is_err());
        assert!(read_text("I G1 0 0 extra").is_err());
        assert!(read_text("I Z1 0 0").is_err());
        assert!(read_text("L no-dot").is_err());
    }

    #[test]
    fn empty_trace_roundtrips() {
        let t = Trace::new();
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        assert_eq!(read_binary(&mut buf.as_slice()).unwrap(), t);
        let mut tb = Vec::new();
        write_text(&t, &mut tb).unwrap();
        assert_eq!(read_text(std::str::from_utf8(&tb).unwrap()).unwrap(), t);
    }

    #[test]
    fn error_display_is_informative() {
        let e = TraceCodecError::Malformed("line 3".into());
        assert!(e.to_string().contains("line 3"));
    }
}
