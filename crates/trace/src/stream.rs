//! The streaming trace pipeline: fixed-size event batches over a bounded
//! SPSC channel.
//!
//! Phase 1 (the traced machine run) and phase 2 (the replay engine) used
//! to be strictly sequential, with the full event `Vec` materialized in
//! between. This module lets them overlap: the tracer's [`StreamSink`]
//! packs events into [`EventBatch`]es and sends them through the bounded
//! channel created by [`batch_channel`], while the consumer replays each
//! batch as it arrives. Drained batches are recycled through a free list,
//! so the steady state allocates nothing.
//!
//! The channel is deliberately minimal — one producer, one consumer, a
//! `Mutex` + two `Condvar`s — because the workspace vendors no
//! concurrency crates. Batching keeps the lock out of the hot path: at
//! the default batch size the producer takes the lock once per few
//! thousand events.
//!
//! Telemetry (all under `pipeline.*`): `pipeline.batches` and
//! `pipeline.events.streamed` count traffic, the
//! `pipeline.channel.depth` histogram samples queue depth at each send,
//! and `pipeline.backpressure.producer_waits` /
//! `pipeline.backpressure.consumer_waits` count blocking waits on either
//! side.

use crate::event::{Event, EventSink, Trace};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// A fixed-capacity run of consecutive trace events.
#[derive(Debug, Default)]
pub struct EventBatch {
    events: Vec<Event>,
}

impl EventBatch {
    /// The batched events, in program order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of events in the batch.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the batch holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[derive(Debug, Default)]
struct Shared {
    queue: VecDeque<EventBatch>,
    /// Drained batches returned by the consumer, reused by the producer.
    free: Vec<EventBatch>,
    tx_closed: bool,
    rx_closed: bool,
}

#[derive(Debug)]
struct Chan {
    shared: Mutex<Shared>,
    /// Signaled when queue space frees up (or the receiver goes away).
    can_send: Condvar,
    /// Signaled when a batch arrives (or the sender goes away).
    can_recv: Condvar,
    depth: usize,
}

impl Chan {
    /// Locks the shared state, shrugging off poisoning: the flags and
    /// queue stay consistent under every early `return`/panic path, and
    /// the `Drop` impls must not double-panic while unwinding.
    fn lock(&self) -> MutexGuard<'_, Shared> {
        match self.shared.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Creates a bounded SPSC channel holding at most `depth` in-flight
/// batches. The producer blocks when the queue is full (backpressure),
/// the consumer blocks when it is empty.
///
/// # Panics
///
/// Panics if `depth` is zero.
pub fn batch_channel(depth: usize) -> (BatchSender, BatchReceiver) {
    assert!(depth > 0, "batch channel depth must be nonzero");
    let ch = Arc::new(Chan {
        shared: Mutex::new(Shared::default()),
        can_send: Condvar::new(),
        can_recv: Condvar::new(),
        depth,
    });
    (
        BatchSender {
            ch: Arc::clone(&ch),
        },
        BatchReceiver { ch },
    )
}

/// The producing end of a [`batch_channel`]. Dropping it closes the
/// channel: the receiver drains what is queued, then sees end-of-stream.
#[derive(Debug)]
pub struct BatchSender {
    ch: Arc<Chan>,
}

impl BatchSender {
    /// A recycled batch if the consumer returned one, otherwise a fresh
    /// empty batch.
    pub fn take_spare(&self) -> EventBatch {
        let mut sh = self.ch.lock();
        sh.free.pop().unwrap_or_default()
    }

    /// Queues `batch`, blocking while the channel is full.
    ///
    /// # Panics
    ///
    /// Panics if the receiver has been dropped — the stream has lost its
    /// consumer and the trace would silently vanish.
    pub fn send(&self, batch: EventBatch) {
        databp_telemetry::count!("pipeline.batches");
        databp_telemetry::count!("pipeline.events.streamed", batch.events.len() as u64);
        let mut sh = self.ch.lock();
        while sh.queue.len() >= self.ch.depth && !sh.rx_closed {
            databp_telemetry::count!("pipeline.backpressure.producer_waits");
            sh = self.ch.can_send.wait(sh).unwrap_or_else(|p| p.into_inner());
        }
        assert!(!sh.rx_closed, "streaming consumer dropped mid-trace");
        sh.queue.push_back(batch);
        databp_telemetry::observe!(
            "pipeline.channel.depth",
            &[1, 2, 4, 8, 16, 32, 64],
            sh.queue.len() as u64
        );
        drop(sh);
        self.ch.can_recv.notify_one();
    }
}

impl Drop for BatchSender {
    fn drop(&mut self) {
        let mut sh = self.ch.lock();
        sh.tx_closed = true;
        drop(sh);
        self.ch.can_recv.notify_one();
    }
}

/// The consuming end of a [`batch_channel`].
#[derive(Debug)]
pub struct BatchReceiver {
    ch: Arc<Chan>,
}

impl BatchReceiver {
    /// The next batch, blocking until one arrives. `None` once the
    /// sender is gone and the queue is drained — end of stream.
    pub fn recv(&self) -> Option<EventBatch> {
        let mut sh = self.ch.lock();
        loop {
            if let Some(batch) = sh.queue.pop_front() {
                drop(sh);
                self.ch.can_send.notify_one();
                return Some(batch);
            }
            if sh.tx_closed {
                return None;
            }
            databp_telemetry::count!("pipeline.backpressure.consumer_waits");
            sh = self.ch.can_recv.wait(sh).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Returns a drained batch to the free list so the producer can
    /// refill it without allocating.
    pub fn recycle(&self, mut batch: EventBatch) {
        batch.events.clear();
        let mut sh = self.ch.lock();
        sh.free.push(batch);
    }
}

impl Drop for BatchReceiver {
    fn drop(&mut self) {
        let mut sh = self.ch.lock();
        sh.rx_closed = true;
        drop(sh);
        self.ch.can_send.notify_one();
    }
}

/// An [`EventSink`] that streams events into a [`batch_channel`] in
/// fixed-size batches, optionally teeing a materialized [`Trace`] copy
/// for consumers that still need the full event list afterwards (e.g.
/// the static-elision soundness check).
#[derive(Debug)]
pub struct StreamSink {
    tx: BatchSender,
    batch: EventBatch,
    capacity: usize,
    tee: Option<Trace>,
}

impl StreamSink {
    /// A sink sending batches of up to `capacity` events through `tx`;
    /// with `tee`, a full [`Trace`] copy is kept and returned by
    /// [`StreamSink::close`].
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(tx: BatchSender, capacity: usize, tee: bool) -> Self {
        assert!(capacity > 0, "stream batch capacity must be nonzero");
        StreamSink {
            batch: tx.take_spare(),
            tx,
            capacity,
            tee: tee.then(Trace::new),
        }
    }

    /// Flushes the tail batch and closes the channel (the sender drops
    /// here), returning the teed trace if one was requested.
    pub fn close(mut self) -> Option<Trace> {
        if !self.batch.is_empty() {
            let batch = std::mem::take(&mut self.batch);
            self.tx.send(batch);
        }
        self.tee.take()
    }
}

impl EventSink for StreamSink {
    fn emit(&mut self, ev: Event) {
        if let Some(t) = &mut self.tee {
            t.push(ev);
        }
        self.batch.events.push(ev);
        if self.batch.len() == self.capacity {
            let full = std::mem::replace(&mut self.batch, self.tx.take_spare());
            self.tx.send(full);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ObjectDesc;

    fn w(ba: u32) -> Event {
        Event::Write {
            pc: 0,
            ba,
            ea: ba + 4,
            value: 0,
            old: 0,
        }
    }

    #[test]
    fn batches_arrive_in_order_and_end_of_stream_after_close() {
        let (tx, rx) = batch_channel(2);
        let mut sink = StreamSink::new(tx, 3, false);
        let events: Vec<Event> = (0..8).map(|i| w(i * 4)).collect();
        let consumer = std::thread::spawn(move || {
            let mut got = Vec::new();
            while let Some(b) = rx.recv() {
                got.extend_from_slice(b.events());
                rx.recycle(b);
            }
            got
        });
        for &ev in &events {
            sink.emit(ev);
        }
        assert_eq!(sink.close(), None);
        assert_eq!(consumer.join().unwrap(), events);
    }

    #[test]
    fn tee_keeps_a_full_trace_copy() {
        let (tx, rx) = batch_channel(4);
        let mut sink = StreamSink::new(tx, 2, true);
        let events = vec![
            Event::Install {
                obj: ObjectDesc::Global { id: 0 },
                ba: 0,
                ea: 4,
            },
            w(0),
            w(4),
        ];
        let consumer = std::thread::spawn(move || {
            let mut n = 0;
            while let Some(b) = rx.recv() {
                n += b.len();
                rx.recycle(b);
            }
            n
        });
        for &ev in &events {
            sink.emit(ev);
        }
        let tee = sink.close().expect("tee requested");
        assert_eq!(tee.events(), events.as_slice());
        assert_eq!(consumer.join().unwrap(), events.len());
    }

    #[test]
    fn backpressure_blocks_producer_until_consumer_drains() {
        // Depth-1 channel, slow consumer: every batch must still arrive.
        let (tx, rx) = batch_channel(1);
        let mut sink = StreamSink::new(tx, 1, false);
        let consumer = std::thread::spawn(move || {
            let mut got = Vec::new();
            while let Some(b) = rx.recv() {
                std::thread::sleep(std::time::Duration::from_millis(1));
                got.extend_from_slice(b.events());
                rx.recycle(b);
            }
            got
        });
        let events: Vec<Event> = (0..16).map(|i| w(i * 4)).collect();
        for &ev in &events {
            sink.emit(ev);
        }
        sink.close();
        assert_eq!(consumer.join().unwrap(), events);
    }

    #[test]
    fn recycled_batches_are_reused() {
        let (tx, rx) = batch_channel(2);
        let b = tx.take_spare();
        tx.send(b);
        let b = rx.recv().unwrap();
        rx.recycle(b);
        let spare = tx.take_spare();
        assert!(spare.is_empty(), "recycled batch comes back cleared");
    }

    #[test]
    #[should_panic(expected = "consumer dropped")]
    fn send_after_receiver_drop_panics() {
        let (tx, rx) = batch_channel(1);
        drop(rx);
        tx.send(EventBatch::default());
    }

    #[test]
    fn dropping_sender_without_sending_ends_stream() {
        let (tx, rx) = batch_channel(1);
        drop(tx);
        assert!(rx.recv().is_none());
    }
}
