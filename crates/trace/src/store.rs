//! The persistent trace store: a directory of DBPT v2 columnar files,
//! keyed by 64-bit workload hash.
//!
//! The replay service's in-memory `TraceCache` holds traces for the
//! lifetime of one process; the store is what makes them survive
//! restarts. Each entry is one `<key:016x>.dbpt` file written
//! atomically (temp file + rename), carrying the trace plus an opaque
//! meta blob the server uses for provenance (workload identity, base
//! run cost). Loads read the whole file into an arena with one `read`
//! and decode columns out of it.
//!
//! Telemetry: `trace.store.saves`, `trace.store.loads`,
//! `trace.store.bytes_written`, `trace.store.bytes_read`.

use crate::codec::TraceCodecError;
use crate::columnar::{read_columnar, write_columnar};
use crate::event::Trace;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// A directory of persisted traces, one DBPT v2 file per 64-bit key.
#[derive(Debug, Clone)]
pub struct TraceStore {
    dir: PathBuf,
}

impl TraceStore {
    /// Opens (creating if needed) the store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// I/O errors creating the directory.
    pub fn open(dir: impl Into<PathBuf>) -> Result<TraceStore, TraceCodecError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(TraceStore { dir })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.dbpt"))
    }

    /// Persists `trace` (plus the caller's opaque `meta` blob) under
    /// `key`, replacing any previous entry atomically. Returns the
    /// serialized size in bytes.
    ///
    /// # Errors
    ///
    /// I/O errors writing or renaming the file.
    pub fn save(&self, key: u64, trace: &Trace, meta: &[u8]) -> Result<u64, TraceCodecError> {
        let mut buf = Vec::new();
        write_columnar(trace, meta, &mut buf)?;
        let tmp = self.dir.join(format!(".{key:016x}.dbpt.tmp"));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&buf)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, self.path_for(key))?;
        databp_telemetry::count!("trace.store.saves");
        databp_telemetry::count!("trace.store.bytes_written", buf.len() as u64);
        Ok(buf.len() as u64)
    }

    /// Loads the entry under `key`, or `None` if the store has no such
    /// file.
    ///
    /// # Errors
    ///
    /// I/O errors reading, or [`TraceCodecError::Malformed`] if the file
    /// exists but does not decode (a truncated or corrupted store entry
    /// is reported, never trusted).
    pub fn load(&self, key: u64) -> Result<Option<(Trace, Vec<u8>)>, TraceCodecError> {
        let bytes = match fs::read(self.path_for(key)) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let n = bytes.len() as u64;
        let out = read_columnar(&bytes)?;
        databp_telemetry::count!("trace.store.loads");
        databp_telemetry::count!("trace.store.bytes_read", n);
        Ok(Some(out))
    }

    /// Keys of every entry currently on disk (unordered).
    ///
    /// # Errors
    ///
    /// I/O errors listing the directory.
    pub fn keys(&self) -> Result<Vec<u64>, TraceCodecError> {
        let mut keys = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(hex) = name.strip_suffix(".dbpt") {
                if let Ok(key) = u64::from_str_radix(hex, 16) {
                    keys.push(key);
                }
            }
        }
        Ok(keys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, ObjectDesc};

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("databp-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn small_trace() -> Trace {
        Trace::from_events(vec![
            Event::Install {
                obj: ObjectDesc::Global { id: 1 },
                ba: 0x1000,
                ea: 0x1010,
            },
            Event::Write {
                pc: 0x40,
                ba: 0x1000,
                ea: 0x1004,
                value: 9,
                old: 3,
            },
            Event::Remove {
                obj: ObjectDesc::Global { id: 1 },
                ba: 0x1000,
                ea: 0x1010,
            },
        ])
    }

    #[test]
    fn save_load_roundtrip_and_keys() {
        let dir = tmpdir("roundtrip");
        let store = TraceStore::open(&dir).unwrap();
        let t = small_trace();
        let bytes = store.save(0xabcd, &t, b"meta!").unwrap();
        assert!(bytes > 0);
        let (back, meta) = store.load(0xabcd).unwrap().expect("entry exists");
        assert_eq!(back, t);
        assert_eq!(meta, b"meta!");
        assert_eq!(store.keys().unwrap(), vec![0xabcd]);
        assert!(store.load(0x1234).unwrap().is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_replaces_existing_entry() {
        let dir = tmpdir("replace");
        let store = TraceStore::open(&dir).unwrap();
        store.save(7, &small_trace(), b"old").unwrap();
        store.save(7, &Trace::new(), b"new").unwrap();
        let (back, meta) = store.load(7).unwrap().expect("entry exists");
        assert!(back.is_empty());
        assert_eq!(meta, b"new");
        assert_eq!(store.keys().unwrap().len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_entry_is_an_error_not_a_panic() {
        let dir = tmpdir("corrupt");
        let store = TraceStore::open(&dir).unwrap();
        store.save(9, &small_trace(), &[]).unwrap();
        let path = store.dir().join(format!("{:016x}.dbpt", 9));
        let mut bytes = fs::read(&path).unwrap();
        // Cut inside the block section (not at the zone-map trailer
        // boundary, the one prefix of a trailered file that decodes).
        bytes.truncate(20);
        fs::write(&path, &bytes).unwrap();
        assert!(store.load(9).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }
}
