//! Property tests for the DBPT v2 columnar codec: arbitrary traces
//! round-trip exactly, and no truncation or byte corruption of a valid
//! file can panic the decoder — a damaged input is a clean
//! `TraceCodecError` (or, for bit flips that happen to stay
//! self-consistent, a successfully decoded trace), never a crash.

use databp_trace::{read_any, read_columnar, write_columnar, Event, ObjectDesc, Trace};
use proptest::prelude::*;

fn arb_event() -> impl Strategy<Value = Event> {
    let obj = prop_oneof![
        (0u32..50).prop_map(|id| ObjectDesc::Global { id }),
        (0u16..20, 0u16..10).prop_map(|(func, var)| ObjectDesc::Local { func, var }),
        (0u32..100).prop_map(|seq| ObjectDesc::Heap { seq }),
    ];
    prop_oneof![
        (obj.clone(), any::<u32>(), 0u32..256).prop_map(|(obj, ba, len)| Event::Install {
            obj,
            ba,
            ea: ba.saturating_add(len)
        }),
        (obj, any::<u32>(), 0u32..256).prop_map(|(obj, ba, len)| Event::Remove {
            obj,
            ba,
            ea: ba.saturating_add(len)
        }),
        (
            any::<u32>(),
            any::<u32>(),
            0u32..16,
            any::<u32>(),
            any::<u32>()
        )
            .prop_map(|(pc, ba, len, value, old)| Event::Write {
                pc,
                ba,
                ea: ba.saturating_add(len),
                value,
                old
            }),
        (0u16..64).prop_map(|func| Event::Enter { func }),
        (0u16..64).prop_map(|func| Event::Exit { func }),
    ]
}

fn arb_trace() -> impl Strategy<Value = Trace> {
    prop::collection::vec(arb_event(), 0..400).prop_map(Trace::from_events)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary event sequences (including degenerate zero-length
    /// ranges and full-range addresses) round-trip exactly, with the
    /// meta blob intact.
    #[test]
    fn roundtrip_exact(trace in arb_trace(), meta in prop::collection::vec(any::<u8>(), 0..64)) {
        let mut buf = Vec::new();
        write_columnar(&trace, &meta, &mut buf).unwrap();
        let (back, back_meta) = read_columnar(&buf).unwrap();
        prop_assert_eq!(back, trace);
        prop_assert_eq!(back_meta, meta);
    }

    /// Every proper prefix of a valid file is a decode error — the
    /// decoder must detect truncation, not invent events or panic.
    #[test]
    fn truncation_is_a_clean_error(trace in arb_trace(), frac in 0.0f64..1.0) {
        let mut buf = Vec::new();
        write_columnar(&trace, b"m", &mut buf).unwrap();
        let cut = ((buf.len() as f64) * frac) as usize;
        prop_assert!(cut < buf.len());
        prop_assert!(read_columnar(&buf[..cut]).is_err());
    }

    /// Flipping arbitrary bytes never panics: the decoder either
    /// reports corruption or (if the flip keeps the file
    /// self-consistent, e.g. inside the meta blob) decodes something.
    #[test]
    fn corruption_never_panics(
        trace in arb_trace(),
        flips in prop::collection::vec((any::<u32>(), any::<u8>()), 1..8),
    ) {
        let mut buf = Vec::new();
        write_columnar(&trace, b"meta-blob", &mut buf).unwrap();
        for (idx, val) in flips {
            let i = idx as usize % buf.len();
            buf[i] ^= val;
        }
        let _ = read_columnar(&buf);
        let _ = read_any(&buf);
    }
}
