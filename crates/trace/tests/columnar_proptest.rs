//! Property tests for the DBPT v2 columnar codec: arbitrary traces
//! round-trip exactly, and no truncation or byte corruption of a valid
//! file can panic the decoder — a damaged input is a clean
//! `TraceCodecError` (or, for bit flips that happen to stay
//! self-consistent, a successfully decoded trace), never a crash.
//!
//! The zone-map trailer carries its own obligations: the per-block
//! summaries must match a brute-force recomputation from the decoded
//! events (soundness of every refutation the query planner derives
//! from them), a trailered file must be a strict byte-prefix extension
//! of the trailer-less encoding (old readers see the same bytes), and
//! any corruption of the trailer must degrade the lazy reader to
//! "no zones" while leaving the decoded trace intact.

use databp_trace::{
    read_any, read_columnar, write_columnar, write_columnar_with, ColumnarReader, Event,
    ObjectDesc, Trace, WriteOpts,
};
use proptest::prelude::*;

fn arb_event() -> impl Strategy<Value = Event> {
    let obj = prop_oneof![
        (0u32..50).prop_map(|id| ObjectDesc::Global { id }),
        (0u16..20, 0u16..10).prop_map(|(func, var)| ObjectDesc::Local { func, var }),
        (0u32..100).prop_map(|seq| ObjectDesc::Heap { seq }),
    ];
    prop_oneof![
        (obj.clone(), any::<u32>(), 0u32..256).prop_map(|(obj, ba, len)| Event::Install {
            obj,
            ba,
            ea: ba.saturating_add(len)
        }),
        (obj, any::<u32>(), 0u32..256).prop_map(|(obj, ba, len)| Event::Remove {
            obj,
            ba,
            ea: ba.saturating_add(len)
        }),
        (
            any::<u32>(),
            any::<u32>(),
            0u32..16,
            any::<u32>(),
            any::<u32>()
        )
            .prop_map(|(pc, ba, len, value, old)| Event::Write {
                pc,
                ba,
                ea: ba.saturating_add(len),
                value,
                old
            }),
        (0u16..64).prop_map(|func| Event::Enter { func }),
        (0u16..64).prop_map(|func| Event::Exit { func }),
    ]
}

fn arb_trace() -> impl Strategy<Value = Trace> {
    prop::collection::vec(arb_event(), 0..400).prop_map(Trace::from_events)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary event sequences (including degenerate zero-length
    /// ranges and full-range addresses) round-trip exactly, with the
    /// meta blob intact.
    #[test]
    fn roundtrip_exact(trace in arb_trace(), meta in prop::collection::vec(any::<u8>(), 0..64)) {
        let mut buf = Vec::new();
        write_columnar(&trace, &meta, &mut buf).unwrap();
        let (back, back_meta) = read_columnar(&buf).unwrap();
        prop_assert_eq!(back, trace);
        prop_assert_eq!(back_meta, meta);
    }

    /// Every proper prefix of a valid trailer-less file is a decode
    /// error — the decoder must detect truncation, not invent events or
    /// panic. (Trailered files have exactly one benign cut — the
    /// trailer boundary — covered by the dedicated property below.)
    #[test]
    fn truncation_is_a_clean_error(trace in arb_trace(), frac in 0.0f64..1.0) {
        let mut buf = Vec::new();
        write_columnar_with(&trace, b"m", &mut buf, WriteOpts { zone_maps: false, ..WriteOpts::default() }).unwrap();
        let cut = ((buf.len() as f64) * frac) as usize;
        prop_assert!(cut < buf.len());
        prop_assert!(read_columnar(&buf[..cut]).is_err());
    }

    /// Truncating a *trailered* file never yields a wrong trace: every
    /// cut either errors or (only at the exact trailer boundary)
    /// decodes to the full original.
    #[test]
    fn trailered_truncation_never_wrong(trace in arb_trace(), frac in 0.0f64..1.0) {
        let mut buf = Vec::new();
        write_columnar(&trace, b"m", &mut buf).unwrap();
        let cut = ((buf.len() as f64) * frac) as usize;
        match read_columnar(&buf[..cut]) {
            Err(_) => {}
            Ok((back, meta)) => {
                prop_assert_eq!(back, trace);
                prop_assert_eq!(meta, b"m".to_vec());
            }
        }
    }

    /// A trailered file is the trailer-less encoding plus a suffix —
    /// byte-for-byte — so a reader that ignores trailing sections (the
    /// old on-disk consumer contract) sees unchanged bytes.
    #[test]
    fn trailer_is_a_strict_suffix(trace in arb_trace(), block_events in 1usize..128) {
        let mut plain = Vec::new();
        write_columnar_with(&trace, b"m", &mut plain, WriteOpts { block_events, zone_maps: false }).unwrap();
        let mut full = Vec::new();
        write_columnar_with(&trace, b"m", &mut full, WriteOpts { block_events, zone_maps: true }).unwrap();
        prop_assert!(full.len() > plain.len());
        prop_assert_eq!(&full[..plain.len()], &plain[..]);
    }

    /// Zone maps agree with a brute-force recomputation over the
    /// decoded events, block by block — every bound the query planner
    /// refutes with is genuinely conservative.
    #[test]
    fn zone_maps_match_brute_force(trace in arb_trace(), block_events in 1usize..128) {
        let mut buf = Vec::new();
        write_columnar_with(&trace, b"", &mut buf, WriteOpts { block_events, zone_maps: true }).unwrap();
        let reader = ColumnarReader::open(&buf).unwrap();
        let zones = reader.zones().expect("freshly written trailer validates");
        prop_assert_eq!(zones.len(), reader.blocks().len());
        for (zone, chunk) in zones.iter().zip(trace.events().chunks(block_events.max(1))) {
            let mut writes = 0u32;
            for ev in chunk {
                let Event::Write { pc, ba, value, old, .. } = *ev else { continue };
                writes += 1;
                let (plo, phi) = zone.write_pc_range().expect("block has a write");
                prop_assert!(plo <= pc && pc <= phi);
                let (vlo, vhi) = zone.write_value_range().expect("block has a write");
                prop_assert!(vlo <= value && value <= vhi);
                let (olo, ohi) = zone.write_old_range().expect("block has a write");
                prop_assert!(olo <= old && old <= ohi);
                prop_assert!(zone.ba_min <= ba && ba <= zone.ba_max);
                // The occupancy filter may over-approximate but never
                // deny a pc that is present.
                prop_assert!(zone.any_write_pc_in(pc, pc));
            }
            prop_assert_eq!(zone.writes, writes);
            prop_assert_eq!(u64::from(zone.events), chunk.len() as u64);
            let tag_sum = zone.installs + zone.removes + zone.writes + zone.enters + zone.exits;
            prop_assert_eq!(tag_sum, zone.events);
        }
    }

    /// Any single-byte corruption of the trailer leaves the decoded
    /// trace intact; the lazy reader either keeps a checksum-valid
    /// trailer or reports no zones — never a malformed one.
    #[test]
    fn trailer_corruption_degrades_to_no_zones(
        trace in arb_trace(),
        at in any::<u16>(),
        flip in any::<u8>(),
    ) {
        let mut plain = Vec::new();
        write_columnar_with(&trace, b"m", &mut plain, WriteOpts { zone_maps: false, ..WriteOpts::default() }).unwrap();
        let mut buf = Vec::new();
        write_columnar(&trace, b"m", &mut buf).unwrap();
        let trailer_len = buf.len() - plain.len();
        prop_assert!(trailer_len > 0);
        let at = buf.len() - 1 - (usize::from(at) % trailer_len);
        buf[at] ^= flip | 1;
        if let Ok(reader) = ColumnarReader::open(&buf) {
            let mut back = Trace::new();
            for i in 0..reader.blocks().len() {
                reader.decode_block_into(i, &mut back).unwrap();
            }
            prop_assert_eq!(back, trace);
        }
    }

    /// Flipping arbitrary bytes never panics: the decoder either
    /// reports corruption or (if the flip keeps the file
    /// self-consistent, e.g. inside the meta blob) decodes something.
    #[test]
    fn corruption_never_panics(
        trace in arb_trace(),
        flips in prop::collection::vec((any::<u32>(), any::<u8>()), 1..8),
    ) {
        let mut buf = Vec::new();
        write_columnar(&trace, b"meta-blob", &mut buf).unwrap();
        for (idx, val) in flips {
            let i = idx as usize % buf.len();
            buf[i] ^= val;
        }
        let _ = read_columnar(&buf);
        let _ = read_any(&buf);
    }
}
