//! Property tests: arbitrary traces survive both codecs unchanged.

use databp_trace::{read_binary, read_text, write_binary, write_text, Event, ObjectDesc, Trace};
use proptest::prelude::*;

fn any_obj() -> impl Strategy<Value = ObjectDesc> {
    prop_oneof![
        any::<u32>().prop_map(|id| ObjectDesc::Global { id }),
        (any::<u16>(), any::<u16>()).prop_map(|(func, var)| ObjectDesc::Local { func, var }),
        any::<u32>().prop_map(|seq| ObjectDesc::Heap { seq }),
    ]
}

fn any_event() -> impl Strategy<Value = Event> {
    prop_oneof![
        (any_obj(), any::<u32>(), any::<u32>()).prop_map(|(obj, ba, ea)| Event::Install {
            obj,
            ba,
            ea
        }),
        (any_obj(), any::<u32>(), any::<u32>()).prop_map(|(obj, ba, ea)| Event::Remove {
            obj,
            ba,
            ea
        }),
        (
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>()
        )
            .prop_map(|(pc, ba, ea, value, old)| Event::Write {
                pc,
                ba,
                ea,
                value,
                old
            }),
        any::<u16>().prop_map(|func| Event::Enter { func }),
        any::<u16>().prop_map(|func| Event::Exit { func }),
    ]
}

proptest! {
    #[test]
    fn binary_roundtrip(events in prop::collection::vec(any_event(), 0..300)) {
        let t = Trace::from_events(events);
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        prop_assert_eq!(read_binary(&mut buf.as_slice()).unwrap(), t);
    }

    #[test]
    fn text_roundtrip(events in prop::collection::vec(any_event(), 0..300)) {
        let t = Trace::from_events(events);
        let mut buf = Vec::new();
        write_text(&t, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        prop_assert_eq!(read_text(&text).unwrap(), t);
    }

    #[test]
    fn stats_writes_equal_write_events(events in prop::collection::vec(any_event(), 0..300)) {
        let t = Trace::from_events(events);
        let n = t.events().iter().filter(|e| e.is_write()).count() as u64;
        prop_assert_eq!(t.stats().writes, n);
    }
}
