//! Property tests for the `spar` ISA encoding and core machine behaviour.

use databp_machine::{decode, encode, Instr, MarkKind, Reg};
use proptest::prelude::*;

fn any_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::new)
}

fn any_instr() -> impl Strategy<Value = Instr> {
    let r = any_reg;
    prop_oneof![
        (r(), r(), r()).prop_map(|(a, b, c)| Instr::Add(a, b, c)),
        (r(), r(), r()).prop_map(|(a, b, c)| Instr::Sub(a, b, c)),
        (r(), r(), r()).prop_map(|(a, b, c)| Instr::Mul(a, b, c)),
        (r(), r(), r()).prop_map(|(a, b, c)| Instr::Div(a, b, c)),
        (r(), r(), r()).prop_map(|(a, b, c)| Instr::Rem(a, b, c)),
        (r(), r(), r()).prop_map(|(a, b, c)| Instr::And(a, b, c)),
        (r(), r(), r()).prop_map(|(a, b, c)| Instr::Or(a, b, c)),
        (r(), r(), r()).prop_map(|(a, b, c)| Instr::Xor(a, b, c)),
        (r(), r(), r()).prop_map(|(a, b, c)| Instr::Sll(a, b, c)),
        (r(), r(), r()).prop_map(|(a, b, c)| Instr::Srl(a, b, c)),
        (r(), r(), r()).prop_map(|(a, b, c)| Instr::Sra(a, b, c)),
        (r(), r(), r()).prop_map(|(a, b, c)| Instr::Slt(a, b, c)),
        (r(), r(), r()).prop_map(|(a, b, c)| Instr::Sltu(a, b, c)),
        (r(), r(), any::<i16>()).prop_map(|(a, b, i)| Instr::Addi(a, b, i)),
        (r(), r(), any::<u16>()).prop_map(|(a, b, i)| Instr::Andi(a, b, i)),
        (r(), r(), any::<u16>()).prop_map(|(a, b, i)| Instr::Ori(a, b, i)),
        (r(), r(), any::<u16>()).prop_map(|(a, b, i)| Instr::Xori(a, b, i)),
        (r(), r(), any::<i16>()).prop_map(|(a, b, i)| Instr::Slti(a, b, i)),
        (r(), any::<u16>()).prop_map(|(a, i)| Instr::Lui(a, i)),
        (r(), r(), 0u8..32).prop_map(|(a, b, s)| Instr::Slli(a, b, s)),
        (r(), r(), 0u8..32).prop_map(|(a, b, s)| Instr::Srli(a, b, s)),
        (r(), r(), 0u8..32).prop_map(|(a, b, s)| Instr::Srai(a, b, s)),
        (r(), r(), any::<i16>()).prop_map(|(a, b, i)| Instr::Lw(a, b, i)),
        (r(), r(), any::<i16>()).prop_map(|(a, b, i)| Instr::Lb(a, b, i)),
        (r(), r(), any::<i16>()).prop_map(|(a, b, i)| Instr::Lbu(a, b, i)),
        (r(), r(), any::<i16>()).prop_map(|(a, b, i)| Instr::Sw(a, b, i)),
        (r(), r(), any::<i16>()).prop_map(|(a, b, i)| Instr::Sb(a, b, i)),
        (r(), r(), any::<i16>()).prop_map(|(a, b, i)| Instr::Beq(a, b, i)),
        (r(), r(), any::<i16>()).prop_map(|(a, b, i)| Instr::Bne(a, b, i)),
        (r(), r(), any::<i16>()).prop_map(|(a, b, i)| Instr::Blt(a, b, i)),
        (r(), r(), any::<i16>()).prop_map(|(a, b, i)| Instr::Bge(a, b, i)),
        (0u32..(1 << 26)).prop_map(Instr::Jal),
        (r(), r(), any::<i16>()).prop_map(|(a, b, i)| Instr::Jalr(a, b, i)),
        any::<u16>().prop_map(Instr::Trap),
        Just(Instr::Halt),
        Just(Instr::Nop),
        any::<u16>().prop_map(|f| Instr::Mark(MarkKind::Enter, f)),
        any::<u16>().prop_map(|f| Instr::Mark(MarkKind::Exit, f)),
        (r(), any::<i16>(), prop_oneof![Just(1u8), Just(4u8)])
            .prop_map(|(b, i, l)| Instr::Chk(b, i, l)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2000))]

    #[test]
    fn encode_decode_roundtrip(i in any_instr()) {
        prop_assert_eq!(decode(encode(i)), Ok(i));
    }

    #[test]
    fn decode_never_panics(w in any::<u32>()) {
        // Arbitrary words either decode or are rejected — never panic.
        let _ = decode(w);
    }

    #[test]
    fn decode_encode_is_identity_on_valid_words(w in any::<u32>()) {
        if let Ok(i) = decode(w) {
            // Encoding a decoded instruction reproduces a word that decodes
            // to the same instruction (the word itself may normalize unused
            // bits).
            prop_assert_eq!(decode(encode(i)), Ok(i));
        }
    }
}
