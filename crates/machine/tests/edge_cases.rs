//! Machine edge cases: fault/resume interplay, patching misuse, heap
//! error propagation from guest code, straddling accesses.

use databp_machine::{
    asm, Instr, Machine, MachineError, NoHooks, PageSize, Program, StopConfig, StopReason, Syscall,
    CODE_BASE, DATA_BASE, HEAP_END,
};

fn data_hi() -> u16 {
    (DATA_BASE >> 16) as u16
}

#[test]
fn byte_store_straddling_nothing_but_page_boundary_word() {
    // A word store whose 4 bytes straddle a page boundary must fault if
    // EITHER page is protected.
    let mut m = Machine::new();
    m.load(&Program::from_asm(&[
        asm::lui(8, data_hi()),
        asm::ori(8, 8, 0x0ffc),
        asm::addi(9, 0, 7),
        asm::sw(9, 8, 0), // [DATA_BASE+0xffc, DATA_BASE+0x1000): last word of page
        asm::sb(9, 8, 4), // first byte of next page
        asm::halt(),
    ]));
    // Protect only the second page.
    m.mmu_mut().protect_page((DATA_BASE + 0x1000) >> 12);
    // First store is entirely within the unprotected page: no fault.
    let stop = m.run(&mut NoHooks, 100).unwrap();
    match stop {
        StopReason::ProtFault(f) => {
            assert_eq!(f.addr, DATA_BASE + 0x1000, "only the byte store faults");
            assert_eq!(f.len, 1);
        }
        other => panic!("expected ProtFault, got {other:?}"),
    }
    m.emulate_pending_store(&mut NoHooks).unwrap();
    assert_eq!(m.run(&mut NoHooks, 100).unwrap(), StopReason::Halted);
    assert_eq!(m.mem().load_u8(DATA_BASE + 0x1000, 0).unwrap(), 7);
}

#[test]
fn word_store_straddling_into_protected_page_faults() {
    let mut m = Machine::new();
    m.set_page_size(PageSize::K4);
    m.load(&Program::from_asm(&[
        asm::lui(8, data_hi()),
        asm::ori(8, 8, 0x0ffc),
        asm::sw(0, 8, 0),
        asm::halt(),
    ]));
    m.mmu_mut().protect_page((DATA_BASE + 0x1000) >> 12);
    // The word [0xffc, 0x1000) does NOT touch the protected page.
    assert_eq!(m.run(&mut NoHooks, 100).unwrap(), StopReason::Halted);

    let mut m = Machine::new();
    m.load(&Program::from_asm(&[
        asm::lui(8, data_hi()),
        asm::ori(8, 8, 0x0ffc),
        asm::sw(0, 8, 2), // misaligned — fails at commit, but MMU sees it first
        asm::halt(),
    ]));
    m.mmu_mut().protect_page((DATA_BASE + 0x1000) >> 12);
    // Range [0xffe, 0x1002) overlaps the protected page: fault first.
    assert!(matches!(
        m.run(&mut NoHooks, 100).unwrap(),
        StopReason::ProtFault(_)
    ));
}

#[test]
fn guest_double_free_is_a_machine_error() {
    let mut m = Machine::new();
    m.load(&Program::from_asm(&[
        asm::addi(4, 0, 8),
        asm::trap(Syscall::Malloc as u16),
        asm::addi(4, 2, 0),
        asm::trap(Syscall::Free as u16),
        asm::trap(Syscall::Free as u16),
        asm::halt(),
    ]));
    assert!(matches!(
        m.run(&mut NoHooks, 100),
        Err(MachineError::BadFree { .. })
    ));
}

#[test]
fn guest_out_of_memory_is_a_machine_error() {
    let mut m = Machine::new();
    // Allocate more than the whole heap in one call.
    let huge = (HEAP_END - 0x40_0000 + 8) as i32;
    m.load(&Program::from_asm(&[
        asm::lui(4, (huge >> 16) as u16),
        asm::ori(4, 4, (huge & 0xffff) as u16),
        asm::trap(Syscall::Malloc as u16),
        asm::halt(),
    ]));
    assert!(matches!(
        m.run(&mut NoHooks, 100),
        Err(MachineError::OutOfMemory { .. })
    ));
}

#[test]
#[should_panic(expected = "no pending fault")]
fn emulate_without_fault_panics() {
    let mut m = Machine::new();
    m.load(&Program::from_asm(&[asm::halt()]));
    let _ = m.emulate_pending_store(&mut NoHooks);
}

#[test]
fn patching_out_of_range_is_an_error() {
    let mut m = Machine::new();
    m.load(&Program::from_asm(&[asm::halt()]));
    assert!(m.patch_instr(1, Instr::Nop).is_err());
    assert!(m.instr_at(99).is_err());
    assert!(m.pc_to_index(CODE_BASE + 2).is_err(), "misaligned pc");
    assert!(m.pc_to_index(CODE_BASE - 4).is_err(), "below code base");
}

#[test]
fn stop_config_roundtrip_and_chk_does_not_stop_by_default() {
    let mut m = Machine::new();
    m.load(&Program::from_asm(&[
        asm::lui(8, data_hi()),
        asm::chk(8, 0, 4),
        asm::sw(0, 8, 0),
        asm::halt(),
    ]));
    assert_eq!(m.stop_config(), StopConfig::default());
    assert_eq!(m.run(&mut NoHooks, 100).unwrap(), StopReason::Halted);

    let mut m2 = Machine::new();
    m2.load(&Program::from_asm(&[
        asm::lui(8, data_hi()),
        asm::chk(8, 0, 4),
        asm::sw(0, 8, 0),
        asm::halt(),
    ]));
    m2.set_stop_config(StopConfig {
        chk: true,
        ..StopConfig::default()
    });
    assert!(matches!(
        m2.run(&mut NoHooks, 100).unwrap(),
        StopReason::Chk(_)
    ));
    assert_eq!(m2.run(&mut NoHooks, 100).unwrap(), StopReason::Halted);
}

#[test]
fn watch_and_protection_compose() {
    // A store that both hits a watchpoint and writes a protected page:
    // protection wins (pre-commit), and after emulation the watchpoint
    // fires post-commit.
    let mut m = Machine::new();
    m.load(&Program::from_asm(&[
        asm::lui(8, data_hi()),
        asm::addi(9, 0, 3),
        asm::sw(9, 8, 0),
        asm::halt(),
    ]));
    m.mmu_mut().protect_range(DATA_BASE, DATA_BASE + 4);
    m.watch_mut().install(DATA_BASE, DATA_BASE + 4).unwrap();
    assert!(matches!(
        m.run(&mut NoHooks, 100).unwrap(),
        StopReason::ProtFault(_)
    ));
    let after = m.emulate_pending_store(&mut NoHooks).unwrap();
    assert!(
        matches!(after, Some(StopReason::WatchFault(_))),
        "emulated store still trips the watchpoint: {after:?}"
    );
    assert_eq!(m.run(&mut NoHooks, 100).unwrap(), StopReason::Halted);
    assert_eq!(m.mem().load_u32(DATA_BASE, 0).unwrap(), 3);
}

#[test]
fn run_resume_cycles_preserve_determinism() {
    // Stopping at every mark and resuming must not change results.
    let body = [
        asm::addi(8, 0, 0),
        asm::mark_enter(0),
        asm::addi(8, 8, 5),
        asm::mark_exit(0),
        asm::mark_enter(1),
        asm::addi(8, 8, 7),
        asm::mark_exit(1),
        asm::addi(2, 8, 0),
        asm::halt(),
    ];
    let mut plain = Machine::new();
    plain.load(&Program::from_asm(&body));
    plain.run(&mut NoHooks, 100).unwrap();

    let mut stopping = Machine::new();
    stopping.load(&Program::from_asm(&body));
    stopping.set_stop_config(StopConfig {
        marks: true,
        ..StopConfig::default()
    });
    let mut stops = 0;
    loop {
        match stopping.run(&mut NoHooks, 100).unwrap() {
            StopReason::Halted => break,
            StopReason::Mark { .. } => stops += 1,
            other => panic!("unexpected {other:?}"),
        }
    }
    assert_eq!(stops, 4);
    assert_eq!(stopping.cpu().reg(2), plain.cpu().reg(2));
    assert_eq!(stopping.cost().instructions, plain.cost().instructions);
    assert_eq!(
        stopping.cost().cycles,
        plain.cost().cycles,
        "stop/resume must not change cycle accounting"
    );
}

#[test]
fn trap_with_unknown_syscall_code_is_invalid_opcode() {
    let mut m = Machine::new();
    // Code 0x1f is below SYS_TRAP_MAX but not a defined syscall.
    m.load(&Program::from_asm(&[asm::trap(0x1f), asm::halt()]));
    assert!(matches!(
        m.run(&mut NoHooks, 10),
        Err(MachineError::InvalidOpcode { .. })
    ));
}

#[test]
fn exit_code_is_preserved_across_output_takes() {
    let mut m = Machine::new();
    m.load(&Program::from_asm(&[
        asm::addi(4, 0, 9),
        asm::trap(Syscall::PrintInt as u16),
        asm::addi(4, 0, -5),
        asm::trap(Syscall::Exit as u16),
    ]));
    m.run(&mut NoHooks, 100).unwrap();
    assert_eq!(m.take_output(), b"9\n");
    assert!(m.output().is_empty());
    assert_eq!(m.exit_code(), -5);
}
