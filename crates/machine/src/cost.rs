//! Cycle accounting: converts executed instructions into base-program time.
//!
//! The paper normalizes each monitor session's overhead to the *base
//! execution time* of the unmonitored program (Table 1). Our substrate is
//! a simulator, so base time is defined rather than measured: each
//! instruction class costs a fixed number of cycles at a 40 MHz clock
//! (the SPARCstation 2's clock; per-class cycle counts approximate its
//! CPI ≈ 1.3–1.8 behaviour). System-call service time is charged in
//! microseconds directly, standing in for the untraced library/kernel time
//! present in the paper's wall-clock base measurements.

use crate::isa::Instr;

/// Classification of instructions for cycle costing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstrClass {
    /// Single-cycle ALU / compare / no-op.
    Alu,
    /// Integer multiply.
    Mul,
    /// Integer divide / remainder.
    Div,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Taken-or-not branch.
    Branch,
    /// `jal` / `jalr`.
    Jump,
    /// Trap dispatch overhead (excluding host-side service time).
    Trap,
    /// Function-boundary marker: free (a tracing artifact, not real code).
    Mark,
    /// CodePatch check: the paper's "minimum of two additional
    /// instructions" per write.
    Chk,
}

/// Per-class cycle costs and the simulated clock.
///
/// The default models a 40 MHz in-order machine with cached memory
/// (loads 2, stores 3, mul 5, div 18 cycles). Construct a custom model to
/// explore clock sensitivity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Clock frequency in MHz.
    pub clock_mhz: f64,
    /// Cycles for [`InstrClass::Alu`].
    pub alu: u64,
    /// Cycles for [`InstrClass::Mul`].
    pub mul: u64,
    /// Cycles for [`InstrClass::Div`].
    pub div: u64,
    /// Cycles for [`InstrClass::Load`].
    pub load: u64,
    /// Cycles for [`InstrClass::Store`].
    pub store: u64,
    /// Cycles for [`InstrClass::Branch`].
    pub branch: u64,
    /// Cycles for [`InstrClass::Jump`].
    pub jump: u64,
    /// Cycles for [`InstrClass::Trap`] dispatch.
    pub trap: u64,
    /// Cycles for [`InstrClass::Chk`].
    pub chk: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            clock_mhz: 40.0,
            alu: 1,
            mul: 5,
            div: 18,
            load: 2,
            store: 3,
            branch: 2,
            jump: 2,
            trap: 12,
            chk: 2,
        }
    }
}

impl CostModel {
    /// Cycles charged for one instruction of class `class`.
    pub fn cycles_for(&self, class: InstrClass) -> u64 {
        match class {
            InstrClass::Alu => self.alu,
            InstrClass::Mul => self.mul,
            InstrClass::Div => self.div,
            InstrClass::Load => self.load,
            InstrClass::Store => self.store,
            InstrClass::Branch => self.branch,
            InstrClass::Jump => self.jump,
            InstrClass::Trap => self.trap,
            InstrClass::Mark => 0,
            InstrClass::Chk => self.chk,
        }
    }

    /// Classifies an instruction.
    pub fn classify(i: &Instr) -> InstrClass {
        use Instr::*;
        match i {
            Mul(..) => InstrClass::Mul,
            Div(..) | Rem(..) => InstrClass::Div,
            Lw(..) | Lb(..) | Lbu(..) => InstrClass::Load,
            Sw(..) | Sb(..) => InstrClass::Store,
            Beq(..) | Bne(..) | Blt(..) | Bge(..) => InstrClass::Branch,
            Jal(..) | Jalr(..) => InstrClass::Jump,
            Trap(..) | Halt => InstrClass::Trap,
            Mark(..) => InstrClass::Mark,
            Chk(..) => InstrClass::Chk,
            _ => InstrClass::Alu,
        }
    }

    /// Converts a cycle count to microseconds at the model's clock.
    pub fn cycles_to_us(&self, cycles: u64) -> f64 {
        cycles as f64 / self.clock_mhz
    }
}

/// Accumulated execution cost of one run.
///
/// `cycles` covers architectural execution; `syscall_us` is host-service
/// time (allocator, I/O) charged in microseconds — it models the paper's
/// untraced library/system time, which inflates base time but produces no
/// trace events.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Cycles {
    /// Architectural cycles executed.
    pub cycles: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// Host-side system-call service time, microseconds.
    pub syscall_us: f64,
}

impl Cycles {
    /// Resets all counters to zero.
    pub fn reset(&mut self) {
        *self = Cycles::default();
    }

    /// Total base time in microseconds under `model`.
    pub fn total_us(&self, model: &CostModel) -> f64 {
        model.cycles_to_us(self.cycles) + self.syscall_us
    }

    /// Total base time in milliseconds under `model` (Table 1 units).
    pub fn total_ms(&self, model: &CostModel) -> f64 {
        self.total_us(model) / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Instr, MarkKind, Reg};

    #[test]
    fn default_clock_is_sparcstation_2() {
        assert_eq!(CostModel::default().clock_mhz, 40.0);
    }

    #[test]
    fn classify_all_classes() {
        let r = Reg::new;
        let cases = [
            (Instr::Add(r(1), r(2), r(3)), InstrClass::Alu),
            (Instr::Addi(r(1), r(2), 0), InstrClass::Alu),
            (Instr::Lui(r(1), 0), InstrClass::Alu),
            (Instr::Nop, InstrClass::Alu),
            (Instr::Mul(r(1), r(2), r(3)), InstrClass::Mul),
            (Instr::Div(r(1), r(2), r(3)), InstrClass::Div),
            (Instr::Rem(r(1), r(2), r(3)), InstrClass::Div),
            (Instr::Lw(r(1), r(2), 0), InstrClass::Load),
            (Instr::Sw(r(1), r(2), 0), InstrClass::Store),
            (Instr::Sb(r(1), r(2), 0), InstrClass::Store),
            (Instr::Beq(r(1), r(2), 0), InstrClass::Branch),
            (Instr::Jal(0), InstrClass::Jump),
            (Instr::Jalr(r(31), r(1), 0), InstrClass::Jump),
            (Instr::Trap(1), InstrClass::Trap),
            (Instr::Halt, InstrClass::Trap),
            (Instr::Mark(MarkKind::Enter, 0), InstrClass::Mark),
            (Instr::Chk(r(2), 0, 4), InstrClass::Chk),
        ];
        for (i, c) in cases {
            assert_eq!(CostModel::classify(&i), c, "for {i:?}");
        }
    }

    #[test]
    fn marks_are_free() {
        assert_eq!(CostModel::default().cycles_for(InstrClass::Mark), 0);
    }

    #[test]
    fn cycles_to_time() {
        let m = CostModel::default();
        // 40 cycles at 40 MHz = 1 µs.
        assert_eq!(m.cycles_to_us(40), 1.0);
        let c = Cycles {
            cycles: 40_000,
            instructions: 0,
            syscall_us: 500.0,
        };
        assert_eq!(c.total_us(&m), 1500.0);
        assert_eq!(c.total_ms(&m), 1.5);
    }

    #[test]
    fn reset_zeroes() {
        let mut c = Cycles {
            cycles: 5,
            instructions: 2,
            syscall_us: 1.0,
        };
        c.reset();
        assert_eq!(c, Cycles::default());
    }
}
