//! Machine execution errors.

use std::error::Error;
use std::fmt;

/// A fatal execution error: the simulated program did something
/// architecturally impossible to continue from.
///
/// Distinct from [`StopReason`](crate::StopReason): faults and traps are
/// *recoverable* stops delivered to the driving strategy; a `MachineError`
/// aborts the run (it indicates a bug in the guest program or in a code
/// patch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachineError {
    /// A data access touched an address outside the 16 MiB data space.
    UnmappedAddress {
        /// The faulting byte address.
        addr: u32,
        /// Program counter of the faulting instruction.
        pc: u32,
    },
    /// A 4-byte access was not 4-byte aligned.
    Misaligned {
        /// The faulting byte address.
        addr: u32,
        /// Program counter of the faulting instruction.
        pc: u32,
    },
    /// `div`/`rem` with a zero divisor.
    DivideByZero {
        /// Program counter of the faulting instruction.
        pc: u32,
    },
    /// The program counter left the code segment or landed on an
    /// undecodable word.
    InvalidOpcode {
        /// The undecodable instruction word.
        word: u32,
        /// Program counter of the bad fetch.
        pc: u32,
    },
    /// `pc` outside the loaded code image.
    BadPc {
        /// The out-of-range program counter.
        pc: u32,
    },
    /// The stack pointer dropped below [`STACK_LIMIT`](crate::STACK_LIMIT).
    StackOverflow {
        /// Stack pointer value at detection.
        sp: u32,
        /// Program counter at detection.
        pc: u32,
    },
    /// The heap could not satisfy an allocation.
    OutOfMemory {
        /// Requested size in bytes.
        requested: u32,
    },
    /// `free`/`realloc` of an address that is not a live allocation.
    BadFree {
        /// The bogus pointer.
        addr: u32,
    },
    /// The step budget given to [`Machine::run`](crate::Machine::run) was
    /// exhausted before the program stopped.
    StepLimitExceeded {
        /// The exhausted budget.
        limit: u64,
    },
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            MachineError::UnmappedAddress { addr, pc } => {
                write!(f, "unmapped data address {addr:#010x} at pc {pc:#010x}")
            }
            MachineError::Misaligned { addr, pc } => {
                write!(f, "misaligned word access {addr:#010x} at pc {pc:#010x}")
            }
            MachineError::DivideByZero { pc } => write!(f, "divide by zero at pc {pc:#010x}"),
            MachineError::InvalidOpcode { word, pc } => {
                write!(f, "invalid instruction word {word:#010x} at pc {pc:#010x}")
            }
            MachineError::BadPc { pc } => write!(f, "pc {pc:#010x} outside code image"),
            MachineError::StackOverflow { sp, pc } => {
                write!(f, "stack overflow (sp {sp:#010x}) at pc {pc:#010x}")
            }
            MachineError::OutOfMemory { requested } => {
                write!(f, "heap exhausted allocating {requested} bytes")
            }
            MachineError::BadFree { addr } => {
                write!(f, "free of non-allocated address {addr:#010x}")
            }
            MachineError::StepLimitExceeded { limit } => {
                write!(f, "step limit of {limit} instructions exceeded")
            }
        }
    }
}

impl Error for MachineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_informative() {
        let cases = [
            MachineError::UnmappedAddress {
                addr: 0x1234,
                pc: 0x10000,
            },
            MachineError::Misaligned { addr: 3, pc: 0 },
            MachineError::DivideByZero { pc: 4 },
            MachineError::InvalidOpcode {
                word: 0xffff_ffff,
                pc: 8,
            },
            MachineError::BadPc { pc: 12 },
            MachineError::StackOverflow { sp: 1, pc: 2 },
            MachineError::OutOfMemory { requested: 400 },
            MachineError::BadFree { addr: 0x40 },
            MachineError::StepLimitExceeded { limit: 10 },
        ];
        for c in cases {
            assert!(!c.to_string().is_empty());
        }
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_err<E: Error + Send + Sync + 'static>(_: E) {}
        takes_err(MachineError::DivideByZero { pc: 0 });
    }
}
