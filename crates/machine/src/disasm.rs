//! Disassembly: a readable one-line rendering per instruction.
//!
//! Used by the harness's `disasm` subcommand and by compiler tests when a
//! generated program misbehaves.

use crate::isa::{Instr, MarkKind};
use crate::layout::CODE_BASE;

/// Formats one instruction in a conventional three-operand syntax.
///
/// # Examples
///
/// ```
/// use databp_machine::{asm, disasm};
///
/// assert_eq!(disasm::format_instr(&asm::addi(2, 0, 40)), "addi  r2, r0, 40");
/// assert_eq!(disasm::format_instr(&asm::sw(9, 30, -8)), "sw    r9, -8(r30)");
/// ```
pub fn format_instr(i: &Instr) -> String {
    use Instr::*;
    match *i {
        Add(d, a, b) => format!("add   {d}, {a}, {b}"),
        Sub(d, a, b) => format!("sub   {d}, {a}, {b}"),
        Mul(d, a, b) => format!("mul   {d}, {a}, {b}"),
        Div(d, a, b) => format!("div   {d}, {a}, {b}"),
        Rem(d, a, b) => format!("rem   {d}, {a}, {b}"),
        And(d, a, b) => format!("and   {d}, {a}, {b}"),
        Or(d, a, b) => format!("or    {d}, {a}, {b}"),
        Xor(d, a, b) => format!("xor   {d}, {a}, {b}"),
        Sll(d, a, b) => format!("sll   {d}, {a}, {b}"),
        Srl(d, a, b) => format!("srl   {d}, {a}, {b}"),
        Sra(d, a, b) => format!("sra   {d}, {a}, {b}"),
        Slt(d, a, b) => format!("slt   {d}, {a}, {b}"),
        Sltu(d, a, b) => format!("sltu  {d}, {a}, {b}"),
        Addi(d, a, imm) => format!("addi  {d}, {a}, {imm}"),
        Andi(d, a, imm) => format!("andi  {d}, {a}, {imm:#x}"),
        Ori(d, a, imm) => format!("ori   {d}, {a}, {imm:#x}"),
        Xori(d, a, imm) => format!("xori  {d}, {a}, {imm:#x}"),
        Slti(d, a, imm) => format!("slti  {d}, {a}, {imm}"),
        Lui(d, imm) => format!("lui   {d}, {imm:#x}"),
        Slli(d, a, sh) => format!("slli  {d}, {a}, {sh}"),
        Srli(d, a, sh) => format!("srli  {d}, {a}, {sh}"),
        Srai(d, a, sh) => format!("srai  {d}, {a}, {sh}"),
        Lw(d, a, imm) => format!("lw    {d}, {imm}({a})"),
        Lb(d, a, imm) => format!("lb    {d}, {imm}({a})"),
        Lbu(d, a, imm) => format!("lbu   {d}, {imm}({a})"),
        Sw(s, b, imm) => format!("sw    {s}, {imm}({b})"),
        Sb(s, b, imm) => format!("sb    {s}, {imm}({b})"),
        Beq(a, b, off) => format!("beq   {a}, {b}, {off}"),
        Bne(a, b, off) => format!("bne   {a}, {b}, {off}"),
        Blt(a, b, off) => format!("blt   {a}, {b}, {off}"),
        Bge(a, b, off) => format!("bge   {a}, {b}, {off}"),
        Jal(t) => format!("jal   {:#x}", CODE_BASE + 4 * t),
        Jalr(d, a, imm) => format!("jalr  {d}, {imm}({a})"),
        Trap(code) => format!("trap  {code:#x}"),
        Halt => "halt".to_string(),
        Nop => "nop".to_string(),
        Mark(MarkKind::Enter, fid) => format!("enter {fid}"),
        Mark(MarkKind::Exit, fid) => format!("exit  {fid}"),
        Chk(b, imm, len) => format!("chk{len}  {imm}({b})"),
    }
}

/// Disassembles a whole code image with addresses.
pub fn format_code(code: &[Instr]) -> String {
    let mut out = String::new();
    for (i, instr) in code.iter().enumerate() {
        out.push_str(&format!(
            "{:#010x}: {}\n",
            CODE_BASE + 4 * i as u32,
            format_instr(instr)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm;

    #[test]
    fn every_instruction_formats_nonempty() {
        let samples = [
            asm::add(1, 2, 3),
            asm::sub(1, 2, 3),
            asm::mul(1, 2, 3),
            asm::div(1, 2, 3),
            asm::rem(1, 2, 3),
            asm::and(1, 2, 3),
            asm::or(1, 2, 3),
            asm::xor(1, 2, 3),
            asm::sll(1, 2, 3),
            asm::srl(1, 2, 3),
            asm::sra(1, 2, 3),
            asm::slt(1, 2, 3),
            asm::sltu(1, 2, 3),
            asm::addi(1, 2, -3),
            asm::andi(1, 2, 3),
            asm::ori(1, 2, 3),
            asm::xori(1, 2, 3),
            asm::slti(1, 2, 3),
            asm::lui(1, 2),
            asm::slli(1, 2, 3),
            asm::srli(1, 2, 3),
            asm::srai(1, 2, 3),
            asm::lw(1, 2, 3),
            asm::lb(1, 2, 3),
            asm::lbu(1, 2, 3),
            asm::sw(1, 2, 3),
            asm::sb(1, 2, 3),
            asm::beq(1, 2, 3),
            asm::bne(1, 2, 3),
            asm::blt(1, 2, 3),
            asm::bge(1, 2, 3),
            asm::jal(3),
            asm::jalr(1, 2, 3),
            asm::trap(3),
            asm::halt(),
            asm::nop(),
            asm::mark_enter(3),
            asm::mark_exit(3),
            asm::chk(2, 3, 4),
        ];
        for i in &samples {
            assert!(!format_instr(i).is_empty());
        }
    }

    #[test]
    fn code_listing_has_addresses() {
        let listing = format_code(&[asm::nop(), asm::halt()]);
        assert!(listing.contains("0x00010000: nop"));
        assert!(listing.contains("0x00010004: halt"));
    }
}
