//! Ergonomic instruction constructors taking raw register numbers.
//!
//! The `tinyc` code generator builds [`Instr`] values directly; these
//! helpers exist for hand-written test programs, examples, and the
//! microbenchmarks, where `asm::addi(2, 0, 40)` reads better than
//! `Instr::Addi(Reg::new(2), Reg::new(0), 40)`.

use crate::isa::{Instr, MarkKind, Reg};

macro_rules! r3 {
    ($(#[$doc:meta])* $name:ident, $variant:ident) => {
        $(#[$doc])*
        pub fn $name(rd: u8, rs1: u8, rs2: u8) -> Instr {
            Instr::$variant(Reg::new(rd), Reg::new(rs1), Reg::new(rs2))
        }
    };
}

macro_rules! ri {
    ($(#[$doc:meta])* $name:ident, $variant:ident, $t:ty) => {
        $(#[$doc])*
        pub fn $name(rd: u8, rs1: u8, imm: $t) -> Instr {
            Instr::$variant(Reg::new(rd), Reg::new(rs1), imm)
        }
    };
}

r3!(
    #[doc = "`rd = rs1 + rs2`."]
    add,
    Add
);
r3!(
    #[doc = "`rd = rs1 - rs2`."]
    sub,
    Sub
);
r3!(
    #[doc = "`rd = rs1 * rs2`."]
    mul,
    Mul
);
r3!(
    #[doc = "`rd = rs1 / rs2`."]
    div,
    Div
);
r3!(
    #[doc = "`rd = rs1 % rs2`."]
    rem,
    Rem
);
r3!(
    #[doc = "`rd = rs1 & rs2`."]
    and,
    And
);
r3!(
    #[doc = "`rd = rs1 | rs2`."]
    or,
    Or
);
r3!(
    #[doc = "`rd = rs1 ^ rs2`."]
    xor,
    Xor
);
r3!(
    #[doc = "`rd = rs1 << rs2`."]
    sll,
    Sll
);
r3!(
    #[doc = "`rd = rs1 >> rs2` (logical)."]
    srl,
    Srl
);
r3!(
    #[doc = "`rd = rs1 >> rs2` (arithmetic)."]
    sra,
    Sra
);
r3!(
    #[doc = "`rd = rs1 < rs2` (signed)."]
    slt,
    Slt
);
r3!(
    #[doc = "`rd = rs1 < rs2` (unsigned)."]
    sltu,
    Sltu
);

ri!(
    #[doc = "`rd = rs1 + imm`."]
    addi,
    Addi,
    i16
);
ri!(
    #[doc = "`rd = rs1 & imm`."]
    andi,
    Andi,
    u16
);
ri!(
    #[doc = "`rd = rs1 | imm`."]
    ori,
    Ori,
    u16
);
ri!(
    #[doc = "`rd = rs1 ^ imm`."]
    xori,
    Xori,
    u16
);
ri!(
    #[doc = "`rd = rs1 < imm` (signed)."]
    slti,
    Slti,
    i16
);
ri!(
    #[doc = "`rd = mem32[rs1 + imm]`."]
    lw,
    Lw,
    i16
);
ri!(
    #[doc = "`rd = sext(mem8[rs1 + imm])`."]
    lb,
    Lb,
    i16
);
ri!(
    #[doc = "`rd = zext(mem8[rs1 + imm])`."]
    lbu,
    Lbu,
    i16
);

/// `rd = imm << 16`.
pub fn lui(rd: u8, imm: u16) -> Instr {
    Instr::Lui(Reg::new(rd), imm)
}

/// `rd = rs1 << shamt`.
pub fn slli(rd: u8, rs1: u8, sh: u8) -> Instr {
    Instr::Slli(Reg::new(rd), Reg::new(rs1), sh)
}

/// `rd = rs1 >> shamt` (logical).
pub fn srli(rd: u8, rs1: u8, sh: u8) -> Instr {
    Instr::Srli(Reg::new(rd), Reg::new(rs1), sh)
}

/// `rd = rs1 >> shamt` (arithmetic).
pub fn srai(rd: u8, rs1: u8, sh: u8) -> Instr {
    Instr::Srai(Reg::new(rd), Reg::new(rs1), sh)
}

/// `mem32[rbase + imm] = rsrc`.
pub fn sw(rsrc: u8, rbase: u8, imm: i16) -> Instr {
    Instr::Sw(Reg::new(rsrc), Reg::new(rbase), imm)
}

/// `mem8[rbase + imm] = rsrc`.
pub fn sb(rsrc: u8, rbase: u8, imm: i16) -> Instr {
    Instr::Sb(Reg::new(rsrc), Reg::new(rbase), imm)
}

/// Branch if equal; `off` in words from the next instruction.
pub fn beq(rs1: u8, rs2: u8, off: i16) -> Instr {
    Instr::Beq(Reg::new(rs1), Reg::new(rs2), off)
}

/// Branch if not equal.
pub fn bne(rs1: u8, rs2: u8, off: i16) -> Instr {
    Instr::Bne(Reg::new(rs1), Reg::new(rs2), off)
}

/// Branch if less (signed).
pub fn blt(rs1: u8, rs2: u8, off: i16) -> Instr {
    Instr::Blt(Reg::new(rs1), Reg::new(rs2), off)
}

/// Branch if greater-or-equal (signed).
pub fn bge(rs1: u8, rs2: u8, off: i16) -> Instr {
    Instr::Bge(Reg::new(rs1), Reg::new(rs2), off)
}

/// Call: jump to code word `target`, `ra = pc + 4`.
pub fn jal(target: u32) -> Instr {
    Instr::Jal(target)
}

/// Indirect jump: `rd = pc + 4; pc = rs1 + imm`.
pub fn jalr(rd: u8, rs1: u8, imm: i16) -> Instr {
    Instr::Jalr(Reg::new(rd), Reg::new(rs1), imm)
}

/// Trap with `code` (syscall or TrapPatch trap).
pub fn trap(code: u16) -> Instr {
    Instr::Trap(code)
}

/// Stop execution.
pub fn halt() -> Instr {
    Instr::Halt
}

/// No-op.
pub fn nop() -> Instr {
    Instr::Nop
}

/// Function-entry marker for function `fid`.
pub fn mark_enter(fid: u16) -> Instr {
    Instr::Mark(MarkKind::Enter, fid)
}

/// Function-exit marker for function `fid`.
pub fn mark_exit(fid: u16) -> Instr {
    Instr::Mark(MarkKind::Exit, fid)
}

/// CodePatch check of the `len`-byte range at `rbase + imm`.
pub fn chk(rbase: u8, imm: i16, len: u8) -> Instr {
    Instr::Chk(Reg::new(rbase), imm, len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_build_expected_variants() {
        assert!(matches!(add(1, 2, 3), Instr::Add(..)));
        assert!(matches!(sw(1, 2, -4), Instr::Sw(..)));
        assert!(matches!(chk(2, 0, 4), Instr::Chk(..)));
        assert!(matches!(mark_enter(3), Instr::Mark(MarkKind::Enter, 3)));
        assert!(matches!(mark_exit(3), Instr::Mark(MarkKind::Exit, 3)));
    }

    #[test]
    #[should_panic(expected = "register number out of range")]
    fn bad_register_rejected() {
        add(32, 0, 0);
    }
}
