//! The `spar` instruction set and its 32-bit binary encoding.
//!
//! A real binary encoding (rather than a `Vec<Instr>` of host enums alone)
//! matters for this reproduction: the TrapPatch strategy of the paper
//! *overwrites write-instruction words with trap words* in the loaded
//! image, and the CodePatch space-overhead estimate counts inserted
//! instruction words. Both are only meaningful against an encoded image.
//!
//! ## Formats
//!
//! ```text
//! R-type:  op[31:26] rd[25:21] rs1[20:16] rs2[15:11] funct[10:0]
//! I-type:  op[31:26] rd[25:21] rs1[20:16] imm16[15:0]      (imm sign-extended)
//! J-type:  op[31:26] target26[25:0]                        (word index)
//! ```
//!
//! `pc` is a byte address; branches are pc-relative in *instruction words*
//! from the instruction following the branch (like MIPS without delay
//! slots); `jal` targets are absolute word indices into the code segment.

use std::fmt;

/// A register number in `0..32`. `r0` reads as zero and ignores writes.
///
/// Conventions used by the `tinyc` code generator (the hardware does not
/// enforce them): `r2` return value, `r4..r7` arguments, `r8..r23`
/// expression temporaries, `r29` stack pointer, `r30` frame pointer,
/// `r31` return address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(u8);

impl Reg {
    /// Number of architectural registers.
    pub const COUNT: usize = 32;

    /// Creates a register reference.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    pub fn new(n: u8) -> Self {
        assert!(n < 32, "register number out of range: {n}");
        Reg(n)
    }

    /// The register number.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<u8> for Reg {
    fn from(n: u8) -> Self {
        Reg::new(n)
    }
}

/// Discriminates function-boundary marker instructions.
///
/// Marks are architectural no-ops emitted by the compiler at the point
/// where a function's frame becomes (in)valid; the tracer uses them to
/// install and remove write monitors for local automatic variables
/// "on function boundaries" exactly as the paper's phase-1 trace does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MarkKind {
    /// Frame is set up; locals of function `fid` now live.
    Enter,
    /// Frame about to be torn down; locals of function `fid` now dead.
    Exit,
}

/// First trap code reserved for the TrapPatch strategy. Codes below
/// [`SYS_TRAP_MAX`] are system calls handled by the machine itself; codes
/// at or above `TP_TRAP_BASE` stop the run loop and are delivered to the
/// driving strategy.
pub const TP_TRAP_BASE: u16 = 0x100;

/// Exclusive upper bound of trap codes interpreted as system calls.
pub const SYS_TRAP_MAX: u16 = 0x20;

/// One `spar` instruction.
///
/// Store instructions (`Sw`, `Sb`) are the *write instructions* of the
/// paper: every data breakpoint strategy revolves around intercepting
/// them. `Chk` is the CodePatch check pseudo-instruction: it computes the
/// same effective address as the store that follows it and hands it to the
/// write-monitor service (costing the paper's two inserted instructions
/// plus a `SoftwareLookup`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    // ---- R-type ALU ----
    /// `rd = rs1 + rs2` (wrapping).
    Add(Reg, Reg, Reg),
    /// `rd = rs1 - rs2` (wrapping).
    Sub(Reg, Reg, Reg),
    /// `rd = rs1 * rs2` (wrapping, low 32 bits).
    Mul(Reg, Reg, Reg),
    /// `rd = rs1 / rs2` (signed; traps on divide-by-zero).
    Div(Reg, Reg, Reg),
    /// `rd = rs1 % rs2` (signed remainder; traps on divide-by-zero).
    Rem(Reg, Reg, Reg),
    /// `rd = rs1 & rs2`.
    And(Reg, Reg, Reg),
    /// `rd = rs1 | rs2`.
    Or(Reg, Reg, Reg),
    /// `rd = rs1 ^ rs2`.
    Xor(Reg, Reg, Reg),
    /// `rd = rs1 << (rs2 & 31)`.
    Sll(Reg, Reg, Reg),
    /// `rd = (rs1 as u32) >> (rs2 & 31)`.
    Srl(Reg, Reg, Reg),
    /// `rd = (rs1 as i32) >> (rs2 & 31)`.
    Sra(Reg, Reg, Reg),
    /// `rd = (rs1 as i32) < (rs2 as i32)`.
    Slt(Reg, Reg, Reg),
    /// `rd = (rs1 as u32) < (rs2 as u32)`.
    Sltu(Reg, Reg, Reg),

    // ---- I-type ALU ----
    /// `rd = rs1 + sext(imm)`.
    Addi(Reg, Reg, i16),
    /// `rd = rs1 & zext(imm)`.
    Andi(Reg, Reg, u16),
    /// `rd = rs1 | zext(imm)`.
    Ori(Reg, Reg, u16),
    /// `rd = rs1 ^ zext(imm)`.
    Xori(Reg, Reg, u16),
    /// `rd = (rs1 as i32) < sext(imm)`.
    Slti(Reg, Reg, i16),
    /// `rd = imm << 16`.
    Lui(Reg, u16),
    /// `rd = rs1 << shamt`.
    Slli(Reg, Reg, u8),
    /// `rd = (rs1 as u32) >> shamt`.
    Srli(Reg, Reg, u8),
    /// `rd = (rs1 as i32) >> shamt`.
    Srai(Reg, Reg, u8),

    // ---- memory ----
    /// `rd = mem32[rs1 + sext(imm)]`.
    Lw(Reg, Reg, i16),
    /// `rd = sext8(mem8[rs1 + sext(imm)])`.
    Lb(Reg, Reg, i16),
    /// `rd = zext8(mem8[rs1 + sext(imm)])`.
    Lbu(Reg, Reg, i16),
    /// `mem32[rs1 + sext(imm)] = rsrc` — a 4-byte write instruction.
    /// Field order: `Sw(rsrc, rbase, imm)`.
    Sw(Reg, Reg, i16),
    /// `mem8[rs1 + sext(imm)] = rsrc & 0xff` — a 1-byte write instruction.
    Sb(Reg, Reg, i16),

    // ---- control ----
    /// Branch if `rs1 == rs2`; `off` counts instruction words from the
    /// following instruction.
    Beq(Reg, Reg, i16),
    /// Branch if `rs1 != rs2`.
    Bne(Reg, Reg, i16),
    /// Branch if `(rs1 as i32) < (rs2 as i32)`.
    Blt(Reg, Reg, i16),
    /// Branch if `(rs1 as i32) >= (rs2 as i32)`.
    Bge(Reg, Reg, i16),
    /// Jump to absolute code word index `target`; `r31 = pc + 4`.
    Jal(u32),
    /// `rd = pc + 4; pc = (rs1 + sext(imm)) & !3`.
    Jalr(Reg, Reg, i16),

    // ---- system ----
    /// Trap with a 16-bit code. Codes `< SYS_TRAP_MAX` are system calls
    /// executed by the machine; other codes stop the run loop and are
    /// delivered to the driver (used by TrapPatch).
    Trap(u16),
    /// Stop execution normally.
    Halt,
    /// No operation (1 cycle).
    Nop,
    /// Function-boundary marker; architectural no-op carrying the function
    /// id. See [`MarkKind`].
    Mark(MarkKind, u16),
    /// CodePatch write check: hands `rs1 + sext(imm)` (an effective address
    /// of `len` bytes, `len` ∈ {1, 4}) to the write-monitor service.
    /// Field order: `Chk(rbase, imm, len)`.
    Chk(Reg, i16, u8),
}

impl Instr {
    /// Returns true for the paper's *write instructions* (`Sw`/`Sb`) —
    /// the instructions TrapPatch replaces and CodePatch precedes with a
    /// check.
    pub fn is_store(&self) -> bool {
        matches!(self, Instr::Sw(..) | Instr::Sb(..))
    }

    /// Width in bytes of the memory write performed by a store, or `None`
    /// for non-stores.
    pub fn store_width(&self) -> Option<u32> {
        match self {
            Instr::Sw(..) => Some(4),
            Instr::Sb(..) => Some(1),
            _ => None,
        }
    }
}

// ---- encoding ----

const OP_RALU: u32 = 0x00;
const OP_ADDI: u32 = 0x01;
const OP_ANDI: u32 = 0x02;
const OP_ORI: u32 = 0x03;
const OP_XORI: u32 = 0x04;
const OP_SLTI: u32 = 0x05;
const OP_LUI: u32 = 0x06;
const OP_SLLI: u32 = 0x07;
const OP_SRLI: u32 = 0x08;
const OP_SRAI: u32 = 0x09;
const OP_LW: u32 = 0x10;
const OP_LB: u32 = 0x11;
const OP_LBU: u32 = 0x12;
const OP_SW: u32 = 0x14;
const OP_SB: u32 = 0x15;
const OP_BEQ: u32 = 0x18;
const OP_BNE: u32 = 0x19;
const OP_BLT: u32 = 0x1a;
const OP_BGE: u32 = 0x1b;
const OP_JAL: u32 = 0x20;
const OP_JALR: u32 = 0x21;
const OP_TRAP: u32 = 0x30;
const OP_HALT: u32 = 0x31;
const OP_NOP: u32 = 0x32;
const OP_MARK_ENTER: u32 = 0x33;
const OP_MARK_EXIT: u32 = 0x34;
const OP_CHK: u32 = 0x35;

const F_ADD: u32 = 0;
const F_SUB: u32 = 1;
const F_MUL: u32 = 2;
const F_DIV: u32 = 3;
const F_REM: u32 = 4;
const F_AND: u32 = 5;
const F_OR: u32 = 6;
const F_XOR: u32 = 7;
const F_SLL: u32 = 8;
const F_SRL: u32 = 9;
const F_SRA: u32 = 10;
const F_SLT: u32 = 11;
const F_SLTU: u32 = 12;

fn r3(op: u32, rd: Reg, rs1: Reg, rs2: Reg, funct: u32) -> u32 {
    (op << 26)
        | ((rd.index() as u32) << 21)
        | ((rs1.index() as u32) << 16)
        | ((rs2.index() as u32) << 11)
        | (funct & 0x7ff)
}

fn i16imm(op: u32, rd: Reg, rs1: Reg, imm: u16) -> u32 {
    (op << 26) | ((rd.index() as u32) << 21) | ((rs1.index() as u32) << 16) | imm as u32
}

/// Encodes an instruction to its 32-bit word.
///
/// Every instruction encodes to exactly one word, and
/// `decode(encode(i)) == Ok(i)` for all instructions (property-tested).
///
/// # Panics
///
/// Panics if a `Jal` target exceeds 26 bits or a shift amount exceeds 31 —
/// conditions the assembler/codegen rule out by construction.
pub fn encode(i: Instr) -> u32 {
    use Instr::*;
    match i {
        Add(d, a, b) => r3(OP_RALU, d, a, b, F_ADD),
        Sub(d, a, b) => r3(OP_RALU, d, a, b, F_SUB),
        Mul(d, a, b) => r3(OP_RALU, d, a, b, F_MUL),
        Div(d, a, b) => r3(OP_RALU, d, a, b, F_DIV),
        Rem(d, a, b) => r3(OP_RALU, d, a, b, F_REM),
        And(d, a, b) => r3(OP_RALU, d, a, b, F_AND),
        Or(d, a, b) => r3(OP_RALU, d, a, b, F_OR),
        Xor(d, a, b) => r3(OP_RALU, d, a, b, F_XOR),
        Sll(d, a, b) => r3(OP_RALU, d, a, b, F_SLL),
        Srl(d, a, b) => r3(OP_RALU, d, a, b, F_SRL),
        Sra(d, a, b) => r3(OP_RALU, d, a, b, F_SRA),
        Slt(d, a, b) => r3(OP_RALU, d, a, b, F_SLT),
        Sltu(d, a, b) => r3(OP_RALU, d, a, b, F_SLTU),
        Addi(d, a, imm) => i16imm(OP_ADDI, d, a, imm as u16),
        Andi(d, a, imm) => i16imm(OP_ANDI, d, a, imm),
        Ori(d, a, imm) => i16imm(OP_ORI, d, a, imm),
        Xori(d, a, imm) => i16imm(OP_XORI, d, a, imm),
        Slti(d, a, imm) => i16imm(OP_SLTI, d, a, imm as u16),
        Lui(d, imm) => i16imm(OP_LUI, d, Reg::new(0), imm),
        Slli(d, a, sh) => {
            assert!(sh < 32, "shift amount out of range");
            i16imm(OP_SLLI, d, a, sh as u16)
        }
        Srli(d, a, sh) => {
            assert!(sh < 32, "shift amount out of range");
            i16imm(OP_SRLI, d, a, sh as u16)
        }
        Srai(d, a, sh) => {
            assert!(sh < 32, "shift amount out of range");
            i16imm(OP_SRAI, d, a, sh as u16)
        }
        Lw(d, a, imm) => i16imm(OP_LW, d, a, imm as u16),
        Lb(d, a, imm) => i16imm(OP_LB, d, a, imm as u16),
        Lbu(d, a, imm) => i16imm(OP_LBU, d, a, imm as u16),
        Sw(src, base, imm) => i16imm(OP_SW, src, base, imm as u16),
        Sb(src, base, imm) => i16imm(OP_SB, src, base, imm as u16),
        Beq(a, b, off) => r_branch(OP_BEQ, a, b, off),
        Bne(a, b, off) => r_branch(OP_BNE, a, b, off),
        Blt(a, b, off) => r_branch(OP_BLT, a, b, off),
        Bge(a, b, off) => r_branch(OP_BGE, a, b, off),
        Jal(target) => {
            assert!(target < (1 << 26), "jal target out of range: {target}");
            (OP_JAL << 26) | target
        }
        Jalr(d, a, imm) => i16imm(OP_JALR, d, a, imm as u16),
        Trap(code) => (OP_TRAP << 26) | code as u32,
        Halt => OP_HALT << 26,
        Nop => OP_NOP << 26,
        Mark(MarkKind::Enter, fid) => (OP_MARK_ENTER << 26) | fid as u32,
        Mark(MarkKind::Exit, fid) => (OP_MARK_EXIT << 26) | fid as u32,
        Chk(base, imm, len) => {
            assert!(len == 1 || len == 4, "chk length must be 1 or 4");
            // len stored in the rd field (values 1 / 4 fit in 5 bits).
            (OP_CHK << 26)
                | ((len as u32) << 21)
                | ((base.index() as u32) << 16)
                | (imm as u16) as u32
        }
    }
}

fn r_branch(op: u32, a: Reg, b: Reg, off: i16) -> u32 {
    // Branches reuse the I-type layout: rd = rs1-operand-a, rs1 = operand-b.
    i16imm(op, a, b, off as u16)
}

/// Decodes a 32-bit word back to an [`Instr`].
///
/// # Errors
///
/// Returns the offending word when the opcode or funct field is not part
/// of the ISA — the machine turns this into
/// [`MachineError::InvalidOpcode`](crate::MachineError::InvalidOpcode).
pub fn decode(w: u32) -> Result<Instr, u32> {
    use Instr::*;
    let op = w >> 26;
    let rd = Reg::new(((w >> 21) & 31) as u8);
    let rs1 = Reg::new(((w >> 16) & 31) as u8);
    let rs2 = Reg::new(((w >> 11) & 31) as u8);
    let funct = w & 0x7ff;
    let imm = (w & 0xffff) as u16;
    let simm = imm as i16;
    Ok(match op {
        OP_RALU => match funct {
            F_ADD => Add(rd, rs1, rs2),
            F_SUB => Sub(rd, rs1, rs2),
            F_MUL => Mul(rd, rs1, rs2),
            F_DIV => Div(rd, rs1, rs2),
            F_REM => Rem(rd, rs1, rs2),
            F_AND => And(rd, rs1, rs2),
            F_OR => Or(rd, rs1, rs2),
            F_XOR => Xor(rd, rs1, rs2),
            F_SLL => Sll(rd, rs1, rs2),
            F_SRL => Srl(rd, rs1, rs2),
            F_SRA => Sra(rd, rs1, rs2),
            F_SLT => Slt(rd, rs1, rs2),
            F_SLTU => Sltu(rd, rs1, rs2),
            _ => return Err(w),
        },
        OP_ADDI => Addi(rd, rs1, simm),
        OP_ANDI => Andi(rd, rs1, imm),
        OP_ORI => Ori(rd, rs1, imm),
        OP_XORI => Xori(rd, rs1, imm),
        OP_SLTI => Slti(rd, rs1, simm),
        OP_LUI => Lui(rd, imm),
        OP_SLLI => Slli(rd, rs1, (imm & 31) as u8),
        OP_SRLI => Srli(rd, rs1, (imm & 31) as u8),
        OP_SRAI => Srai(rd, rs1, (imm & 31) as u8),
        OP_LW => Lw(rd, rs1, simm),
        OP_LB => Lb(rd, rs1, simm),
        OP_LBU => Lbu(rd, rs1, simm),
        OP_SW => Sw(rd, rs1, simm),
        OP_SB => Sb(rd, rs1, simm),
        OP_BEQ => Beq(rd, rs1, simm),
        OP_BNE => Bne(rd, rs1, simm),
        OP_BLT => Blt(rd, rs1, simm),
        OP_BGE => Bge(rd, rs1, simm),
        OP_JAL => Jal(w & 0x03ff_ffff),
        OP_JALR => Jalr(rd, rs1, simm),
        OP_TRAP => Trap(imm),
        OP_HALT => Halt,
        OP_NOP => Nop,
        OP_MARK_ENTER => Mark(MarkKind::Enter, imm),
        OP_MARK_EXIT => Mark(MarkKind::Exit, imm),
        OP_CHK => {
            let len = rd.index() as u8;
            if len != 1 && len != 4 {
                return Err(w);
            }
            Chk(rs1, simm, len)
        }
        _ => return Err(w),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_sample_instrs() -> Vec<Instr> {
        use Instr::*;
        let r = Reg::new;
        vec![
            Add(r(1), r(2), r(3)),
            Sub(r(31), r(0), r(15)),
            Mul(r(8), r(9), r(10)),
            Div(r(8), r(9), r(10)),
            Rem(r(8), r(9), r(10)),
            And(r(1), r(1), r(1)),
            Or(r(2), r(3), r(4)),
            Xor(r(5), r(6), r(7)),
            Sll(r(5), r(6), r(7)),
            Srl(r(5), r(6), r(7)),
            Sra(r(5), r(6), r(7)),
            Slt(r(5), r(6), r(7)),
            Sltu(r(5), r(6), r(7)),
            Addi(r(2), r(0), -42),
            Andi(r(2), r(4), 0xffff),
            Ori(r(2), r(4), 0x1234),
            Xori(r(2), r(4), 0x00ff),
            Slti(r(2), r(4), -1),
            Lui(r(7), 0xdead),
            Slli(r(1), r(2), 31),
            Srli(r(1), r(2), 0),
            Srai(r(1), r(2), 15),
            Lw(r(2), r(30), -8),
            Lb(r(2), r(30), 127),
            Lbu(r(2), r(30), -128),
            Sw(r(2), r(30), -4),
            Sb(r(2), r(30), 3),
            Beq(r(1), r(2), -100),
            Bne(r(1), r(2), 100),
            Blt(r(1), r(2), 0),
            Bge(r(1), r(2), 32767),
            Jal(0x03ff_ffff),
            Jal(0),
            Jalr(r(31), r(2), 0),
            Trap(0),
            Trap(0xffff),
            Halt,
            Nop,
            Mark(MarkKind::Enter, 17),
            Mark(MarkKind::Exit, 65535),
            Chk(r(30), -4, 4),
            Chk(r(5), 1000, 1),
        ]
    }

    #[test]
    fn encode_decode_roundtrip() {
        for i in all_sample_instrs() {
            let w = encode(i);
            assert_eq!(
                decode(w),
                Ok(i),
                "roundtrip failed for {i:?} (word {w:#010x})"
            );
        }
    }

    #[test]
    fn distinct_instrs_encode_distinctly() {
        let instrs = all_sample_instrs();
        for (a_idx, &a) in instrs.iter().enumerate() {
            for &b in &instrs[a_idx + 1..] {
                assert_ne!(encode(a), encode(b), "{a:?} and {b:?} collide");
            }
        }
    }

    #[test]
    fn decode_rejects_bad_opcode() {
        assert!(decode(0x3f << 26).is_err());
    }

    #[test]
    fn decode_rejects_bad_funct() {
        assert!(decode(13).is_err()); // R-ALU with funct 13
    }

    #[test]
    fn decode_rejects_bad_chk_len() {
        // Chk with len field = 2.
        let w = (0x35u32 << 26) | (2 << 21);
        assert!(decode(w).is_err());
    }

    #[test]
    fn is_store_classification() {
        let r = Reg::new;
        assert!(Instr::Sw(r(1), r(2), 0).is_store());
        assert!(Instr::Sb(r(1), r(2), 0).is_store());
        assert!(!Instr::Lw(r(1), r(2), 0).is_store());
        assert!(!Instr::Chk(r(2), 0, 4).is_store());
        assert_eq!(Instr::Sw(r(1), r(2), 0).store_width(), Some(4));
        assert_eq!(Instr::Sb(r(1), r(2), 0).store_width(), Some(1));
        assert_eq!(Instr::Nop.store_width(), None);
    }

    #[test]
    #[should_panic(expected = "register number out of range")]
    fn reg_rejects_32() {
        Reg::new(32);
    }

    #[test]
    #[should_panic(expected = "jal target out of range")]
    fn jal_target_overflow_panics() {
        encode(Instr::Jal(1 << 26));
    }

    #[test]
    fn negative_immediates_roundtrip() {
        let i = Instr::Addi(Reg::new(1), Reg::new(2), i16::MIN);
        assert_eq!(decode(encode(i)), Ok(i));
        let s = Instr::Sw(Reg::new(1), Reg::new(2), i16::MIN);
        assert_eq!(decode(encode(s)), Ok(s));
    }
}
