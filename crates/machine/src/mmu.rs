//! Per-page write protection — the substrate for the VirtualMemory
//! strategy.
//!
//! The paper's VirtualMemory WMS write-protects every page holding an
//! active write monitor and catches monitor hits (and misses to those
//! pages) in a write-fault handler. This module provides the protection
//! table with the two page sizes studied in the paper, 4 KiB and 8 KiB.

use crate::layout::MEM_SIZE;
use std::fmt;

/// A supported virtual-memory page size.
///
/// The paper evaluates VirtualMemory at 4 KiB (VM-4K) and 8 KiB (VM-8K);
/// the coarser sizes feed the simulator's generalized page-size ladder
/// (`databp_sim::simulate_sizes`), which sweeps any power-of-two list in
/// one trace walk. `PageSize` makes the choice explicit in APIs rather
/// than a bare `u32`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PageSize {
    /// 4096-byte pages (SunOS 4.x on sun4c; the paper's VM-4K).
    K4,
    /// 8192-byte pages (the paper's VM-8K).
    K8,
    /// 16384-byte pages.
    K16,
    /// 32768-byte pages.
    K32,
    /// 65536-byte pages.
    K64,
}

impl PageSize {
    /// Every supported size, ascending.
    pub const ALL: [PageSize; 5] = [
        PageSize::K4,
        PageSize::K8,
        PageSize::K16,
        PageSize::K32,
        PageSize::K64,
    ];

    /// Page size in bytes.
    pub fn bytes(self) -> u32 {
        1 << self.shift()
    }

    /// log2 of the page size, for shift-based page-number computation.
    pub fn shift(self) -> u32 {
        match self {
            PageSize::K4 => 12,
            PageSize::K8 => 13,
            PageSize::K16 => 14,
            PageSize::K32 => 15,
            PageSize::K64 => 16,
        }
    }

    /// Parses a human-entered size: `"4K"`, `"8k"`, or a byte count like
    /// `"4096"`.
    pub fn parse(s: &str) -> Option<PageSize> {
        let norm = s.trim().to_ascii_uppercase();
        PageSize::ALL
            .into_iter()
            .find(|ps| norm == ps.to_string() || norm == ps.bytes().to_string())
    }

    /// Page number containing byte address `addr`.
    pub fn page_of(self, addr: u32) -> u32 {
        addr >> self.shift()
    }

    /// Iterator over the page numbers spanned by `[ba, ea)`.
    ///
    /// An empty range yields nothing.
    pub fn pages_of_range(self, ba: u32, ea: u32) -> impl Iterator<Item = u32> {
        let (first, last) = if ea > ba {
            (self.page_of(ba), self.page_of(ea - 1))
        } else {
            // Empty byte range -> empty page range.
            (1, 0)
        };
        first..=last
    }
}

impl fmt::Display for PageSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}K", self.bytes() / 1024)
    }
}

/// The write-protection table: one bit per page of the data memory.
///
/// `Mmu` is policy-free: it answers "is this store allowed?" and lets the
/// machine's store path raise the fault. Protect/unprotect correspond to
/// the paper's `mprotect` calls; their *time* cost is charged by the
/// VirtualMemory strategy from the timing variables, not here.
#[derive(Debug, Clone)]
pub struct Mmu {
    page_size: PageSize,
    protected: Vec<bool>,
    protected_count: usize,
}

impl Mmu {
    /// Creates an MMU with all pages writable.
    pub fn new(page_size: PageSize) -> Self {
        let npages = (MEM_SIZE / page_size.bytes()) as usize;
        Mmu {
            page_size,
            protected: vec![false; npages],
            protected_count: 0,
        }
    }

    /// The configured page size.
    pub fn page_size(&self) -> PageSize {
        self.page_size
    }

    /// Number of currently write-protected pages.
    pub fn protected_pages(&self) -> usize {
        self.protected_count
    }

    /// True when no page is protected — the machine's store fast path.
    pub fn nothing_protected(&self) -> bool {
        self.protected_count == 0
    }

    /// Write-protects page `page`. Idempotent.
    ///
    /// # Panics
    ///
    /// Panics if `page` is outside the data memory.
    pub fn protect_page(&mut self, page: u32) {
        let p = &mut self.protected[page as usize];
        if !*p {
            *p = true;
            self.protected_count += 1;
            databp_telemetry::count!("machine.mmu.protects");
        }
    }

    /// Removes write protection from page `page`. Idempotent.
    ///
    /// # Panics
    ///
    /// Panics if `page` is outside the data memory.
    pub fn unprotect_page(&mut self, page: u32) {
        let p = &mut self.protected[page as usize];
        if *p {
            *p = false;
            self.protected_count -= 1;
            databp_telemetry::count!("machine.mmu.unprotects");
        }
    }

    /// Protects every page overlapping `[ba, ea)`.
    pub fn protect_range(&mut self, ba: u32, ea: u32) {
        for page in self.page_size.pages_of_range(ba, ea) {
            self.protect_page(page);
        }
    }

    /// Unprotects every page overlapping `[ba, ea)`.
    pub fn unprotect_range(&mut self, ba: u32, ea: u32) {
        for page in self.page_size.pages_of_range(ba, ea) {
            self.unprotect_page(page);
        }
    }

    /// True if a `len`-byte store at `addr` touches any protected page.
    pub fn store_faults(&self, addr: u32, len: u32) -> bool {
        if self.protected_count == 0 {
            return false;
        }
        self.page_size
            .pages_of_range(addr, addr.saturating_add(len))
            .any(|p| self.protected.get(p as usize).copied().unwrap_or(false))
    }

    /// True if page `page` is write-protected.
    pub fn is_protected(&self, page: u32) -> bool {
        self.protected.get(page as usize).copied().unwrap_or(false)
    }

    /// Clears all protection.
    pub fn clear(&mut self) {
        self.protected.fill(false);
        self.protected_count = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_size_arithmetic() {
        assert_eq!(PageSize::K4.bytes(), 4096);
        assert_eq!(PageSize::K8.bytes(), 8192);
        assert_eq!(PageSize::K16.bytes(), 16384);
        assert_eq!(PageSize::K32.bytes(), 32768);
        assert_eq!(PageSize::K64.bytes(), 65536);
        assert_eq!(PageSize::K4.page_of(0), 0);
        assert_eq!(PageSize::K4.page_of(4095), 0);
        assert_eq!(PageSize::K4.page_of(4096), 1);
        assert_eq!(PageSize::K8.page_of(8191), 0);
        assert_eq!(PageSize::K8.page_of(8192), 1);
        assert_eq!(PageSize::K32.page_of(32768), 1);
        for ps in PageSize::ALL {
            assert_eq!(ps.bytes(), 1 << ps.shift());
        }
    }

    #[test]
    fn page_size_parse_round_trips() {
        for ps in PageSize::ALL {
            assert_eq!(PageSize::parse(&ps.to_string()), Some(ps));
            assert_eq!(PageSize::parse(&ps.bytes().to_string()), Some(ps));
        }
        assert_eq!(PageSize::parse("8k"), Some(PageSize::K8));
        assert_eq!(PageSize::parse(" 16K "), Some(PageSize::K16));
        assert_eq!(PageSize::parse("3K"), None);
        assert_eq!(PageSize::parse(""), None);
    }

    #[test]
    fn pages_of_range_spans() {
        let ps = PageSize::K4;
        assert_eq!(ps.pages_of_range(0, 1).collect::<Vec<_>>(), vec![0]);
        assert_eq!(
            ps.pages_of_range(4095, 4097).collect::<Vec<_>>(),
            vec![0, 1]
        );
        assert_eq!(ps.pages_of_range(4096, 8192).collect::<Vec<_>>(), vec![1]);
        assert_eq!(ps.pages_of_range(100, 100).count(), 0);
    }

    #[test]
    fn protect_and_fault_check() {
        let mut mmu = Mmu::new(PageSize::K4);
        assert!(mmu.nothing_protected());
        assert!(!mmu.store_faults(0x1000, 4));
        mmu.protect_page(1);
        assert!(!mmu.nothing_protected());
        assert!(mmu.store_faults(0x1000, 4));
        assert!(mmu.store_faults(0x1fff, 1));
        assert!(!mmu.store_faults(0x2000, 4));
        // A word straddling into the protected page faults.
        assert!(mmu.store_faults(0x0ffe, 4));
    }

    #[test]
    fn protect_is_idempotent() {
        let mut mmu = Mmu::new(PageSize::K4);
        mmu.protect_page(3);
        mmu.protect_page(3);
        assert_eq!(mmu.protected_pages(), 1);
        mmu.unprotect_page(3);
        mmu.unprotect_page(3);
        assert_eq!(mmu.protected_pages(), 0);
    }

    #[test]
    fn range_protection() {
        let mut mmu = Mmu::new(PageSize::K8);
        mmu.protect_range(0x3ffe, 0x4002); // straddles pages 1 and 2 (8K)
        assert!(mmu.is_protected(0x3ffe >> 13));
        assert!(mmu.is_protected(0x4001 >> 13));
        mmu.unprotect_range(0x3ffe, 0x4002);
        assert!(mmu.nothing_protected());
    }

    #[test]
    fn clear_resets_everything() {
        let mut mmu = Mmu::new(PageSize::K4);
        mmu.protect_range(0, 0x10000);
        assert!(mmu.protected_pages() > 0);
        mmu.clear();
        assert!(mmu.nothing_protected());
    }
}
