//! The fixed virtual-address-space layout of a loaded `spar` program.
//!
//! The layout is deliberately simple and constant so that traces from
//! different runs of the same program are directly comparable and the
//! phase-2 simulator can reason about segments without consulting the
//! machine.
//!
//! ```text
//! 0x0001_0000  CODE_BASE    instruction image (Harvard; not in data memory)
//! 0x0010_0000  DATA_BASE    globals and function-static variables
//! 0x0040_0000  HEAP_BASE    heap, grows upward
//! 0x00E0_0000  HEAP_END     end of heap / stack red zone
//! 0x00FF_FFF0  STACK_TOP    initial stack pointer, grows downward
//! 0x0100_0000  MEM_SIZE     top of the 16 MiB data address space
//! ```

/// Base byte address of the instruction image. `pc` values are byte
/// addresses; instruction word *i* lives at `CODE_BASE + 4 * i`.
pub const CODE_BASE: u32 = 0x0001_0000;

/// Base of the global/static data segment.
pub const DATA_BASE: u32 = 0x0010_0000;

/// First byte of the heap segment.
pub const HEAP_BASE: u32 = 0x0040_0000;

/// One past the last byte usable by the heap.
pub const HEAP_END: u32 = 0x00E0_0000;

/// Lowest address the stack may grow down to; a store below this while
/// `sp < STACK_LIMIT` indicates stack overflow.
pub const STACK_LIMIT: u32 = 0x00E0_0000;

/// Initial stack pointer (16-byte aligned, grows downward).
pub const STACK_TOP: u32 = 0x00FF_FFF0;

/// Total size of the simulated data memory in bytes (16 MiB).
pub const MEM_SIZE: u32 = 0x0100_0000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)] // deliberate layout checks
    fn segments_are_ordered_and_disjoint() {
        assert!(CODE_BASE < DATA_BASE);
        assert!(DATA_BASE < HEAP_BASE);
        assert!(HEAP_BASE < HEAP_END);
        assert!(HEAP_END <= STACK_LIMIT);
        assert!(STACK_LIMIT < STACK_TOP);
        assert!(STACK_TOP < MEM_SIZE);
    }

    #[test]
    fn stack_top_is_16_byte_aligned() {
        assert_eq!(STACK_TOP % 16, 0);
    }

    #[test]
    fn mem_size_is_page_multiple_for_both_paper_page_sizes() {
        assert_eq!(MEM_SIZE % 4096, 0);
        assert_eq!(MEM_SIZE % 8192, 0);
    }
}
