//! Flat byte-addressed data memory.

use crate::error::MachineError;
use crate::layout::MEM_SIZE;

/// The simulated data memory: a flat little-endian byte array of
/// [`MEM_SIZE`] bytes.
///
/// `Memory` performs bounds and alignment checking only; write *protection*
/// is the [`Mmu`](crate::Mmu)'s job and is enforced by the machine's store
/// path, not here. This separation lets fault handlers and emulation
/// helpers write through protection exactly like a kernel would.
#[derive(Clone)]
pub struct Memory {
    bytes: Vec<u8>,
}

impl std::fmt::Debug for Memory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Memory")
            .field("size", &self.bytes.len())
            .finish()
    }
}

impl Default for Memory {
    fn default() -> Self {
        Self::new()
    }
}

impl Memory {
    /// Creates a zeroed memory of [`MEM_SIZE`] bytes.
    pub fn new() -> Self {
        Memory {
            bytes: vec![0; MEM_SIZE as usize],
        }
    }

    /// Total size in bytes.
    pub fn size(&self) -> u32 {
        self.bytes.len() as u32
    }

    fn check(&self, addr: u32, len: u32, pc: u32) -> Result<usize, MachineError> {
        let end = addr as u64 + len as u64;
        if end > self.bytes.len() as u64 {
            return Err(MachineError::UnmappedAddress { addr, pc });
        }
        Ok(addr as usize)
    }

    /// Loads a little-endian 32-bit word.
    ///
    /// # Errors
    ///
    /// [`MachineError::Misaligned`] unless `addr % 4 == 0`;
    /// [`MachineError::UnmappedAddress`] if out of bounds. `pc` is only
    /// used to annotate the error.
    pub fn load_u32(&self, addr: u32, pc: u32) -> Result<u32, MachineError> {
        if !addr.is_multiple_of(4) {
            return Err(MachineError::Misaligned { addr, pc });
        }
        let i = self.check(addr, 4, pc)?;
        Ok(u32::from_le_bytes([
            self.bytes[i],
            self.bytes[i + 1],
            self.bytes[i + 2],
            self.bytes[i + 3],
        ]))
    }

    /// Stores a little-endian 32-bit word.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Memory::load_u32`].
    pub fn store_u32(&mut self, addr: u32, val: u32, pc: u32) -> Result<(), MachineError> {
        if !addr.is_multiple_of(4) {
            return Err(MachineError::Misaligned { addr, pc });
        }
        let i = self.check(addr, 4, pc)?;
        self.bytes[i..i + 4].copy_from_slice(&val.to_le_bytes());
        Ok(())
    }

    /// Loads one byte.
    ///
    /// # Errors
    ///
    /// [`MachineError::UnmappedAddress`] if out of bounds.
    pub fn load_u8(&self, addr: u32, pc: u32) -> Result<u8, MachineError> {
        let i = self.check(addr, 1, pc)?;
        Ok(self.bytes[i])
    }

    /// Stores one byte.
    ///
    /// # Errors
    ///
    /// [`MachineError::UnmappedAddress`] if out of bounds.
    pub fn store_u8(&mut self, addr: u32, val: u8, pc: u32) -> Result<(), MachineError> {
        let i = self.check(addr, 1, pc)?;
        self.bytes[i] = val;
        Ok(())
    }

    /// Copies `src` into memory starting at `addr` (used by the loader and
    /// the `realloc` system call).
    ///
    /// # Errors
    ///
    /// [`MachineError::UnmappedAddress`] if the destination range is out of
    /// bounds.
    pub fn write_bytes(&mut self, addr: u32, src: &[u8]) -> Result<(), MachineError> {
        let i = self.check(addr, src.len() as u32, 0)?;
        self.bytes[i..i + src.len()].copy_from_slice(src);
        Ok(())
    }

    /// Reads `len` bytes starting at `addr`.
    ///
    /// # Errors
    ///
    /// [`MachineError::UnmappedAddress`] if the range is out of bounds.
    pub fn read_bytes(&self, addr: u32, len: u32) -> Result<&[u8], MachineError> {
        let i = self.check(addr, len, 0)?;
        Ok(&self.bytes[i..i + len as usize])
    }

    /// Zeroes `len` bytes starting at `addr` (loader use).
    ///
    /// # Errors
    ///
    /// [`MachineError::UnmappedAddress`] if the range is out of bounds.
    pub fn zero(&mut self, addr: u32, len: u32) -> Result<(), MachineError> {
        let i = self.check(addr, len, 0)?;
        self.bytes[i..i + len as usize].fill(0);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_roundtrip() {
        let mut m = Memory::new();
        m.store_u32(0x100, 0xdead_beef, 0).unwrap();
        assert_eq!(m.load_u32(0x100, 0).unwrap(), 0xdead_beef);
    }

    #[test]
    fn byte_roundtrip_and_endianness() {
        let mut m = Memory::new();
        m.store_u32(0x200, 0x0403_0201, 0).unwrap();
        assert_eq!(m.load_u8(0x200, 0).unwrap(), 0x01);
        assert_eq!(m.load_u8(0x203, 0).unwrap(), 0x04);
    }

    #[test]
    fn misaligned_word_rejected() {
        let mut m = Memory::new();
        assert_eq!(
            m.store_u32(0x101, 1, 0x44),
            Err(MachineError::Misaligned {
                addr: 0x101,
                pc: 0x44
            })
        );
        assert_eq!(
            m.load_u32(0x102, 0x48),
            Err(MachineError::Misaligned {
                addr: 0x102,
                pc: 0x48
            })
        );
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut m = Memory::new();
        let top = m.size();
        assert!(m.load_u8(top, 0).is_err());
        assert!(m.store_u32(top - 2, 0, 0).is_err());
        // Address arithmetic must not wrap.
        assert!(m.load_u32(u32::MAX - 3, 0).is_err());
    }

    #[test]
    fn last_valid_addresses_work() {
        let mut m = Memory::new();
        let top = m.size();
        m.store_u8(top - 1, 0xaa, 0).unwrap();
        assert_eq!(m.load_u8(top - 1, 0).unwrap(), 0xaa);
        m.store_u32(top - 4, 0x11223344, 0).unwrap();
        assert_eq!(m.load_u32(top - 4, 0).unwrap(), 0x11223344);
    }

    #[test]
    fn bulk_write_and_read() {
        let mut m = Memory::new();
        m.write_bytes(0x300, &[1, 2, 3, 4, 5]).unwrap();
        assert_eq!(m.read_bytes(0x300, 5).unwrap(), &[1, 2, 3, 4, 5]);
        m.zero(0x301, 2).unwrap();
        assert_eq!(m.read_bytes(0x300, 5).unwrap(), &[1, 0, 0, 4, 5]);
    }
}
