//! The machine proper: instruction execution, fault delivery, system
//! calls, and code patching.
//!
//! ## Execution and stop protocol
//!
//! A driving *strategy* (or plain tracer) calls [`Machine::run`] in a loop.
//! `run` executes instructions until the program halts or something needs
//! the driver's attention:
//!
//! * [`StopReason::ProtFault`] — a store touched a write-protected page.
//!   The store **has not committed** and `pc` still addresses the store.
//!   The driver typically calls [`Machine::emulate_pending_store`] (the
//!   paper's "emulating the faulting instruction") and resumes.
//! * [`StopReason::WatchFault`] — a store overlapped a watchpoint
//!   register. The store **has committed** and `pc` has advanced (monitor
//!   notifications happen after the write succeeds). The driver just
//!   notifies and resumes.
//! * [`StopReason::Trap`] — a `trap` with a non-syscall code (TrapPatch).
//!   `pc` still addresses the trap; the driver looks up the displaced
//!   instruction and calls [`Machine::emulate_instr`].
//!
//! High-frequency events that must not stop the loop — stores, CodePatch
//! checks, function boundaries, heap service — are delivered through the
//! [`Hooks`] trait.

use crate::cost::{CostModel, Cycles};
use crate::cpu::{reg, Cpu};
use crate::error::MachineError;
use crate::heap::HeapAlloc;
use crate::isa::{decode, encode, Instr, MarkKind, Reg, SYS_TRAP_MAX};
use crate::layout::{CODE_BASE, DATA_BASE, STACK_LIMIT};
use crate::mem::Memory;
use crate::mmu::{Mmu, PageSize};
use crate::watch::{WatchRegs, DEFAULT_WATCH_REGS};

/// A committed (or about-to-commit) memory write, as seen by [`Hooks`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreEvent {
    /// Program counter of the write (or check) instruction.
    pub pc: u32,
    /// Target byte address.
    pub addr: u32,
    /// Width in bytes (1 or 4).
    pub len: u32,
    /// The value being written, masked to the store width. For a `chk`
    /// event this is peeked from the source register of the following
    /// store; a `chk` with no matching following store (an SSA
    /// preheader guard) reports 0.
    pub value: u32,
    /// The value the target held *before* the write, masked to the
    /// store width (0 when the target was unmapped).
    pub old: u32,
}

/// Details of a write fault or watchpoint hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// Program counter of the faulting store.
    pub pc: u32,
    /// Target byte address of the store.
    pub addr: u32,
    /// Width in bytes.
    pub len: u32,
    /// The value being stored (low byte significant for `sb`).
    pub value: u32,
    /// The value the target held before the store, masked to the store
    /// width. For a [`StopReason::ProtFault`] the store has not
    /// committed, so this is the current memory content; for a
    /// [`StopReason::WatchFault`] it is the overwritten content.
    pub old: u32,
}

impl Fault {
    /// The store as a [`StoreEvent`].
    pub fn store_event(&self) -> StoreEvent {
        StoreEvent {
            pc: self.pc,
            addr: self.addr,
            len: self.len,
            value: mask_to_len(self.value, self.len),
            old: self.old,
        }
    }
}

/// Masks a store value to its width (`sb` stores commit only the low
/// byte).
fn mask_to_len(value: u32, len: u32) -> u32 {
    if len == 1 {
        value & 0xff
    } else {
        value
    }
}

/// Why [`Machine::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// `halt` or the exit system call executed.
    Halted,
    /// Store to a protected page; not committed; `pc` at the store.
    ProtFault(Fault),
    /// Store overlapping a watchpoint; committed; `pc` advanced.
    WatchFault(Fault),
    /// Non-syscall trap (TrapPatch); `pc` at the trap instruction.
    Trap {
        /// The trap code (≥ [`SYS_TRAP_MAX`]).
        code: u16,
        /// Program counter of the trap word.
        pc: u32,
    },
    /// Function-boundary mark executed ([`StopConfig::marks`]); `pc`
    /// advanced past the mark.
    Mark {
        /// Enter or exit.
        kind: MarkKind,
        /// Function id.
        fid: u16,
        /// Frame pointer at the mark.
        fp: u32,
        /// Stack pointer at the mark.
        sp: u32,
    },
    /// Heap object allocated ([`StopConfig::heap`]); `pc` advanced.
    HeapAlloc {
        /// Allocation sequence number.
        seq: u32,
        /// Beginning address.
        ba: u32,
        /// Ending address (exclusive).
        ea: u32,
    },
    /// Heap object freed ([`StopConfig::heap`]); `pc` advanced.
    HeapFree {
        /// Allocation sequence number.
        seq: u32,
        /// Beginning address.
        ba: u32,
        /// Ending address (exclusive).
        ea: u32,
    },
    /// Heap object moved by `realloc` ([`StopConfig::heap`]); `pc`
    /// advanced.
    HeapRealloc {
        /// Allocation sequence number (unchanged — same object).
        seq: u32,
        /// Old range.
        old_ba: u32,
        /// Old range end (exclusive).
        old_ea: u32,
        /// New range.
        new_ba: u32,
        /// New range end (exclusive).
        new_ea: u32,
    },
    /// A CodePatch check executed ([`StopConfig::chk`]); `pc` advanced;
    /// the checked store has *not* executed yet.
    Chk(StoreEvent),
}

/// Which high-frequency events should stop [`Machine::run`] in addition
/// to firing [`Hooks`]. Strategy drivers that must act punctually (e.g.
/// install monitors the moment a frame is live) enable these; tracers
/// leave them off and rely on hooks alone.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StopConfig {
    /// Stop at `enter`/`exit` marks ([`StopReason::Mark`]).
    pub marks: bool,
    /// Stop after heap alloc/free/realloc system calls.
    pub heap: bool,
    /// Stop after each `chk` instruction ([`StopReason::Chk`]).
    pub chk: bool,
}

/// System-call numbers (trap codes below [`SYS_TRAP_MAX`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum Syscall {
    /// Terminate; exit code in `a0`.
    Exit = 1,
    /// Print `a0` as a signed decimal followed by a newline.
    PrintInt = 2,
    /// Print the low byte of `a0`.
    PrintChar = 3,
    /// `rv = malloc(a0)`.
    Malloc = 4,
    /// `free(a0)`.
    Free = 5,
    /// `rv = realloc(a0, a1)`.
    Realloc = 6,
    /// `rv =` program argument number `a0` (0 when absent).
    Arg = 7,
    /// Print the NUL-terminated string at `a0`.
    PrintStr = 8,
}

impl Syscall {
    /// Decodes a trap code into a syscall.
    pub fn from_code(code: u16) -> Option<Syscall> {
        Some(match code {
            1 => Syscall::Exit,
            2 => Syscall::PrintInt,
            3 => Syscall::PrintChar,
            4 => Syscall::Malloc,
            5 => Syscall::Free,
            6 => Syscall::Realloc,
            7 => Syscall::Arg,
            8 => Syscall::PrintStr,
            _ => return None,
        })
    }
}

// Host service time per syscall, microseconds. These stand in for the
// paper's untraced library/kernel time: they contribute to base execution
// time but generate no trace events.
const US_EXIT: f64 = 5.0;
const US_PRINT: f64 = 25.0;
const US_MALLOC: f64 = 8.0;
const US_FREE: f64 = 6.0;
const US_REALLOC: f64 = 15.0;
const US_ARG: f64 = 2.0;

/// High-frequency execution callbacks.
///
/// All methods default to no-ops so tracers and strategies implement only
/// what they need. Methods receive plain-data events; implementations must
/// not re-enter the machine.
pub trait Hooks {
    /// A store committed.
    fn on_store(&mut self, _ev: &StoreEvent) {}
    /// A batch of stores committed, in program order. Batches are
    /// produced by [`StoreBatcher`]; the default forwards each event to
    /// [`Hooks::on_store`], so implementations only override this when
    /// they can amortize per-event cost (e.g. a streaming consumer).
    fn on_store_batch(&mut self, evs: &[StoreEvent]) {
        for ev in evs {
            self.on_store(ev);
        }
    }
    /// A CodePatch `chk` executed (before its store commits).
    fn on_chk(&mut self, _ev: &StoreEvent) {}
    /// Function `fid`'s frame is set up; `fp`/`sp` delimit it.
    fn on_enter(&mut self, _fid: u16, _fp: u32, _sp: u32) {}
    /// Function `fid`'s frame is about to be torn down.
    fn on_exit(&mut self, _fid: u16, _fp: u32, _sp: u32) {}
    /// Heap object `seq` allocated at `[ba, ea)`.
    fn on_heap_alloc(&mut self, _seq: u32, _ba: u32, _ea: u32) {}
    /// Heap object `seq` at `[ba, ea)` freed.
    fn on_heap_free(&mut self, _seq: u32, _ba: u32, _ea: u32) {}
    /// Heap object `seq` moved from `old` to `new` by `realloc` (the
    /// paper treats it as the same object).
    fn on_heap_realloc(&mut self, _seq: u32, _old: (u32, u32), _new: (u32, u32)) {}
}

/// A [`Hooks`] implementation that ignores everything.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoHooks;

impl Hooks for NoHooks {}

/// Buffers consecutive store events and delivers them to the inner hooks
/// as fixed-size batches via [`Hooks::on_store_batch`] — the machine-side
/// half of the streaming trace pipeline.
///
/// Stores dominate every trace, so batching them amortizes whatever the
/// inner hook does per event (for a streaming tracer: channel sends).
/// Every *other* hook first flushes the pending batch, preserving exact
/// event ordering for the inner implementation. Call
/// [`StoreBatcher::flush`] after the run to deliver the tail batch.
#[derive(Debug)]
pub struct StoreBatcher<'h, H: Hooks + ?Sized> {
    inner: &'h mut H,
    buf: Vec<StoreEvent>,
    capacity: usize,
}

impl<'h, H: Hooks + ?Sized> StoreBatcher<'h, H> {
    /// Wraps `inner`, delivering stores in batches of up to `capacity`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(inner: &'h mut H, capacity: usize) -> Self {
        assert!(capacity > 0, "StoreBatcher capacity must be nonzero");
        StoreBatcher {
            inner,
            buf: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Delivers any buffered stores to the inner hooks now.
    pub fn flush(&mut self) {
        if !self.buf.is_empty() {
            self.inner.on_store_batch(&self.buf);
            self.buf.clear();
        }
    }
}

impl<H: Hooks + ?Sized> Hooks for StoreBatcher<'_, H> {
    fn on_store(&mut self, ev: &StoreEvent) {
        self.buf.push(*ev);
        if self.buf.len() == self.capacity {
            self.flush();
        }
    }

    fn on_store_batch(&mut self, evs: &[StoreEvent]) {
        self.flush();
        self.inner.on_store_batch(evs);
    }

    fn on_chk(&mut self, ev: &StoreEvent) {
        self.flush();
        self.inner.on_chk(ev);
    }

    fn on_enter(&mut self, fid: u16, fp: u32, sp: u32) {
        self.flush();
        self.inner.on_enter(fid, fp, sp);
    }

    fn on_exit(&mut self, fid: u16, fp: u32, sp: u32) {
        self.flush();
        self.inner.on_exit(fid, fp, sp);
    }

    fn on_heap_alloc(&mut self, seq: u32, ba: u32, ea: u32) {
        self.flush();
        self.inner.on_heap_alloc(seq, ba, ea);
    }

    fn on_heap_free(&mut self, seq: u32, ba: u32, ea: u32) {
        self.flush();
        self.inner.on_heap_free(seq, ba, ea);
    }

    fn on_heap_realloc(&mut self, seq: u32, old: (u32, u32), new: (u32, u32)) {
        self.flush();
        self.inner.on_heap_realloc(seq, old, new);
    }
}

/// A loadable program image.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// Instructions, loaded at [`CODE_BASE`].
    pub code: Vec<Instr>,
    /// Initial data segment image, loaded at [`DATA_BASE`].
    pub data: Vec<u8>,
    /// Entry point (byte address); [`CODE_BASE`] if constructed via
    /// [`Program::from_asm`].
    pub entry: u32,
}

impl Program {
    /// A program with the given instructions, no data, entry at the first
    /// instruction.
    pub fn from_asm(code: &[Instr]) -> Self {
        Program {
            code: code.to_vec(),
            data: Vec::new(),
            entry: CODE_BASE,
        }
    }

    /// Number of instruction words.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// True when the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Count of write instructions — the static figure behind the paper's
    /// CodePatch space-expansion estimate.
    pub fn store_count(&self) -> usize {
        self.code.iter().filter(|i| i.is_store()).count()
    }
}

/// The simulated machine.
///
/// See the crate-level documentation for the execution protocol.
#[derive(Debug, Clone)]
pub struct Machine {
    cpu: Cpu,
    mem: Memory,
    mmu: Mmu,
    watch: WatchRegs,
    heap: HeapAlloc,
    code: Vec<u32>,
    /// Predecoded shadow of `code` — the run loop fetches instructions
    /// here instead of decoding `code[idx]` on every step. Kept in sync
    /// by [`Machine::load`] and [`Machine::patch_instr`], the only code
    /// writers.
    decoded: Vec<Instr>,
    cost_model: CostModel,
    cost: Cycles,
    args: Vec<i32>,
    output: Vec<u8>,
    exit_code: i32,
    pending_fault: Option<Fault>,
    stop_config: StopConfig,
}

impl Default for Machine {
    fn default() -> Self {
        Self::new()
    }
}

impl Machine {
    /// A machine with default configuration: 4 KiB pages, four watchpoint
    /// registers, the default [`CostModel`].
    pub fn new() -> Self {
        Machine {
            cpu: Cpu::new(),
            mem: Memory::new(),
            mmu: Mmu::new(PageSize::K4),
            watch: WatchRegs::new(DEFAULT_WATCH_REGS),
            heap: HeapAlloc::new(),
            code: Vec::new(),
            decoded: Vec::new(),
            cost_model: CostModel::default(),
            cost: Cycles::default(),
            args: Vec::new(),
            output: Vec::new(),
            exit_code: 0,
            pending_fault: None,
            stop_config: StopConfig::default(),
        }
    }

    /// Replaces the MMU with one of the given page size.
    ///
    /// # Panics
    ///
    /// Panics if any page is currently protected (changing geometry under
    /// live protections would silently drop them).
    pub fn set_page_size(&mut self, ps: PageSize) {
        assert!(
            self.mmu.nothing_protected(),
            "cannot change page size while pages are protected"
        );
        self.mmu = Mmu::new(ps);
    }

    /// Replaces the watchpoint bank (e.g. [`WatchRegs::unlimited`] for the
    /// paper's idealized hardware).
    pub fn set_watch_regs(&mut self, watch: WatchRegs) {
        self.watch = watch;
    }

    /// Sets the program arguments readable via [`Syscall::Arg`].
    pub fn set_args(&mut self, args: Vec<i32>) {
        self.args = args;
    }

    /// Configures which events stop the run loop (see [`StopConfig`]).
    pub fn set_stop_config(&mut self, cfg: StopConfig) {
        self.stop_config = cfg;
    }

    /// The current stop configuration.
    pub fn stop_config(&self) -> StopConfig {
        self.stop_config
    }

    /// Loads `program`, resetting all machine state (memory, heap, cost,
    /// output, protections, watchpoints).
    pub fn load(&mut self, program: &Program) {
        self.code = program.code.iter().map(|&i| encode(i)).collect();
        self.decoded = program.code.clone();
        self.mem = Memory::new();
        self.mem
            .write_bytes(DATA_BASE, &program.data)
            .expect("program data segment exceeds memory");
        self.cpu = Cpu::new();
        self.cpu.set_pc(program.entry);
        self.heap = HeapAlloc::new();
        self.cost.reset();
        self.output.clear();
        self.exit_code = 0;
        self.mmu.clear();
        self.watch.clear();
        self.pending_fault = None;
    }

    // ---- accessors ----

    /// Architectural CPU state.
    pub fn cpu(&self) -> &Cpu {
        &self.cpu
    }

    /// Mutable CPU state (fault handlers, tests).
    pub fn cpu_mut(&mut self) -> &mut Cpu {
        &mut self.cpu
    }

    /// Data memory.
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Mutable data memory (loaders, emulation helpers).
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// The MMU.
    pub fn mmu(&self) -> &Mmu {
        &self.mmu
    }

    /// Mutable MMU (the VirtualMemory strategy protects/unprotects).
    pub fn mmu_mut(&mut self) -> &mut Mmu {
        &mut self.mmu
    }

    /// The watchpoint bank.
    pub fn watch(&self) -> &WatchRegs {
        &self.watch
    }

    /// Mutable watchpoint bank (the NativeHardware strategy).
    pub fn watch_mut(&mut self) -> &mut WatchRegs {
        &mut self.watch
    }

    /// The heap allocator.
    pub fn heap(&self) -> &HeapAlloc {
        &self.heap
    }

    /// Accumulated execution cost.
    pub fn cost(&self) -> &Cycles {
        &self.cost
    }

    /// The cost model in effect.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost_model
    }

    /// Replaces the cost model.
    pub fn set_cost_model(&mut self, m: CostModel) {
        self.cost_model = m;
    }

    /// Program output written so far.
    pub fn output(&self) -> &[u8] {
        &self.output
    }

    /// Takes ownership of the output buffer, leaving it empty.
    pub fn take_output(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.output)
    }

    /// Exit code passed to [`Syscall::Exit`] (0 if the program `halt`ed).
    pub fn exit_code(&self) -> i32 {
        self.exit_code
    }

    /// Number of loaded instruction words.
    pub fn code_len(&self) -> usize {
        self.code.len()
    }

    // ---- code patching ----

    /// Converts a byte-address `pc` to a code word index.
    ///
    /// # Errors
    ///
    /// [`MachineError::BadPc`] when outside the image or misaligned.
    pub fn pc_to_index(&self, pc: u32) -> Result<usize, MachineError> {
        if pc < CODE_BASE || !pc.is_multiple_of(4) {
            return Err(MachineError::BadPc { pc });
        }
        let idx = ((pc - CODE_BASE) / 4) as usize;
        if idx >= self.code.len() {
            return Err(MachineError::BadPc { pc });
        }
        Ok(idx)
    }

    /// Decodes the instruction at code word `index`.
    ///
    /// # Errors
    ///
    /// [`MachineError::BadPc`] if out of range;
    /// [`MachineError::InvalidOpcode`] if the word does not decode (only
    /// possible after a bad patch).
    pub fn instr_at(&self, index: usize) -> Result<Instr, MachineError> {
        let word = *self.code.get(index).ok_or(MachineError::BadPc {
            pc: CODE_BASE + 4 * index as u32,
        })?;
        decode(word).map_err(|w| MachineError::InvalidOpcode {
            word: w,
            pc: CODE_BASE + 4 * index as u32,
        })
    }

    /// Overwrites the instruction word at `index` with `instr`, returning
    /// the displaced instruction — the TrapPatch primitive.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Machine::instr_at`].
    pub fn patch_instr(&mut self, index: usize, instr: Instr) -> Result<Instr, MachineError> {
        let old = self.instr_at(index)?;
        self.code[index] = encode(instr);
        self.decoded[index] = instr;
        Ok(old)
    }

    // ---- execution ----

    /// Runs until the program halts, a stop is delivered, or `max_steps`
    /// instructions retire.
    ///
    /// # Errors
    ///
    /// Any [`MachineError`] aborts the run;
    /// [`MachineError::StepLimitExceeded`] if the budget runs out.
    pub fn run<H: Hooks + ?Sized>(
        &mut self,
        hooks: &mut H,
        max_steps: u64,
    ) -> Result<StopReason, MachineError> {
        let mut steps = 0u64;
        let result = loop {
            if self.cpu.is_halted() {
                break Ok(StopReason::Halted);
            }
            if steps >= max_steps {
                break Err(MachineError::StepLimitExceeded { limit: max_steps });
            }
            steps += 1;
            match self.step_inner(hooks) {
                Ok(None) => {}
                Ok(Some(stop)) => break Ok(stop),
                Err(e) => break Err(e),
            }
        };
        // One batched add for the whole run instead of an atomic
        // increment per retired instruction.
        databp_telemetry::count!("machine.instructions.retired", steps);
        result
    }

    /// Executes one instruction; returns a stop reason when the driver
    /// must intervene.
    ///
    /// # Errors
    ///
    /// Any fatal [`MachineError`].
    pub fn step<H: Hooks + ?Sized>(
        &mut self,
        hooks: &mut H,
    ) -> Result<Option<StopReason>, MachineError> {
        databp_telemetry::count!("machine.instructions.retired");
        self.step_inner(hooks)
    }

    fn step_inner<H: Hooks + ?Sized>(
        &mut self,
        hooks: &mut H,
    ) -> Result<Option<StopReason>, MachineError> {
        let pc = self.cpu.pc();
        let idx = self.pc_to_index(pc)?;
        let instr = self.decoded[idx];
        self.cost.instructions += 1;
        self.cost.cycles += self.cost_model.cycles_for(CostModel::classify(&instr));
        self.exec(instr, hooks, false)
    }

    /// Re-executes the store that raised the pending [`StopReason::ProtFault`],
    /// bypassing page protection (the paper's fault-handler emulation),
    /// and advances past it.
    ///
    /// # Errors
    ///
    /// Any fatal [`MachineError`].
    ///
    /// # Panics
    ///
    /// Panics if no protection fault is pending.
    pub fn emulate_pending_store<H: Hooks + ?Sized>(
        &mut self,
        hooks: &mut H,
    ) -> Result<Option<StopReason>, MachineError> {
        let fault = self
            .pending_fault
            .take()
            .expect("emulate_pending_store called with no pending fault");
        let idx = self.pc_to_index(fault.pc)?;
        let instr = self.instr_at(idx)?;
        self.exec(instr, hooks, true)
    }

    /// Executes `instr` as if it were at the current `pc`, bypassing page
    /// protection — the TrapPatch primitive for running a displaced store
    /// out of line.
    ///
    /// # Errors
    ///
    /// Any fatal [`MachineError`].
    pub fn emulate_instr<H: Hooks + ?Sized>(
        &mut self,
        instr: Instr,
        hooks: &mut H,
    ) -> Result<Option<StopReason>, MachineError> {
        self.exec(instr, hooks, true)
    }

    fn exec<H: Hooks + ?Sized>(
        &mut self,
        instr: Instr,
        hooks: &mut H,
        bypass_mmu: bool,
    ) -> Result<Option<StopReason>, MachineError> {
        use Instr::*;
        let pc = self.cpu.pc();
        match instr {
            Add(d, a, b) => self.alu(d, a, b, u32::wrapping_add),
            Sub(d, a, b) => self.alu(d, a, b, u32::wrapping_sub),
            Mul(d, a, b) => self.alu(d, a, b, u32::wrapping_mul),
            Div(d, a, b) => {
                let (x, y) = (self.cpu.read(a) as i32, self.cpu.read(b) as i32);
                if y == 0 {
                    return Err(MachineError::DivideByZero { pc });
                }
                self.cpu.write(d, x.wrapping_div(y) as u32);
                self.cpu.advance();
            }
            Rem(d, a, b) => {
                let (x, y) = (self.cpu.read(a) as i32, self.cpu.read(b) as i32);
                if y == 0 {
                    return Err(MachineError::DivideByZero { pc });
                }
                self.cpu.write(d, x.wrapping_rem(y) as u32);
                self.cpu.advance();
            }
            And(d, a, b) => self.alu(d, a, b, |x, y| x & y),
            Or(d, a, b) => self.alu(d, a, b, |x, y| x | y),
            Xor(d, a, b) => self.alu(d, a, b, |x, y| x ^ y),
            Sll(d, a, b) => self.alu(d, a, b, |x, y| x.wrapping_shl(y & 31)),
            Srl(d, a, b) => self.alu(d, a, b, |x, y| x.wrapping_shr(y & 31)),
            Sra(d, a, b) => self.alu(d, a, b, |x, y| ((x as i32).wrapping_shr(y & 31)) as u32),
            Slt(d, a, b) => self.alu(d, a, b, |x, y| ((x as i32) < (y as i32)) as u32),
            Sltu(d, a, b) => self.alu(d, a, b, |x, y| (x < y) as u32),
            Addi(d, a, imm) => {
                let v = self.cpu.read(a).wrapping_add(imm as i32 as u32);
                self.cpu.write(d, v);
                self.cpu.advance();
            }
            Andi(d, a, imm) => {
                let v = self.cpu.read(a) & imm as u32;
                self.cpu.write(d, v);
                self.cpu.advance();
            }
            Ori(d, a, imm) => {
                let v = self.cpu.read(a) | imm as u32;
                self.cpu.write(d, v);
                self.cpu.advance();
            }
            Xori(d, a, imm) => {
                let v = self.cpu.read(a) ^ imm as u32;
                self.cpu.write(d, v);
                self.cpu.advance();
            }
            Slti(d, a, imm) => {
                let v = ((self.cpu.read(a) as i32) < imm as i32) as u32;
                self.cpu.write(d, v);
                self.cpu.advance();
            }
            Lui(d, imm) => {
                self.cpu.write(d, (imm as u32) << 16);
                self.cpu.advance();
            }
            Slli(d, a, sh) => {
                let v = self.cpu.read(a).wrapping_shl(sh as u32);
                self.cpu.write(d, v);
                self.cpu.advance();
            }
            Srli(d, a, sh) => {
                let v = self.cpu.read(a).wrapping_shr(sh as u32);
                self.cpu.write(d, v);
                self.cpu.advance();
            }
            Srai(d, a, sh) => {
                let v = ((self.cpu.read(a) as i32).wrapping_shr(sh as u32)) as u32;
                self.cpu.write(d, v);
                self.cpu.advance();
            }
            Lw(d, a, imm) => {
                let addr = self.cpu.read(a).wrapping_add(imm as i32 as u32);
                let v = self.mem.load_u32(addr, pc)?;
                self.cpu.write(d, v);
                self.cpu.advance();
            }
            Lb(d, a, imm) => {
                let addr = self.cpu.read(a).wrapping_add(imm as i32 as u32);
                let v = self.mem.load_u8(addr, pc)? as i8 as i32 as u32;
                self.cpu.write(d, v);
                self.cpu.advance();
            }
            Lbu(d, a, imm) => {
                let addr = self.cpu.read(a).wrapping_add(imm as i32 as u32);
                let v = self.mem.load_u8(addr, pc)? as u32;
                self.cpu.write(d, v);
                self.cpu.advance();
            }
            Sw(src, base, imm) => {
                let addr = self.cpu.read(base).wrapping_add(imm as i32 as u32);
                return self.do_store(pc, addr, 4, self.cpu.read(src), hooks, bypass_mmu);
            }
            Sb(src, base, imm) => {
                let addr = self.cpu.read(base).wrapping_add(imm as i32 as u32);
                return self.do_store(pc, addr, 1, self.cpu.read(src), hooks, bypass_mmu);
            }
            Beq(a, b, off) => self.branch(self.cpu.read(a) == self.cpu.read(b), off),
            Bne(a, b, off) => self.branch(self.cpu.read(a) != self.cpu.read(b), off),
            Blt(a, b, off) => {
                self.branch((self.cpu.read(a) as i32) < (self.cpu.read(b) as i32), off)
            }
            Bge(a, b, off) => {
                self.branch((self.cpu.read(a) as i32) >= (self.cpu.read(b) as i32), off)
            }
            Jal(target) => {
                let sp = self.cpu.reg(reg::SP);
                if sp < STACK_LIMIT {
                    return Err(MachineError::StackOverflow { sp, pc });
                }
                self.cpu.write(Reg::new(reg::RA), pc.wrapping_add(4));
                self.cpu.set_pc(CODE_BASE + target * 4);
            }
            Jalr(d, a, imm) => {
                let target = self.cpu.read(a).wrapping_add(imm as i32 as u32) & !3;
                self.cpu.write(d, pc.wrapping_add(4));
                self.cpu.set_pc(target);
            }
            Trap(code) => {
                if code < SYS_TRAP_MAX {
                    return self.syscall(code, hooks);
                }
                databp_telemetry::count!("machine.faults.trap");
                return Ok(Some(StopReason::Trap { code, pc }));
            }
            Halt => {
                self.cpu.halt();
                return Ok(Some(StopReason::Halted));
            }
            Nop => self.cpu.advance(),
            Mark(kind, fid) => {
                let (fp, sp) = (self.cpu.reg(reg::FP), self.cpu.reg(reg::SP));
                match kind {
                    MarkKind::Enter => hooks.on_enter(fid, fp, sp),
                    MarkKind::Exit => hooks.on_exit(fid, fp, sp),
                }
                self.cpu.advance();
                if self.stop_config.marks {
                    return Ok(Some(StopReason::Mark { kind, fid, fp, sp }));
                }
            }
            Chk(base, imm, len) => {
                let addr = self.cpu.read(base).wrapping_add(imm as i32 as u32);
                let (value, old) = self.peek_checked_store(pc, addr, len as u32);
                let ev = StoreEvent {
                    pc,
                    addr,
                    len: len as u32,
                    value,
                    old,
                };
                hooks.on_chk(&ev);
                self.cpu.advance();
                if self.stop_config.chk {
                    return Ok(Some(StopReason::Chk(ev)));
                }
            }
        }
        Ok(None)
    }

    fn alu(&mut self, d: Reg, a: Reg, b: Reg, f: impl Fn(u32, u32) -> u32) {
        let v = f(self.cpu.read(a), self.cpu.read(b));
        self.cpu.write(d, v);
        self.cpu.advance();
    }

    fn branch(&mut self, taken: bool, off: i16) {
        let pc = self.cpu.pc();
        if taken {
            let delta = 4i64 + 4 * off as i64;
            self.cpu.set_pc((pc as i64 + delta) as u32);
        } else {
            self.cpu.advance();
        }
    }

    fn do_store<H: Hooks + ?Sized>(
        &mut self,
        pc: u32,
        addr: u32,
        len: u32,
        value: u32,
        hooks: &mut H,
        bypass_mmu: bool,
    ) -> Result<Option<StopReason>, MachineError> {
        let old = self.peek_mem(addr, len);
        if !bypass_mmu && self.mmu.store_faults(addr, len) {
            let fault = Fault {
                pc,
                addr,
                len,
                value,
                old,
            };
            self.pending_fault = Some(fault);
            databp_telemetry::count!("machine.faults.prot");
            return Ok(Some(StopReason::ProtFault(fault)));
        }
        match len {
            4 => self.mem.store_u32(addr, value, pc)?,
            1 => self.mem.store_u8(addr, value as u8, pc)?,
            _ => unreachable!("store width is 1 or 4"),
        }
        hooks.on_store(&StoreEvent {
            pc,
            addr,
            len,
            value: mask_to_len(value, len),
            old,
        });
        self.cpu.advance();
        if self.watch.store_hits(addr, len) {
            databp_telemetry::count!("machine.faults.watch");
            return Ok(Some(StopReason::WatchFault(Fault {
                pc,
                addr,
                len,
                value,
                old,
            })));
        }
        Ok(None)
    }

    /// Reads the current memory content at `[addr, addr+len)` without
    /// faulting — loads ignore page protection, and an unmapped target
    /// reads as 0 (the subsequent store reports the real error).
    fn peek_mem(&mut self, addr: u32, len: u32) -> u32 {
        let pc = self.cpu.pc();
        match len {
            4 => self.mem.load_u32(addr, pc).unwrap_or(0),
            _ => self.mem.load_u8(addr, pc).unwrap_or(0) as u32,
        }
    }

    /// Resolves the written/overwritten values for the store a `chk` at
    /// `pc` guards. The code generator places each store-site `chk`
    /// immediately before its store (pinned by codegen tests), so the
    /// value is read from the following store's source register; an SSA
    /// preheader guard has no matching following store and reports
    /// `(0, 0)`.
    fn peek_checked_store(&mut self, pc: u32, addr: u32, len: u32) -> (u32, u32) {
        let Ok(idx) = self.pc_to_index(pc.wrapping_add(4)) else {
            return (0, 0);
        };
        let (src, base, imm, slen) = match self.decoded.get(idx) {
            Some(&Instr::Sw(src, base, imm)) => (src, base, imm, 4),
            Some(&Instr::Sb(src, base, imm)) => (src, base, imm, 1),
            _ => return (0, 0),
        };
        let saddr = self.cpu.read(base).wrapping_add(imm as i32 as u32);
        if saddr != addr || slen != len {
            return (0, 0);
        }
        let value = mask_to_len(self.cpu.read(src), len);
        (value, self.peek_mem(addr, len))
    }

    fn syscall<H: Hooks + ?Sized>(
        &mut self,
        code: u16,
        hooks: &mut H,
    ) -> Result<Option<StopReason>, MachineError> {
        let call = Syscall::from_code(code).ok_or(MachineError::InvalidOpcode {
            word: code as u32,
            pc: self.cpu.pc(),
        })?;
        let a0 = self.cpu.reg(reg::A0);
        let a1 = self.cpu.reg(reg::A0 + 1);
        match call {
            Syscall::Exit => {
                self.cost.syscall_us += US_EXIT;
                self.exit_code = a0 as i32;
                self.cpu.halt();
                return Ok(Some(StopReason::Halted));
            }
            Syscall::PrintInt => {
                self.cost.syscall_us += US_PRINT;
                self.output
                    .extend_from_slice(format!("{}\n", a0 as i32).as_bytes());
            }
            Syscall::PrintChar => {
                self.cost.syscall_us += US_PRINT;
                self.output.push(a0 as u8);
            }
            Syscall::Malloc => {
                self.cost.syscall_us += US_MALLOC;
                let (addr, seq) = self.heap.alloc(a0)?;
                let (size, _) = self.heap.live_block(addr).expect("just allocated");
                self.cpu.set_reg(reg::RV, addr);
                hooks.on_heap_alloc(seq, addr, addr + size);
                if self.stop_config.heap {
                    self.cpu.advance();
                    return Ok(Some(StopReason::HeapAlloc {
                        seq,
                        ba: addr,
                        ea: addr + size,
                    }));
                }
            }
            Syscall::Free => {
                self.cost.syscall_us += US_FREE;
                let (size, seq) = self.heap.free(a0)?;
                hooks.on_heap_free(seq, a0, a0 + size);
                if self.stop_config.heap {
                    self.cpu.advance();
                    return Ok(Some(StopReason::HeapFree {
                        seq,
                        ba: a0,
                        ea: a0 + size,
                    }));
                }
            }
            Syscall::Realloc => {
                self.cost.syscall_us += US_REALLOC;
                let (old_size, seq) = self
                    .heap
                    .live_block(a0)
                    .ok_or(MachineError::BadFree { addr: a0 })?;
                let saved = self.mem.read_bytes(a0, old_size)?.to_vec();
                self.heap.free(a0)?;
                let new_addr = self.heap.alloc_with_seq(a1, seq)?;
                let (new_size, _) = self.heap.live_block(new_addr).expect("just allocated");
                let keep = old_size.min(new_size) as usize;
                self.mem.write_bytes(new_addr, &saved[..keep])?;
                self.heap.note_realloc();
                self.cpu.set_reg(reg::RV, new_addr);
                hooks.on_heap_realloc(seq, (a0, a0 + old_size), (new_addr, new_addr + new_size));
                if self.stop_config.heap {
                    self.cpu.advance();
                    return Ok(Some(StopReason::HeapRealloc {
                        seq,
                        old_ba: a0,
                        old_ea: a0 + old_size,
                        new_ba: new_addr,
                        new_ea: new_addr + new_size,
                    }));
                }
            }
            Syscall::Arg => {
                self.cost.syscall_us += US_ARG;
                let v = self.args.get(a0 as usize).copied().unwrap_or(0);
                self.cpu.set_reg(reg::RV, v as u32);
            }
            Syscall::PrintStr => {
                self.cost.syscall_us += US_PRINT;
                for addr in a0..a0.saturating_add(65536) {
                    let b = self.mem.load_u8(addr, self.cpu.pc())?;
                    if b == 0 {
                        break;
                    }
                    self.output.push(b);
                }
            }
        }
        self.cpu.advance();
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm;
    use crate::layout::{DATA_BASE, HEAP_BASE, STACK_TOP};

    fn run_prog(code: &[Instr]) -> Machine {
        let mut m = Machine::new();
        m.load(&Program::from_asm(code));
        let stop = m.run(&mut NoHooks, 1_000_000).expect("run failed");
        assert_eq!(stop, StopReason::Halted);
        m
    }

    #[test]
    fn arithmetic_program() {
        let m = run_prog(&[
            asm::addi(8, 0, 6),
            asm::addi(9, 0, 7),
            asm::mul(10, 8, 9),
            asm::addi(2, 10, 0),
            asm::halt(),
        ]);
        assert_eq!(m.cpu().reg(2), 42);
        assert_eq!(m.cost().instructions, 5);
    }

    #[test]
    fn store_and_load_roundtrip() {
        let m = run_prog(&[
            asm::lui(8, (DATA_BASE >> 16) as u16),
            asm::addi(9, 0, 1234),
            asm::sw(9, 8, 16),
            asm::lw(2, 8, 16),
            asm::halt(),
        ]);
        assert_eq!(m.cpu().reg(2), 1234);
        assert_eq!(m.mem().load_u32(DATA_BASE + 16, 0).unwrap(), 1234);
    }

    #[test]
    fn branch_loop_sums() {
        // sum 1..=10 into r2.
        let m = run_prog(&[
            asm::addi(8, 0, 10), // i = 10
            asm::addi(2, 0, 0),  // acc = 0
            // loop:
            asm::add(2, 2, 8),
            asm::addi(8, 8, -1),
            asm::bne(8, 0, -3),
            asm::halt(),
        ]);
        assert_eq!(m.cpu().reg(2), 55);
    }

    #[test]
    fn jal_and_jalr_call_return() {
        // main: jal f; halt.  f: rv = 99; jalr r0, ra.
        let m = run_prog(&[
            asm::jal(2),
            asm::halt(),
            asm::addi(2, 0, 99),
            asm::jalr(0, 31, 0),
        ]);
        assert_eq!(m.cpu().reg(2), 99);
    }

    #[test]
    fn div_by_zero_is_fatal() {
        let mut m = Machine::new();
        m.load(&Program::from_asm(&[asm::div(2, 0, 0), asm::halt()]));
        assert_eq!(
            m.run(&mut NoHooks, 10),
            Err(MachineError::DivideByZero { pc: CODE_BASE })
        );
    }

    #[test]
    fn step_limit_enforced() {
        // Infinite loop.
        let mut m = Machine::new();
        m.load(&Program::from_asm(&[asm::beq(0, 0, -1)]));
        assert_eq!(
            m.run(&mut NoHooks, 100),
            Err(MachineError::StepLimitExceeded { limit: 100 })
        );
    }

    #[test]
    fn store_hook_fires_per_store() {
        #[derive(Default)]
        struct Counter {
            stores: Vec<StoreEvent>,
        }
        impl Hooks for Counter {
            fn on_store(&mut self, ev: &StoreEvent) {
                self.stores.push(*ev);
            }
        }
        let mut m = Machine::new();
        m.load(&Program::from_asm(&[
            asm::lui(8, (DATA_BASE >> 16) as u16),
            asm::sw(0, 8, 0),
            asm::sb(0, 8, 4),
            asm::halt(),
        ]));
        let mut c = Counter::default();
        m.run(&mut c, 100).unwrap();
        assert_eq!(c.stores.len(), 2);
        assert_eq!(c.stores[0].addr, DATA_BASE);
        assert_eq!(c.stores[0].len, 4);
        assert_eq!(c.stores[1].addr, DATA_BASE + 4);
        assert_eq!(c.stores[1].len, 1);
    }

    #[test]
    fn prot_fault_blocks_store_until_emulated() {
        let mut m = Machine::new();
        m.load(&Program::from_asm(&[
            asm::lui(8, (DATA_BASE >> 16) as u16),
            asm::addi(9, 0, 77),
            asm::sw(9, 8, 0),
            asm::halt(),
        ]));
        m.mmu_mut().protect_range(DATA_BASE, DATA_BASE + 4);
        let stop = m.run(&mut NoHooks, 100).unwrap();
        let fault = match stop {
            StopReason::ProtFault(f) => f,
            other => panic!("expected ProtFault, got {other:?}"),
        };
        assert_eq!(fault.addr, DATA_BASE);
        assert_eq!(fault.value, 77);
        // Store did not commit; pc still at the store.
        assert_eq!(m.mem().load_u32(DATA_BASE, 0).unwrap(), 0);
        assert_eq!(m.cpu().pc(), CODE_BASE + 8);
        // Emulate and continue: store commits despite protection.
        m.emulate_pending_store(&mut NoHooks).unwrap();
        assert_eq!(m.mem().load_u32(DATA_BASE, 0).unwrap(), 77);
        assert_eq!(m.run(&mut NoHooks, 100).unwrap(), StopReason::Halted);
    }

    #[test]
    fn watch_fault_fires_after_commit() {
        let mut m = Machine::new();
        m.load(&Program::from_asm(&[
            asm::lui(8, (DATA_BASE >> 16) as u16),
            asm::addi(9, 0, 5),
            asm::sw(9, 8, 8),
            asm::halt(),
        ]));
        m.watch_mut()
            .install(DATA_BASE + 8, DATA_BASE + 12)
            .unwrap();
        let stop = m.run(&mut NoHooks, 100).unwrap();
        match stop {
            StopReason::WatchFault(f) => {
                assert_eq!(f.addr, DATA_BASE + 8);
                // Committed and pc advanced.
                assert_eq!(m.mem().load_u32(DATA_BASE + 8, 0).unwrap(), 5);
                assert_eq!(m.cpu().pc(), CODE_BASE + 12);
            }
            other => panic!("expected WatchFault, got {other:?}"),
        }
        assert_eq!(m.run(&mut NoHooks, 100).unwrap(), StopReason::Halted);
    }

    #[test]
    fn trap_patch_roundtrip() {
        let mut m = Machine::new();
        m.load(&Program::from_asm(&[
            asm::lui(8, (DATA_BASE >> 16) as u16),
            asm::addi(9, 0, 31),
            asm::sw(9, 8, 0),
            asm::halt(),
        ]));
        // Patch the store with a TP trap.
        let orig = m.patch_instr(2, Instr::Trap(0x100)).unwrap();
        assert!(orig.is_store());
        let stop = m.run(&mut NoHooks, 100).unwrap();
        assert_eq!(
            stop,
            StopReason::Trap {
                code: 0x100,
                pc: CODE_BASE + 8
            }
        );
        // Handler emulates the displaced store.
        m.emulate_instr(orig, &mut NoHooks).unwrap();
        assert_eq!(m.mem().load_u32(DATA_BASE, 0).unwrap(), 31);
        assert_eq!(m.run(&mut NoHooks, 100).unwrap(), StopReason::Halted);
    }

    #[test]
    fn chk_hook_reports_effective_address() {
        struct Chks(Vec<StoreEvent>);
        impl Hooks for Chks {
            fn on_chk(&mut self, ev: &StoreEvent) {
                self.0.push(*ev);
            }
        }
        let mut m = Machine::new();
        m.load(&Program::from_asm(&[
            asm::lui(8, (DATA_BASE >> 16) as u16),
            asm::chk(8, 12, 4),
            asm::sw(0, 8, 12),
            asm::halt(),
        ]));
        let mut c = Chks(Vec::new());
        m.run(&mut c, 100).unwrap();
        assert_eq!(
            c.0,
            vec![StoreEvent {
                pc: CODE_BASE + 4,
                addr: DATA_BASE + 12,
                len: 4,
                value: 0,
                old: 0
            }]
        );
    }

    #[test]
    fn syscall_print_and_exit() {
        let mut m = Machine::new();
        m.load(&Program::from_asm(&[
            asm::addi(4, 0, -7),
            asm::trap(Syscall::PrintInt as u16),
            asm::addi(4, 0, 3),
            asm::trap(Syscall::Exit as u16),
        ]));
        assert_eq!(m.run(&mut NoHooks, 100).unwrap(), StopReason::Halted);
        assert_eq!(m.output(), b"-7\n");
        assert_eq!(m.exit_code(), 3);
        assert!(m.cost().syscall_us > 0.0);
    }

    #[test]
    fn syscall_malloc_free_with_events() {
        #[derive(Default)]
        struct HeapEvents {
            allocs: Vec<(u32, u32, u32)>,
            frees: Vec<(u32, u32, u32)>,
        }
        impl Hooks for HeapEvents {
            fn on_heap_alloc(&mut self, seq: u32, ba: u32, ea: u32) {
                self.allocs.push((seq, ba, ea));
            }
            fn on_heap_free(&mut self, seq: u32, ba: u32, ea: u32) {
                self.frees.push((seq, ba, ea));
            }
        }
        let mut m = Machine::new();
        m.load(&Program::from_asm(&[
            asm::addi(4, 0, 16),
            asm::trap(Syscall::Malloc as u16),
            asm::addi(4, 2, 0), // a0 = allocated ptr
            asm::trap(Syscall::Free as u16),
            asm::halt(),
        ]));
        let mut h = HeapEvents::default();
        m.run(&mut h, 100).unwrap();
        assert_eq!(h.allocs.len(), 1);
        assert_eq!(h.frees.len(), 1);
        let (seq, ba, ea) = h.allocs[0];
        assert_eq!(seq, 0);
        assert_eq!(ba, HEAP_BASE);
        assert_eq!(ea - ba, 16);
        assert_eq!(h.frees[0], (seq, ba, ea));
    }

    #[test]
    fn syscall_realloc_keeps_identity_and_bytes() {
        type ReallocEvent = (u32, (u32, u32), (u32, u32));
        struct Re(Vec<ReallocEvent>);
        impl Hooks for Re {
            fn on_heap_realloc(&mut self, seq: u32, old: (u32, u32), new: (u32, u32)) {
                self.0.push((seq, old, new));
            }
        }
        let mut m = Machine::new();
        m.load(&Program::from_asm(&[
            asm::addi(4, 0, 8),
            asm::trap(Syscall::Malloc as u16), // rv = p
            asm::addi(10, 2, 0),               // r10 = p
            asm::addi(9, 0, 4242),
            asm::sw(9, 10, 0), // *p = 4242
            asm::addi(4, 10, 0),
            asm::addi(5, 0, 64),
            asm::trap(Syscall::Realloc as u16), // rv = q
            asm::lw(2, 2, 0),                   // rv = *q
            asm::halt(),
        ]));
        let mut r = Re(Vec::new());
        m.run(&mut r, 100).unwrap();
        assert_eq!(m.cpu().reg(2), 4242, "realloc must preserve contents");
        assert_eq!(r.0.len(), 1);
        let (seq, old, new) = r.0[0];
        assert_eq!(seq, 0, "realloc keeps the allocation sequence number");
        assert_eq!(old.1 - old.0, 8);
        assert_eq!(new.1 - new.0, 64);
    }

    #[test]
    fn syscall_args() {
        let mut m = Machine::new();
        m.load(&Program::from_asm(&[
            asm::addi(4, 0, 1),
            asm::trap(Syscall::Arg as u16),
            asm::halt(),
        ]));
        m.set_args(vec![10, 20, 30]);
        m.run(&mut NoHooks, 100).unwrap();
        assert_eq!(m.cpu().reg(2), 20);
    }

    #[test]
    fn mark_hooks_fire() {
        #[derive(Default)]
        struct Marks {
            enters: Vec<u16>,
            exits: Vec<u16>,
        }
        impl Hooks for Marks {
            fn on_enter(&mut self, fid: u16, _fp: u32, _sp: u32) {
                self.enters.push(fid);
            }
            fn on_exit(&mut self, fid: u16, _fp: u32, _sp: u32) {
                self.exits.push(fid);
            }
        }
        let mut m = Machine::new();
        m.load(&Program::from_asm(&[
            asm::mark_enter(7),
            asm::mark_exit(7),
            asm::halt(),
        ]));
        let mut marks = Marks::default();
        m.run(&mut marks, 100).unwrap();
        assert_eq!(marks.enters, vec![7]);
        assert_eq!(marks.exits, vec![7]);
    }

    #[test]
    fn load_resets_state() {
        let mut m = Machine::new();
        m.load(&Program::from_asm(&[
            asm::lui(8, (DATA_BASE >> 16) as u16),
            asm::sw(8, 8, 0),
            asm::halt(),
        ]));
        m.run(&mut NoHooks, 100).unwrap();
        assert!(m.cost().instructions > 0);
        m.load(&Program::from_asm(&[asm::halt()]));
        assert_eq!(m.cost().instructions, 0);
        assert_eq!(m.mem().load_u32(DATA_BASE, 0).unwrap(), 0);
        assert_eq!(m.cpu().pc(), CODE_BASE);
        assert_eq!(m.cpu().reg(reg::SP), STACK_TOP);
    }

    #[test]
    fn stack_overflow_detected_on_call() {
        // Infinite recursion: f: addi sp, sp, -4096; jal f.
        let mut m = Machine::new();
        m.load(&Program::from_asm(&[asm::addi(29, 29, -4096), asm::jal(0)]));
        let err = m.run(&mut NoHooks, 1_000_000).unwrap_err();
        assert!(
            matches!(err, MachineError::StackOverflow { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn bad_pc_detected() {
        let mut m = Machine::new();
        m.load(&Program::from_asm(&[asm::jalr(0, 0, 0)])); // jump to address 0
        assert!(matches!(
            m.run(&mut NoHooks, 10),
            Err(MachineError::BadPc { .. })
        ));
    }

    #[test]
    fn program_store_count() {
        let p = Program::from_asm(&[
            asm::sw(1, 2, 0),
            asm::sb(1, 2, 0),
            asm::lw(1, 2, 0),
            asm::halt(),
        ]);
        assert_eq!(p.store_count(), 2);
        assert_eq!(p.len(), 4);
        assert!(!p.is_empty());
    }

    /// Records every hook invocation in order, distinguishing batched
    /// from single store delivery.
    #[derive(Default)]
    struct Recorder {
        log: Vec<String>,
    }

    impl Hooks for Recorder {
        fn on_store(&mut self, ev: &StoreEvent) {
            self.log.push(format!("store {:#x}", ev.addr));
        }
        fn on_store_batch(&mut self, evs: &[StoreEvent]) {
            self.log.push(format!("batch {}", evs.len()));
            for ev in evs {
                self.on_store(ev);
            }
        }
        fn on_enter(&mut self, fid: u16, _fp: u32, _sp: u32) {
            self.log.push(format!("enter {fid}"));
        }
    }

    #[test]
    fn store_batcher_batches_and_flushes_before_other_hooks() {
        let ev = |addr: u32| StoreEvent {
            pc: 0,
            addr,
            len: 4,
            value: 0,
            old: 0,
        };
        let mut rec = Recorder::default();
        let mut b = StoreBatcher::new(&mut rec, 2);
        b.on_store(&ev(0x10));
        b.on_store(&ev(0x14)); // capacity reached: batch of 2 delivered
        b.on_store(&ev(0x18));
        b.on_enter(3, 0, 0); // must flush the pending single-store batch
        b.on_store(&ev(0x1c));
        b.flush(); // tail
        b.flush(); // idempotent: empty flush delivers nothing
        assert_eq!(
            rec.log,
            [
                "batch 2",
                "store 0x10",
                "store 0x14",
                "batch 1",
                "store 0x18",
                "enter 3",
                "batch 1",
                "store 0x1c",
            ]
        );
    }

    #[test]
    fn store_batcher_preserves_machine_behaviour() {
        // The same program run direct vs batched produces an identical
        // hook event sequence (modulo batch framing).
        let code = [
            asm::lui(8, (DATA_BASE >> 16) as u16),
            asm::addi(9, 0, 7),
            asm::sw(9, 8, 0),
            asm::sw(9, 8, 4),
            asm::sw(9, 8, 8),
            asm::halt(),
        ];
        let mut direct = Recorder::default();
        let mut m1 = Machine::new();
        m1.load(&Program::from_asm(&code));
        m1.run(&mut direct, 1000).unwrap();

        let mut rec = Recorder::default();
        let mut m2 = Machine::new();
        m2.load(&Program::from_asm(&code));
        {
            let mut b = StoreBatcher::new(&mut rec, 2);
            m2.run(&mut b, 1000).unwrap();
            b.flush();
        }
        let stores = |log: &[String]| {
            log.iter()
                .filter(|l| l.starts_with("store"))
                .cloned()
                .collect::<Vec<_>>()
        };
        assert_eq!(stores(&direct.log), stores(&rec.log));
        assert_eq!(m1.cpu().pc(), m2.cpu().pc());
    }
}
