//! `spar` — a deterministic simulated 32-bit RISC machine.
//!
//! This crate is the hardware/OS substrate for the databp reproduction of
//! *Efficient Data Breakpoints* (Wahbe, ASPLOS 1992). The paper's
//! experiments need four architectural services that no single host exposes
//! in a portable, instrumentable way, so we simulate them:
//!
//! 1. **A load/store ISA** whose write instructions can be statically
//!    rewritten — [`Instr`], with a real 32-bit binary encoding so that
//!    trap-patching literally overwrites instruction words
//!    ([`Machine::patch_instr`]).
//! 2. **An MMU with per-page write protection** and precise, restartable
//!    write faults ([`Mmu`], [`StopReason::ProtFault`]).
//! 3. **Hardware watchpoint ("monitor") registers** that trap after a
//!    monitored write commits ([`WatchRegs`], [`StopReason::WatchFault`]).
//! 4. **A cycle-accurate cost accountant** ([`CostModel`], [`Cycles`])
//!    converting executed instructions into base-program time at a
//!    SPARCstation-2-like 40 MHz clock.
//!
//! The machine is Harvard-style: code lives in a patchable instruction
//! image, data in a flat 16 MiB byte-addressed memory. Heap allocation is a
//! host-side service reached by `trap` (like SunOS system calls); allocator
//! metadata never touches simulated memory, matching the paper's exclusion
//! of library/system writes from the trace.
//!
//! # Examples
//!
//! ```
//! use databp_machine::{Machine, Program, asm, StopReason, NoHooks};
//!
//! // r2 = 40 + 2, then halt.
//! let prog = Program::from_asm(&[
//!     asm::addi(2, 0, 40),
//!     asm::addi(2, 2, 2),
//!     asm::halt(),
//! ]);
//! let mut m = Machine::new();
//! m.load(&prog);
//! let stop = m.run(&mut NoHooks, 1_000).unwrap();
//! assert_eq!(stop, StopReason::Halted);
//! assert_eq!(m.cpu().reg(2), 42);
//! ```

mod cost;
mod cpu;
mod error;
mod heap;
mod isa;
mod layout;
mod machine;
mod mem;
mod mmu;
mod watch;

pub mod asm;
pub mod disasm;

pub use cost::{CostModel, Cycles, InstrClass};
pub use cpu::{reg, Cpu};
pub use error::MachineError;
pub use heap::{HeapAlloc, HeapStats};
pub use isa::{decode, encode, Instr, MarkKind, Reg, SYS_TRAP_MAX, TP_TRAP_BASE};
pub use layout::{CODE_BASE, DATA_BASE, HEAP_BASE, HEAP_END, MEM_SIZE, STACK_LIMIT, STACK_TOP};
pub use machine::{
    Fault, Hooks, Machine, NoHooks, Program, StopConfig, StopReason, StoreBatcher, StoreEvent,
    Syscall,
};
pub use mem::Memory;
pub use mmu::{Mmu, PageSize};
pub use watch::{WatchRegs, DEFAULT_WATCH_REGS};
