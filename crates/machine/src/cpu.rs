//! The CPU register file and program counter.
//!
//! Instruction execution lives in [`Machine`](crate::Machine) (it needs
//! memory, MMU, watchpoints and hooks); `Cpu` is the pure architectural
//! state, kept separate so fault handlers and tests can inspect and
//! manipulate it freely.

use crate::isa::Reg;
use crate::layout::{CODE_BASE, STACK_TOP};

/// Well-known register numbers under the `tinyc` calling convention.
pub mod reg {
    /// Hardwired zero.
    pub const ZERO: u8 = 0;
    /// Assembler/codegen scratch.
    pub const AT: u8 = 1;
    /// Return value.
    pub const RV: u8 = 2;
    /// Second scratch (address computation in stores).
    pub const AT2: u8 = 3;
    /// First argument register; arguments use `A0..A0+3`.
    pub const A0: u8 = 4;
    /// First expression-temporary register; temporaries use `T0..=T_LAST`.
    pub const T0: u8 = 8;
    /// Last expression-temporary register.
    pub const T_LAST: u8 = 23;
    /// Stack pointer.
    pub const SP: u8 = 29;
    /// Frame pointer.
    pub const FP: u8 = 30;
    /// Return address.
    pub const RA: u8 = 31;
}

/// Architectural CPU state: 32 registers and the program counter.
#[derive(Debug, Clone)]
pub struct Cpu {
    regs: [u32; Reg::COUNT],
    pc: u32,
    halted: bool,
}

impl Default for Cpu {
    fn default() -> Self {
        Self::new()
    }
}

impl Cpu {
    /// A CPU reset to the program entry convention: `pc = CODE_BASE`,
    /// `sp = fp = STACK_TOP`, all other registers zero.
    pub fn new() -> Self {
        let mut cpu = Cpu {
            regs: [0; Reg::COUNT],
            pc: CODE_BASE,
            halted: false,
        };
        cpu.regs[reg::SP as usize] = STACK_TOP;
        cpu.regs[reg::FP as usize] = STACK_TOP;
        cpu
    }

    /// Reads register `n`; `r0` always reads zero.
    pub fn reg(&self, n: u8) -> u32 {
        self.regs[Reg::new(n).index()]
    }

    /// Reads register `r`.
    pub fn read(&self, r: Reg) -> u32 {
        self.regs[r.index()]
    }

    /// Writes register `r`; writes to `r0` are discarded.
    pub fn write(&mut self, r: Reg, val: u32) {
        if r.index() != 0 {
            self.regs[r.index()] = val;
        }
    }

    /// Writes register number `n` (convenience for tests and syscalls).
    pub fn set_reg(&mut self, n: u8, val: u32) {
        self.write(Reg::new(n), val);
    }

    /// Current program counter (byte address).
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Sets the program counter.
    pub fn set_pc(&mut self, pc: u32) {
        self.pc = pc;
    }

    /// Advances `pc` by one instruction.
    pub fn advance(&mut self) {
        self.pc = self.pc.wrapping_add(4);
    }

    /// True once the program executed `halt` or the exit system call.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Marks the CPU halted.
    pub fn halt(&mut self) {
        self.halted = true;
    }

    /// Clears the halted flag (used by loaders when re-running).
    pub fn unhalt(&mut self) {
        self.halted = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r0_is_hardwired_zero() {
        let mut cpu = Cpu::new();
        cpu.write(Reg::new(0), 1234);
        assert_eq!(cpu.reg(0), 0);
    }

    #[test]
    fn registers_hold_values() {
        let mut cpu = Cpu::new();
        for n in 1..32u8 {
            cpu.set_reg(n, n as u32 * 10);
        }
        for n in 1..32u8 {
            assert_eq!(cpu.reg(n), n as u32 * 10);
        }
    }

    #[test]
    fn reset_state_follows_convention() {
        let cpu = Cpu::new();
        assert_eq!(cpu.pc(), CODE_BASE);
        assert_eq!(cpu.reg(reg::SP), STACK_TOP);
        assert_eq!(cpu.reg(reg::FP), STACK_TOP);
        assert!(!cpu.is_halted());
    }

    #[test]
    fn advance_moves_one_word() {
        let mut cpu = Cpu::new();
        let pc0 = cpu.pc();
        cpu.advance();
        assert_eq!(cpu.pc(), pc0 + 4);
    }

    #[test]
    fn halt_unhalt() {
        let mut cpu = Cpu::new();
        cpu.halt();
        assert!(cpu.is_halted());
        cpu.unhalt();
        assert!(!cpu.is_halted());
    }
}
