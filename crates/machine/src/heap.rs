//! Host-side heap allocator for the simulated machine.
//!
//! The allocator's metadata lives entirely on the host: simulated memory
//! never sees header writes. This mirrors the paper's trace discipline —
//! "system calls, standard libraries, and implicit writes … do not appear
//! in the trace" — while still giving every heap object a stable address
//! range and an *allocation sequence number* that identifies it across its
//! lifetime (and across `realloc`, which the paper treats as the same
//! object).

use crate::error::MachineError;
use crate::layout::{HEAP_BASE, HEAP_END};
use std::collections::HashMap;

/// Allocation granularity in bytes; all blocks are multiples of this and
/// so all heap objects are word-aligned (required by the Appendix A.5
/// page-bitmap monitor structure).
const ALIGN: u32 = 8;

/// Running allocator statistics (exposed for workload calibration tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HeapStats {
    /// Total `malloc` calls served.
    pub allocs: u64,
    /// Total `free` calls served.
    pub frees: u64,
    /// Total `realloc` calls served.
    pub reallocs: u64,
    /// Bytes currently allocated.
    pub live_bytes: u64,
    /// High-water mark of `live_bytes`.
    pub peak_bytes: u64,
}

/// First-fit free-list allocator with coalescing over
/// `[HEAP_BASE, HEAP_END)`.
#[derive(Debug, Clone)]
pub struct HeapAlloc {
    /// Free blocks `(addr, size)`, sorted by address, non-adjacent.
    free: Vec<(u32, u32)>,
    /// Live blocks: addr -> (size, allocation sequence number).
    live: HashMap<u32, (u32, u32)>,
    next_seq: u32,
    stats: HeapStats,
}

impl Default for HeapAlloc {
    fn default() -> Self {
        Self::new()
    }
}

impl HeapAlloc {
    /// An empty heap spanning the whole heap segment.
    pub fn new() -> Self {
        HeapAlloc {
            free: vec![(HEAP_BASE, HEAP_END - HEAP_BASE)],
            live: HashMap::new(),
            next_seq: 0,
            stats: HeapStats::default(),
        }
    }

    /// Current statistics.
    pub fn stats(&self) -> HeapStats {
        self.stats
    }

    /// Number of live allocations.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Looks up a live block by its base address.
    pub fn live_block(&self, addr: u32) -> Option<(u32, u32)> {
        self.live.get(&addr).copied()
    }

    fn round(size: u32) -> u32 {
        size.max(1).div_ceil(ALIGN) * ALIGN
    }

    /// Allocates `size` bytes (rounded up to 8), returning
    /// `(base address, allocation sequence number)`.
    ///
    /// # Errors
    ///
    /// [`MachineError::OutOfMemory`] when no free block fits.
    pub fn alloc(&mut self, size: u32) -> Result<(u32, u32), MachineError> {
        let seq = self.next_seq;
        let r = self.alloc_with_seq(size, seq)?;
        self.next_seq += 1;
        Ok((r, seq))
    }

    /// Allocates with a caller-chosen sequence number — used by `realloc`
    /// so the new block keeps the old object identity.
    ///
    /// # Errors
    ///
    /// [`MachineError::OutOfMemory`] when no free block fits.
    pub fn alloc_with_seq(&mut self, size: u32, seq: u32) -> Result<u32, MachineError> {
        let size = Self::round(size);
        let slot = self
            .free
            .iter()
            .position(|&(_, fs)| fs >= size)
            .ok_or(MachineError::OutOfMemory { requested: size })?;
        let (addr, fsize) = self.free[slot];
        if fsize == size {
            self.free.remove(slot);
        } else {
            self.free[slot] = (addr + size, fsize - size);
        }
        self.live.insert(addr, (size, seq));
        databp_telemetry::count!("machine.heap.allocs");
        databp_telemetry::gauge_add!("machine.heap.live_bytes", size as i64);
        self.stats.allocs += 1;
        self.stats.live_bytes += size as u64;
        self.stats.peak_bytes = self.stats.peak_bytes.max(self.stats.live_bytes);
        Ok(addr)
    }

    /// Frees the block at `addr`, returning its `(size, seq)`.
    ///
    /// # Errors
    ///
    /// [`MachineError::BadFree`] if `addr` is not a live block base.
    pub fn free(&mut self, addr: u32) -> Result<(u32, u32), MachineError> {
        let (size, seq) = self
            .live
            .remove(&addr)
            .ok_or(MachineError::BadFree { addr })?;
        databp_telemetry::count!("machine.heap.frees");
        databp_telemetry::gauge_add!("machine.heap.live_bytes", -(size as i64));
        self.stats.frees += 1;
        self.stats.live_bytes -= size as u64;
        self.insert_free(addr, size);
        Ok((size, seq))
    }

    /// Records a realloc served (statistics only; the machine performs the
    /// alloc/copy/free sequence).
    pub fn note_realloc(&mut self) {
        databp_telemetry::count!("machine.heap.reallocs");
        self.stats.reallocs += 1;
        // alloc+free above each bump their counters; a realloc is not an
        // extra alloc/free pair from the program's perspective.
        self.stats.allocs -= 1;
        self.stats.frees -= 1;
    }

    fn insert_free(&mut self, addr: u32, size: u32) {
        let i = self.free.partition_point(|&(a, _)| a < addr);
        self.free.insert(i, (addr, size));
        // Coalesce with successor.
        if i + 1 < self.free.len() && self.free[i].0 + self.free[i].1 == self.free[i + 1].0 {
            self.free[i].1 += self.free[i + 1].1;
            self.free.remove(i + 1);
        }
        // Coalesce with predecessor.
        if i > 0 && self.free[i - 1].0 + self.free[i - 1].1 == self.free[i].0 {
            self.free[i - 1].1 += self.free[i].1;
            self.free.remove(i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_returns_aligned_heap_addresses() {
        let mut h = HeapAlloc::new();
        let (a, s) = h.alloc(10).unwrap();
        assert!((HEAP_BASE..HEAP_END).contains(&a));
        assert_eq!(a % ALIGN, 0);
        assert_eq!(s, 0);
        let (_, s2) = h.alloc(1).unwrap();
        assert_eq!(s2, 1);
    }

    #[test]
    fn blocks_do_not_overlap() {
        let mut h = HeapAlloc::new();
        let (a, _) = h.alloc(16).unwrap();
        let (b, _) = h.alloc(16).unwrap();
        assert!(a + 16 <= b || b + 16 <= a);
    }

    #[test]
    fn free_and_reuse() {
        let mut h = HeapAlloc::new();
        let (a, _) = h.alloc(32).unwrap();
        h.alloc(32).unwrap();
        let (size, _) = h.free(a).unwrap();
        assert_eq!(size, 32);
        let (c, _) = h.alloc(32).unwrap();
        assert_eq!(c, a, "first-fit should reuse the freed hole");
    }

    #[test]
    fn double_free_rejected() {
        let mut h = HeapAlloc::new();
        let (a, _) = h.alloc(8).unwrap();
        h.free(a).unwrap();
        assert_eq!(h.free(a), Err(MachineError::BadFree { addr: a }));
    }

    #[test]
    fn free_of_interior_pointer_rejected() {
        let mut h = HeapAlloc::new();
        let (a, _) = h.alloc(64).unwrap();
        assert!(h.free(a + 8).is_err());
    }

    #[test]
    fn coalescing_restores_full_heap() {
        let mut h = HeapAlloc::new();
        let blocks: Vec<u32> = (0..10).map(|_| h.alloc(100).unwrap().0).collect();
        // Free in shuffled order.
        for &i in &[3usize, 0, 7, 1, 9, 5, 2, 8, 4, 6] {
            h.free(blocks[i]).unwrap();
        }
        assert_eq!(h.free, vec![(HEAP_BASE, HEAP_END - HEAP_BASE)]);
        assert_eq!(h.live_count(), 0);
    }

    #[test]
    fn out_of_memory_reported() {
        let mut h = HeapAlloc::new();
        assert!(matches!(
            h.alloc(HEAP_END - HEAP_BASE + 1),
            Err(MachineError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn stats_track_liveness() {
        let mut h = HeapAlloc::new();
        let (a, _) = h.alloc(8).unwrap();
        let (b, _) = h.alloc(8).unwrap();
        assert_eq!(h.stats().live_bytes, 16);
        assert_eq!(h.stats().peak_bytes, 16);
        h.free(a).unwrap();
        h.free(b).unwrap();
        assert_eq!(h.stats().live_bytes, 0);
        assert_eq!(h.stats().peak_bytes, 16);
        assert_eq!(h.stats().allocs, 2);
        assert_eq!(h.stats().frees, 2);
    }

    #[test]
    fn alloc_with_seq_preserves_identity() {
        let mut h = HeapAlloc::new();
        let (a, seq) = h.alloc(8).unwrap();
        h.free(a).unwrap();
        let b = h.alloc_with_seq(24, seq).unwrap();
        assert_eq!(h.live_block(b), Some((24, seq)));
    }
}
