//! Hardware watchpoint ("monitor") registers — the substrate for the
//! NativeHardware strategy.
//!
//! Real processors of the paper's era exposed at most four such registers
//! (i386 debug registers, MIPS R4000 WatchLo/WatchHi). The paper's
//! hypothetical SPARCstation extension assumes "enough monitor registers
//! for the monitor sessions that we are interested in", readable and
//! writable from user code at negligible cost. [`WatchRegs`] models both:
//! construct with [`WatchRegs::new`] for a realistic fixed capacity, or
//! [`WatchRegs::unlimited`] for the paper's idealization.

/// Number of watchpoint registers on the era's real hardware.
pub const DEFAULT_WATCH_REGS: usize = 4;

/// A bank of hardware watchpoint registers.
///
/// Each active register describes a half-open byte range `[ba, ea)`. A
/// store that overlaps any active range raises a watch fault *after* the
/// write commits (the paper's monitor notification semantics: "the
/// notification may occur after the write has succeeded").
#[derive(Debug, Clone)]
pub struct WatchRegs {
    regs: Vec<Option<(u32, u32)>>,
    capacity: Option<usize>,
    active: usize,
}

impl WatchRegs {
    /// A bank with a hard `capacity` (e.g. [`DEFAULT_WATCH_REGS`]).
    pub fn new(capacity: usize) -> Self {
        WatchRegs {
            regs: vec![None; capacity],
            capacity: Some(capacity),
            active: 0,
        }
    }

    /// The paper's idealized bank: as many registers as needed.
    pub fn unlimited() -> Self {
        WatchRegs {
            regs: Vec::new(),
            capacity: None,
            active: 0,
        }
    }

    /// The configured capacity, or `None` for unlimited.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Number of active watchpoints.
    pub fn active_count(&self) -> usize {
        self.active
    }

    /// True when no watchpoint is active — the machine's store fast path.
    pub fn nothing_watched(&self) -> bool {
        self.active == 0
    }

    /// Programs a register to watch `[ba, ea)` and returns its index, or
    /// `None` when all registers are in use (the real-hardware limitation
    /// the paper's Section 9 warns about).
    ///
    /// # Panics
    ///
    /// Panics if `ba >= ea` (an empty watch range is meaningless).
    pub fn install(&mut self, ba: u32, ea: u32) -> Option<usize> {
        assert!(ba < ea, "watch range must be non-empty: [{ba:#x}, {ea:#x})");
        if let Some(slot) = self.regs.iter().position(Option::is_none) {
            self.regs[slot] = Some((ba, ea));
            self.active += 1;
            return Some(slot);
        }
        match self.capacity {
            Some(cap) if self.regs.len() >= cap => None,
            _ => {
                self.regs.push(Some((ba, ea)));
                self.active += 1;
                Some(self.regs.len() - 1)
            }
        }
    }

    /// Clears register `slot`. Clearing an inactive slot is a no-op.
    pub fn remove(&mut self, slot: usize) {
        if let Some(r) = self.regs.get_mut(slot) {
            if r.take().is_some() {
                self.active -= 1;
            }
        }
    }

    /// Removes the first register exactly matching `[ba, ea)`; returns
    /// whether one was found.
    pub fn remove_range(&mut self, ba: u32, ea: u32) -> bool {
        if let Some(slot) = self.regs.iter().position(|r| *r == Some((ba, ea))) {
            self.remove(slot);
            true
        } else {
            false
        }
    }

    /// True if a `len`-byte store at `addr` overlaps any active watchpoint.
    pub fn store_hits(&self, addr: u32, len: u32) -> bool {
        if self.active == 0 {
            return false;
        }
        let end = addr.saturating_add(len);
        self.regs
            .iter()
            .flatten()
            .any(|&(ba, ea)| addr < ea && ba < end)
    }

    /// Clears every register.
    pub fn clear(&mut self) {
        self.regs.iter_mut().for_each(|r| *r = None);
        self.active = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_until_capacity() {
        let mut w = WatchRegs::new(2);
        assert_eq!(w.install(0, 4), Some(0));
        assert_eq!(w.install(8, 12), Some(1));
        assert_eq!(w.install(16, 20), None); // full: the real-HW limitation
        assert_eq!(w.active_count(), 2);
    }

    #[test]
    fn unlimited_never_refuses() {
        let mut w = WatchRegs::unlimited();
        for i in 0..1000u32 {
            assert!(w.install(i * 8, i * 8 + 4).is_some());
        }
        assert_eq!(w.active_count(), 1000);
        assert_eq!(w.capacity(), None);
    }

    #[test]
    fn remove_frees_slot_for_reuse() {
        let mut w = WatchRegs::new(1);
        let s = w.install(0, 4).unwrap();
        w.remove(s);
        assert!(w.nothing_watched());
        assert_eq!(w.install(100, 104), Some(0));
    }

    #[test]
    fn remove_range_matches_exactly() {
        let mut w = WatchRegs::new(4);
        w.install(0, 4).unwrap();
        w.install(4, 8).unwrap();
        assert!(!w.remove_range(0, 8)); // no exact match
        assert!(w.remove_range(4, 8));
        assert_eq!(w.active_count(), 1);
    }

    #[test]
    fn overlap_detection() {
        let mut w = WatchRegs::new(4);
        w.install(100, 108).unwrap();
        assert!(w.store_hits(100, 4));
        assert!(w.store_hits(104, 4));
        assert!(w.store_hits(107, 1));
        assert!(w.store_hits(96, 8)); // straddles the start
        assert!(!w.store_hits(108, 4));
        assert!(!w.store_hits(96, 4));
    }

    #[test]
    fn removing_inactive_slot_is_noop() {
        let mut w = WatchRegs::new(2);
        w.remove(0);
        w.remove(99);
        assert_eq!(w.active_count(), 0);
    }

    #[test]
    #[should_panic(expected = "watch range must be non-empty")]
    fn empty_range_rejected() {
        WatchRegs::new(1).install(4, 4);
    }
}
