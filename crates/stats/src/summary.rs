//! The [`Summary`] row type mirroring one cell-group of the paper's Table 4.

use crate::descriptive::{mean, percentile_nearest_rank_sorted, trimmed_range};

/// Summary statistics of one population of relative overheads — one
/// program × approach cell of the paper's Table 4.
///
/// Fields are public because this is a passive, plain-data result record;
/// it is produced by [`Summary::from_samples`] and never mutated.
///
/// # Examples
///
/// ```
/// use databp_stats::Summary;
///
/// let mut v = vec![1.0; 20];
/// v.push(100.0); // one extreme session
/// let s = Summary::from_samples(&v);
/// assert_eq!(s.n, 21);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 100.0);
/// assert!(s.t_mean < s.mean); // the outlier is trimmed
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Minimum sample value (`0.0` when empty).
    pub min: f64,
    /// Maximum sample value (`0.0` when empty).
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Trimmed mean over samples between the 10th and 90th nearest-rank
    /// percentile values — the paper's "T-Mean".
    pub t_mean: f64,
    /// 90th nearest-rank percentile.
    pub p90: f64,
    /// 98th nearest-rank percentile.
    pub p98: f64,
}

impl Summary {
    /// Computes all Table 4 statistics for `samples`.
    ///
    /// An empty population yields the all-zero summary (and `n == 0`), which
    /// the harness renders as an absent cell.
    ///
    /// # Panics
    ///
    /// Panics if any sample is NaN.
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must not contain NaN"));
        Self::from_sorted(&sorted)
    }

    /// As [`Summary::from_samples`] but assumes `sorted` is ascending.
    ///
    /// This avoids re-sorting when the caller already holds ordered data
    /// (the harness sorts once and derives several statistics).
    pub fn from_sorted(sorted: &[f64]) -> Self {
        if sorted.is_empty() {
            return Self::default();
        }
        Summary {
            n: sorted.len(),
            min: sorted[0],
            max: sorted[sorted.len() - 1],
            mean: mean(sorted),
            t_mean: mean(trimmed_range(sorted, 10.0, 90.0)),
            p90: percentile_nearest_rank_sorted(sorted, 90.0),
            p98: percentile_nearest_rank_sorted(sorted, 98.0),
        }
    }

    /// Returns true when the population was empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_population_is_all_zero() {
        let s = Summary::from_samples(&[]);
        assert!(s.is_empty());
        assert_eq!(s, Summary::default());
    }

    #[test]
    fn singleton_population() {
        let s = Summary::from_samples(&[3.5]);
        assert_eq!(s.n, 1);
        assert_eq!(s.min, 3.5);
        assert_eq!(s.max, 3.5);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.t_mean, 3.5);
        assert_eq!(s.p90, 3.5);
        assert_eq!(s.p98, 3.5);
    }

    #[test]
    fn ordering_invariants_hold() {
        let v: Vec<f64> = (0..100).map(|i| (i * i) as f64).collect();
        let s = Summary::from_samples(&v);
        assert!(s.min <= s.t_mean);
        assert!(s.t_mean <= s.mean + 1e-12 || s.t_mean <= s.max);
        assert!(s.p90 <= s.p98);
        assert!(s.p98 <= s.max);
        assert!(s.min <= s.mean && s.mean <= s.max);
    }

    #[test]
    fn from_sorted_matches_from_samples() {
        let v = [9.0, 1.0, 5.0, 5.0, 2.0, 8.0];
        let mut sorted = v.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(Summary::from_samples(&v), Summary::from_sorted(&sorted));
    }

    #[test]
    fn t_mean_robust_to_outlier() {
        let mut v = vec![1.0; 50];
        v.push(1e9);
        let s = Summary::from_samples(&v);
        assert_eq!(s.t_mean, 1.0);
        assert!(s.mean > 1.0);
    }
}
