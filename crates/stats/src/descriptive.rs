//! Scalar descriptive statistics over `f64` samples.
//!
//! All functions treat the input as a *population* (no Bessel correction is
//! needed anywhere in the paper's tables). Functions that require order sort
//! a copy internally; callers holding already-sorted data can use the
//! `*_sorted` variants exposed through [`crate::Summary`].

/// Returns the arithmetic mean of `samples`, or `0.0` for an empty slice.
///
/// The paper's Table 4 "Mean" column is this statistic over all monitor
/// sessions of a program.
///
/// # Examples
///
/// ```
/// assert_eq!(databp_stats::mean(&[1.0, 2.0, 3.0]), 2.0);
/// assert_eq!(databp_stats::mean(&[]), 0.0);
/// ```
pub fn mean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().sum::<f64>() / samples.len() as f64
}

/// Returns the minimum of `samples`, or `0.0` for an empty slice.
///
/// # Examples
///
/// ```
/// assert_eq!(databp_stats::min(&[3.0, 1.0, 2.0]), 1.0);
/// ```
pub fn min(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        0.0
    } else {
        samples.iter().copied().fold(f64::INFINITY, f64::min)
    }
}

/// Returns the maximum of `samples`, or `0.0` for an empty slice.
///
/// # Examples
///
/// ```
/// assert_eq!(databp_stats::max(&[3.0, 1.0, 2.0]), 3.0);
/// ```
pub fn max(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        0.0
    } else {
        samples.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }
}

/// Nearest-rank percentile of `samples` for `p` in `[0, 100]`.
///
/// Uses the classic nearest-rank definition: the value at (1-based) rank
/// `ceil(p/100 * n)`, clamped to `[1, n]`. `p = 0` returns the minimum and
/// `p = 100` the maximum. This matches how small-population percentiles in
/// the paper's Table 4 (90% / 98% columns) are conventionally computed.
///
/// Returns `0.0` for an empty slice.
///
/// # Panics
///
/// Panics if `p` is not a finite number in `[0.0, 100.0]`.
///
/// # Examples
///
/// ```
/// let v = [10.0, 20.0, 30.0, 40.0, 50.0];
/// assert_eq!(databp_stats::percentile_nearest_rank(&v, 90.0), 50.0);
/// assert_eq!(databp_stats::percentile_nearest_rank(&v, 50.0), 30.0);
/// assert_eq!(databp_stats::percentile_nearest_rank(&v, 0.0), 10.0);
/// ```
pub fn percentile_nearest_rank(samples: &[f64], p: f64) -> f64 {
    assert!(
        p.is_finite() && (0.0..=100.0).contains(&p),
        "percentile must be a finite number in [0, 100], got {p}"
    );
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must not contain NaN"));
    percentile_nearest_rank_sorted(&sorted, p)
}

/// As [`percentile_nearest_rank`] but requires `sorted` to be ascending.
pub(crate) fn percentile_nearest_rank_sorted(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let n = sorted.len();
    let rank = ((p / 100.0) * n as f64).ceil() as usize;
    let rank = rank.clamp(1, n);
    sorted[rank - 1]
}

/// Returns the sub-slice of the ascending-sorted population falling between
/// the `lo_pct` and `hi_pct` nearest-rank percentile values (inclusive).
///
/// This is the population over which the paper's *T-Mean* is computed
/// ("mean of monitor sessions whose relative overhead is between the 10th
/// and 90th percentiles", Table 4 caption).
///
/// # Panics
///
/// Panics if `lo_pct > hi_pct` or either is outside `[0, 100]`.
pub fn trimmed_range(sorted: &[f64], lo_pct: f64, hi_pct: f64) -> &[f64] {
    assert!(lo_pct <= hi_pct, "lo_pct must be <= hi_pct");
    if sorted.is_empty() {
        return sorted;
    }
    let lo_val = percentile_nearest_rank_sorted(sorted, lo_pct);
    let hi_val = percentile_nearest_rank_sorted(sorted, hi_pct);
    let start = sorted.partition_point(|&x| x < lo_val);
    let end = sorted.partition_point(|&x| x <= hi_val);
    &sorted[start..end]
}

/// Trimmed mean: the mean of samples whose value lies between the `lo_pct`
/// and `hi_pct` nearest-rank percentiles (inclusive).
///
/// The paper's *T-Mean* is `trimmed_mean(samples, 10.0, 90.0)`.
///
/// Returns `0.0` for an empty slice.
///
/// # Panics
///
/// Panics if `lo_pct > hi_pct` or either is outside `[0, 100]`.
///
/// # Examples
///
/// ```
/// // An outlier at 1000 is excluded by the 10–90% trim.
/// let v = vec![1.0; 9].into_iter().chain([1000.0]).collect::<Vec<_>>();
/// assert_eq!(databp_stats::trimmed_mean(&v, 10.0, 90.0), 1.0);
/// ```
pub fn trimmed_mean(samples: &[f64], lo_pct: f64, hi_pct: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must not contain NaN"));
    mean(trimmed_range(&sorted, lo_pct, hi_pct))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn mean_of_singleton() {
        assert_eq!(mean(&[7.5]), 7.5);
    }

    #[test]
    fn min_max_basic() {
        let v = [4.0, -1.0, 9.0, 0.0];
        assert_eq!(min(&v), -1.0);
        assert_eq!(max(&v), 9.0);
    }

    #[test]
    fn min_max_empty_are_zero() {
        assert_eq!(min(&[]), 0.0);
        assert_eq!(max(&[]), 0.0);
    }

    #[test]
    fn percentile_endpoints() {
        let v = [5.0, 1.0, 3.0];
        assert_eq!(percentile_nearest_rank(&v, 0.0), 1.0);
        assert_eq!(percentile_nearest_rank(&v, 100.0), 5.0);
    }

    #[test]
    fn percentile_nearest_rank_definition() {
        // n = 10, p = 90 -> rank ceil(9.0) = 9 -> 9th smallest.
        let v: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        assert_eq!(percentile_nearest_rank(&v, 90.0), 9.0);
        // p = 98 -> rank ceil(9.8) = 10 -> maximum.
        assert_eq!(percentile_nearest_rank(&v, 98.0), 10.0);
        // p = 10 -> rank ceil(1.0) = 1 -> minimum.
        assert_eq!(percentile_nearest_rank(&v, 10.0), 1.0);
    }

    #[test]
    fn percentile_unsorted_input() {
        let v = [30.0, 10.0, 50.0, 20.0, 40.0];
        assert_eq!(percentile_nearest_rank(&v, 50.0), 30.0);
    }

    #[test]
    #[should_panic(expected = "percentile must be")]
    fn percentile_rejects_out_of_range() {
        percentile_nearest_rank(&[1.0], 101.0);
    }

    #[test]
    fn trimmed_mean_excludes_tails() {
        // 1..=10: 10th pct value = 1, 90th pct value = 9; trim keeps 1..=9
        // (inclusive of boundary values).
        let v: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        assert_eq!(trimmed_mean(&v, 10.0, 90.0), 5.0);
    }

    #[test]
    fn trimmed_mean_whole_range_equals_mean() {
        let v = [2.0, 4.0, 6.0, 8.0];
        assert_eq!(trimmed_mean(&v, 0.0, 100.0), mean(&v));
    }

    #[test]
    fn trimmed_mean_singleton() {
        assert_eq!(trimmed_mean(&[42.0], 10.0, 90.0), 42.0);
    }

    #[test]
    fn trimmed_mean_empty() {
        assert_eq!(trimmed_mean(&[], 10.0, 90.0), 0.0);
    }

    #[test]
    fn trimmed_range_all_equal_values() {
        let v = [3.0; 8];
        assert_eq!(trimmed_range(&v, 10.0, 90.0), &v[..]);
    }

    #[test]
    #[should_panic(expected = "lo_pct must be <= hi_pct")]
    fn trimmed_range_rejects_inverted_bounds() {
        trimmed_range(&[1.0], 90.0, 10.0);
    }
}
