//! Fixed-bucket linear histogram used for the harness's ASCII distribution
//! views of per-session relative overhead.

/// One bucket of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramBucket {
    /// Inclusive lower bound of the bucket.
    pub lo: f64,
    /// Exclusive upper bound (inclusive for the final bucket).
    pub hi: f64,
    /// Number of samples that fell in `[lo, hi)`.
    pub count: usize,
}

/// A linear fixed-width histogram over a closed sample range.
///
/// # Examples
///
/// ```
/// use databp_stats::Histogram;
///
/// let h = Histogram::from_samples(&[0.0, 0.5, 1.0, 9.9, 10.0], 5);
/// assert_eq!(h.total(), 5);
/// assert_eq!(h.buckets().len(), 5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    buckets: Vec<HistogramBucket>,
    total: usize,
}

impl Histogram {
    /// Builds a histogram with `nbuckets` equal-width buckets spanning
    /// `[min(samples), max(samples)]`.
    ///
    /// The final bucket is closed on both ends so the maximum sample is
    /// counted. An empty sample slice produces a histogram with zero
    /// buckets; a degenerate range (all samples equal) produces a single
    /// bucket holding everything.
    ///
    /// # Panics
    ///
    /// Panics if `nbuckets == 0` or any sample is NaN.
    pub fn from_samples(samples: &[f64], nbuckets: usize) -> Self {
        assert!(nbuckets > 0, "histogram needs at least one bucket");
        if samples.is_empty() {
            return Histogram {
                buckets: Vec::new(),
                total: 0,
            };
        }
        let lo = crate::min(samples);
        let hi = crate::max(samples);
        assert!(lo.is_finite() && hi.is_finite(), "samples must be finite");
        if lo == hi {
            return Histogram {
                buckets: vec![HistogramBucket {
                    lo,
                    hi,
                    count: samples.len(),
                }],
                total: samples.len(),
            };
        }
        let width = (hi - lo) / nbuckets as f64;
        let mut buckets: Vec<HistogramBucket> = (0..nbuckets)
            .map(|i| HistogramBucket {
                lo: lo + width * i as f64,
                hi: lo + width * (i + 1) as f64,
                count: 0,
            })
            .collect();
        for &s in samples {
            let idx = (((s - lo) / width) as usize).min(nbuckets - 1);
            buckets[idx].count += 1;
        }
        Histogram {
            buckets,
            total: samples.len(),
        }
    }

    /// The buckets, in ascending range order.
    pub fn buckets(&self) -> &[HistogramBucket] {
        &self.buckets
    }

    /// Total number of samples counted.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Renders a simple ASCII bar chart, one line per bucket, scaling the
    /// widest bar to `width` characters.
    pub fn render_ascii(&self, width: usize) -> String {
        let maxc = self.buckets.iter().map(|b| b.count).max().unwrap_or(0);
        let mut out = String::new();
        for b in &self.buckets {
            let bar = (b.count * width).checked_div(maxc).unwrap_or(0);
            out.push_str(&format!(
                "[{:>10.2}, {:>10.2}) {:>8} |{}\n",
                b.lo,
                b.hi,
                b.count,
                "#".repeat(bar)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_every_sample_including_max() {
        let v: Vec<f64> = (0..=100).map(|i| i as f64).collect();
        let h = Histogram::from_samples(&v, 10);
        assert_eq!(h.total(), 101);
        assert_eq!(h.buckets().iter().map(|b| b.count).sum::<usize>(), 101);
    }

    #[test]
    fn degenerate_range_single_bucket() {
        let h = Histogram::from_samples(&[2.0, 2.0, 2.0], 8);
        assert_eq!(h.buckets().len(), 1);
        assert_eq!(h.buckets()[0].count, 3);
    }

    #[test]
    fn empty_samples_empty_histogram() {
        let h = Histogram::from_samples(&[], 4);
        assert_eq!(h.total(), 0);
        assert!(h.buckets().is_empty());
    }

    #[test]
    fn ascii_render_has_one_line_per_bucket() {
        let v = [0.0, 1.0, 2.0, 3.0];
        let h = Histogram::from_samples(&v, 4);
        let text = h.render_ascii(20);
        assert_eq!(text.lines().count(), 4);
        assert!(text.contains('#'));
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_buckets_rejected() {
        Histogram::from_samples(&[1.0], 0);
    }
}
