//! Property-based tests for the statistics primitives.

use crate::{max, mean, min, percentile_nearest_rank, trimmed_mean, Histogram, Summary};
use proptest::prelude::*;

fn finite_samples() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e9_f64..1e9, 1..200)
}

proptest! {
    #[test]
    fn mean_between_min_and_max(v in finite_samples()) {
        let m = mean(&v);
        prop_assert!(min(&v) - 1e-6 <= m && m <= max(&v) + 1e-6);
    }

    #[test]
    fn percentile_monotone_in_p(v in finite_samples(), a in 0.0..100.0f64, b in 0.0..100.0f64) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(percentile_nearest_rank(&v, lo) <= percentile_nearest_rank(&v, hi));
    }

    #[test]
    fn percentile_is_a_sample(v in finite_samples(), p in 0.0..100.0f64) {
        let q = percentile_nearest_rank(&v, p);
        prop_assert!(v.contains(&q));
    }

    #[test]
    fn trimmed_mean_bounded_by_extremes(v in finite_samples()) {
        let t = trimmed_mean(&v, 10.0, 90.0);
        prop_assert!(min(&v) - 1e-6 <= t && t <= max(&v) + 1e-6);
    }

    #[test]
    fn summary_consistent_with_primitives(v in finite_samples()) {
        let s = Summary::from_samples(&v);
        prop_assert_eq!(s.n, v.len());
        prop_assert_eq!(s.min, min(&v));
        prop_assert_eq!(s.max, max(&v));
        // Summation order differs (sorted vs. unsorted), so compare
        // means approximately.
        prop_assert!((s.mean - mean(&v)).abs() <= 1e-6 * (1.0 + s.mean.abs()));
        prop_assert!(
            (s.t_mean - trimmed_mean(&v, 10.0, 90.0)).abs() <= 1e-6 * (1.0 + s.t_mean.abs())
        );
        prop_assert_eq!(s.p90, percentile_nearest_rank(&v, 90.0));
        prop_assert_eq!(s.p98, percentile_nearest_rank(&v, 98.0));
    }

    #[test]
    fn histogram_conserves_samples(v in finite_samples(), nb in 1usize..32) {
        let h = Histogram::from_samples(&v, nb);
        prop_assert_eq!(h.total(), v.len());
        prop_assert_eq!(h.buckets().iter().map(|b| b.count).sum::<usize>(), v.len());
    }

    #[test]
    fn translation_shifts_mean(v in finite_samples(), c in -1e6_f64..1e6) {
        let shifted: Vec<f64> = v.iter().map(|x| x + c).collect();
        prop_assert!((mean(&shifted) - (mean(&v) + c)).abs() < 1e-3);
    }
}
