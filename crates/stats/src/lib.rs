//! Descriptive statistics for the databp experiment harness.
//!
//! The paper ("Efficient Data Breakpoints", Wahbe, ASPLOS 1992) reports, for
//! every benchmark program and every write-monitor-service strategy, the
//! following statistics over the per-session *relative overhead* population
//! (Table 4):
//!
//! * minimum and maximum,
//! * the mean,
//! * the *T-Mean* — the mean of sessions whose relative overhead falls
//!   between the 10th and 90th percentiles,
//! * the 90th and 98th percentiles.
//!
//! This crate provides exactly those primitives plus a small fixed-bucket
//! histogram used by the harness's ASCII figures. All functions operate on
//! `f64` samples and are deterministic.
//!
//! # Examples
//!
//! ```
//! use databp_stats::Summary;
//!
//! let samples = vec![1.0, 2.0, 3.0, 4.0, 100.0];
//! let s = Summary::from_samples(&samples);
//! assert_eq!(s.min, 1.0);
//! assert_eq!(s.max, 100.0);
//! assert_eq!(s.n, 5);
//! ```

mod descriptive;
mod histogram;
mod summary;

pub use descriptive::{max, mean, min, percentile_nearest_rank, trimmed_mean, trimmed_range};
pub use histogram::{Histogram, HistogramBucket};
pub use summary::Summary;

#[cfg(test)]
mod proptests;
