//! Counting variables (Figure 2 and the per-strategy extensions).

use std::ops::{Add, AddAssign};

/// Counting variables for one monitor session, produced either by the
/// phase-2 trace simulator or by an executable strategy run.
///
/// `vm_protect`, `vm_unprotect`, and `vm_active_page_miss` are
/// page-size-dependent (the paper reports them for both 4 KiB and 8 KiB);
/// the other fields are page-size-independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Counts {
    /// `InstallMonitorσ` — write monitors installed.
    pub install: u64,
    /// `RemoveMonitorσ` — write monitors removed.
    pub remove: u64,
    /// `MonitorHitσ` — writes that hit an active monitor.
    pub hit: u64,
    /// `MonitorMissσ` — checked writes that hit nothing.
    pub miss: u64,
    /// `VMProtectσ` — page transitions from zero to one active monitors.
    pub vm_protect: u64,
    /// `VMUnprotectσ` — page transitions from one to zero active monitors.
    pub vm_unprotect: u64,
    /// `VMActivePageMissσ` — monitor misses that wrote a page holding an
    /// active monitor.
    pub vm_active_page_miss: u64,
}

impl Counts {
    /// Total checked writes (`hit + miss`).
    pub fn writes(&self) -> u64 {
        self.hit + self.miss
    }
}

impl Add for Counts {
    type Output = Counts;

    fn add(self, o: Counts) -> Counts {
        Counts {
            install: self.install + o.install,
            remove: self.remove + o.remove,
            hit: self.hit + o.hit,
            miss: self.miss + o.miss,
            vm_protect: self.vm_protect + o.vm_protect,
            vm_unprotect: self.vm_unprotect + o.vm_unprotect,
            vm_active_page_miss: self.vm_active_page_miss + o.vm_active_page_miss,
        }
    }
}

impl AddAssign for Counts {
    fn add_assign(&mut self, o: Counts) {
        *self = *self + o;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_sums_hits_and_misses() {
        let c = Counts {
            hit: 3,
            miss: 7,
            ..Counts::default()
        };
        assert_eq!(c.writes(), 10);
    }

    #[test]
    fn addition_is_fieldwise() {
        let a = Counts {
            install: 1,
            remove: 2,
            hit: 3,
            miss: 4,
            vm_protect: 5,
            vm_unprotect: 6,
            vm_active_page_miss: 7,
        };
        let mut b = a;
        b += a;
        assert_eq!(b, a + a);
        assert_eq!(b.install, 2);
        assert_eq!(b.vm_active_page_miss, 14);
    }
}
