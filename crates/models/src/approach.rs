//! The four strategies under study.

use std::fmt;

/// A write-monitor-service implementation strategy (Section 3). Page size
/// for VirtualMemory is carried in the variant because the paper reports
/// VM-4K and VM-8K as separate columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Approach {
    /// NativeHardware — monitor registers in the processor.
    Nh,
    /// VirtualMemory with 4 KiB pages.
    Vm4k,
    /// VirtualMemory with 8 KiB pages.
    Vm8k,
    /// TrapPatch — every write instruction replaced by a trap.
    Tp,
    /// CodePatch — every write instruction preceded by an inline check.
    Cp,
}

impl Approach {
    /// All approaches in the paper's Table 4 column order.
    pub const ALL: [Approach; 5] = [
        Approach::Nh,
        Approach::Vm4k,
        Approach::Vm8k,
        Approach::Tp,
        Approach::Cp,
    ];

    /// The paper's column abbreviation.
    pub fn abbrev(self) -> &'static str {
        match self {
            Approach::Nh => "NH",
            Approach::Vm4k => "VM-4K",
            Approach::Vm8k => "VM-8K",
            Approach::Tp => "TP",
            Approach::Cp => "CP",
        }
    }

    /// True for either VirtualMemory variant.
    pub fn is_vm(self) -> bool {
        matches!(self, Approach::Vm4k | Approach::Vm8k)
    }
}

impl fmt::Display for Approach {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbrev())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abbreviations_match_table_4() {
        let names: Vec<&str> = Approach::ALL.iter().map(|a| a.abbrev()).collect();
        assert_eq!(names, ["NH", "VM-4K", "VM-8K", "TP", "CP"]);
    }

    #[test]
    fn vm_classification() {
        assert!(Approach::Vm4k.is_vm());
        assert!(Approach::Vm8k.is_vm());
        assert!(!Approach::Cp.is_vm());
    }
}
