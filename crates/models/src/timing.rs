//! Timing variables (Table 2).

use std::fmt;

/// Names of the timed primitives, for breakdown reporting (the Section 8
/// "where the time was spent" analysis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimingVar {
    /// Update the address→monitor mapping (install or remove).
    SoftwareUpdate,
    /// Check whether an address range intersects an active monitor.
    SoftwareLookup,
    /// Deliver a user-level monitor-register fault and continue.
    NhFaultHandler,
    /// Deliver a user-level write fault, emulate, and continue.
    VmFaultHandler,
    /// `mprotect` a page read-only.
    VmProtect,
    /// `mprotect` a page read-write.
    VmUnprotect,
    /// Deliver a user-level trap fault, emulate, and continue.
    TpFaultHandler,
}

impl fmt::Display for TimingVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            TimingVar::SoftwareUpdate => "SoftwareUpdate",
            TimingVar::SoftwareLookup => "SoftwareLookup",
            TimingVar::NhFaultHandler => "NHFaultHandler",
            TimingVar::VmFaultHandler => "VMFaultHandler",
            TimingVar::VmProtect => "VMProtect",
            TimingVar::VmUnprotect => "VMUnprotect",
            TimingVar::TpFaultHandler => "TPFaultHandler",
        };
        f.write_str(name)
    }
}

/// The timed primitive costs, in microseconds.
///
/// [`TimingVars::default`] returns the paper's Table 2 values, measured
/// on an unloaded 40 MHz SPARCstation 2 running SunOS 4.1.1. Override
/// individual fields to model other platforms; the harness's `table2`
/// experiment re-derives them from microbenchmarks against the simulated
/// machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingVars {
    /// `SoftwareUpdateτ` (µs).
    pub software_update_us: f64,
    /// `SoftwareLookupτ` (µs).
    pub software_lookup_us: f64,
    /// `NHFaultHandlerτ` (µs).
    pub nh_fault_us: f64,
    /// `VMFaultHandlerτ` (µs).
    pub vm_fault_us: f64,
    /// `VMProtectτ` (µs).
    pub vm_protect_us: f64,
    /// `VMUnprotectτ` (µs).
    pub vm_unprotect_us: f64,
    /// `TPFaultHandlerτ` (µs).
    pub tp_fault_us: f64,
}

impl Default for TimingVars {
    /// The paper's Table 2.
    fn default() -> Self {
        TimingVars {
            software_update_us: 22.0,
            software_lookup_us: 2.75,
            nh_fault_us: 131.0,
            vm_fault_us: 561.0,
            vm_protect_us: 80.0,
            vm_unprotect_us: 299.0,
            tp_fault_us: 102.0,
        }
    }
}

impl TimingVars {
    /// The value of one timing variable, in microseconds.
    pub fn get(&self, var: TimingVar) -> f64 {
        match var {
            TimingVar::SoftwareUpdate => self.software_update_us,
            TimingVar::SoftwareLookup => self.software_lookup_us,
            TimingVar::NhFaultHandler => self.nh_fault_us,
            TimingVar::VmFaultHandler => self.vm_fault_us,
            TimingVar::VmProtect => self.vm_protect_us,
            TimingVar::VmUnprotect => self.vm_unprotect_us,
            TimingVar::TpFaultHandler => self.tp_fault_us,
        }
    }

    /// All variables with their values, in Table 2 order.
    pub fn entries(&self) -> [(TimingVar, f64); 7] {
        [
            (TimingVar::SoftwareUpdate, self.software_update_us),
            (TimingVar::SoftwareLookup, self.software_lookup_us),
            (TimingVar::NhFaultHandler, self.nh_fault_us),
            (TimingVar::VmFaultHandler, self.vm_fault_us),
            (TimingVar::VmProtect, self.vm_protect_us),
            (TimingVar::VmUnprotect, self.vm_unprotect_us),
            (TimingVar::TpFaultHandler, self.tp_fault_us),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_2() {
        let t = TimingVars::default();
        assert_eq!(t.software_update_us, 22.0);
        assert_eq!(t.software_lookup_us, 2.75);
        assert_eq!(t.nh_fault_us, 131.0);
        assert_eq!(t.vm_fault_us, 561.0);
        assert_eq!(t.vm_protect_us, 80.0);
        assert_eq!(t.vm_unprotect_us, 299.0);
        assert_eq!(t.tp_fault_us, 102.0);
    }

    #[test]
    fn get_matches_entries() {
        let t = TimingVars::default();
        for (var, v) in t.entries() {
            assert_eq!(t.get(var), v);
        }
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(TimingVar::NhFaultHandler.to_string(), "NHFaultHandler");
        assert_eq!(TimingVar::SoftwareLookup.to_string(), "SoftwareLookup");
    }
}
