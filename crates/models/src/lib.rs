//! Analytical cost models — Section 7 of the paper.
//!
//! Each write-monitor-service strategy is modeled by equations that
//! combine *counting variables* (how often each primitive ran during a
//! monitor session — [`Counts`]) with *timing variables* (what each
//! primitive costs — [`TimingVars`], whose defaults are the paper's
//! Table 2 measurements on a 40 MHz SPARCstation 2 under SunOS 4.1.1).
//!
//! The models are transcribed from the paper's Figures 3–6:
//!
//! ```text
//! NativeHardware (Fig. 3):
//!   MonitorHitov     = MonitorHitσ · NHFaultHandlerτ
//!   (everything else zero)
//!
//! VirtualMemory (Fig. 4):
//!   MonitorHitov     = MonitorHitσ · (VMFaultHandlerτ + SoftwareLookupτ)
//!   MonitorMissov    = VMActivePageMissσ · (VMFaultHandlerτ + SoftwareLookupτ)
//!   InstallMonitorov = InstallMonitorσ · (VMUnprotectτ + SoftwareUpdateτ + VMProtectτ)
//!                      + VMProtectσ · VMProtectτ
//!   RemoveMonitorov  = RemoveMonitorσ · (VMUnprotectτ + SoftwareUpdateτ + VMProtectτ)
//!                      + VMUnprotectσ · VMUnprotectτ
//!
//! TrapPatch (Fig. 5):
//!   MonitorHitov     = MonitorHitσ · (TPFaultHandlerτ + SoftwareLookupτ)
//!   MonitorMissov    = MonitorMissσ · (TPFaultHandlerτ + SoftwareLookupτ)
//!   Install/Remove   = countσ · SoftwareUpdateτ
//!
//! CodePatch (Fig. 6):
//!   MonitorHitov     = MonitorHitσ · SoftwareLookupτ
//!   MonitorMissov    = MonitorMissσ · SoftwareLookupτ
//!   Install/Remove   = countσ · SoftwareUpdateτ
//! ```
//!
//! The module also provides the Section 8 auxiliary results: per-timing-
//! variable overhead breakdown, the CodePatch static code-expansion
//! estimate, and the Section 9 loop-invariant-check adjustment.

mod approach;
mod counts;
mod equations;
mod expansion;
mod timing;

pub use approach::Approach;
pub use counts::Counts;
pub use equations::{
    cp_loopopt_overhead, cp_ssaopt_overhead, cp_staticopt_overhead, overhead, Overhead,
};
pub use expansion::code_expansion;
pub use timing::{TimingVar, TimingVars};
