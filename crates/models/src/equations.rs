//! The overhead equations of Figures 3–6, with per-term attribution.

use crate::approach::Approach;
use crate::counts::Counts;
use crate::timing::{TimingVar, TimingVars};

/// The modeled overhead of one monitor session under one approach, broken
/// down by timing variable (the paper's Section 8 "where the time was
/// spent" analysis).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Overhead {
    terms: Vec<(TimingVar, f64)>,
}

impl Overhead {
    /// Adds `us` microseconds attributed to `var` (used by the analytical
    /// equations and by the executable strategies, which charge costs as
    /// they go).
    pub fn add(&mut self, var: TimingVar, us: f64) {
        if us == 0.0 {
            return;
        }
        match self.terms.iter_mut().find(|(v, _)| *v == var) {
            Some((_, acc)) => *acc += us,
            None => self.terms.push((var, us)),
        }
    }

    /// Total overhead in microseconds.
    pub fn total_us(&self) -> f64 {
        self.terms.iter().map(|(_, us)| us).sum()
    }

    /// Overhead attributed to each timing variable, in microseconds.
    pub fn terms(&self) -> &[(TimingVar, f64)] {
        &self.terms
    }

    /// Fraction (0–1) of the total attributed to `var`.
    pub fn fraction(&self, var: TimingVar) -> f64 {
        let total = self.total_us();
        if total == 0.0 {
            return 0.0;
        }
        self.terms
            .iter()
            .find(|(v, _)| *v == var)
            .map_or(0.0, |(_, us)| us / total)
    }

    /// Relative overhead: modeled overhead normalized to the base
    /// execution time.
    ///
    /// # Panics
    ///
    /// Panics if `base_us` is not positive.
    pub fn relative(&self, base_us: f64) -> f64 {
        assert!(base_us > 0.0, "base execution time must be positive");
        self.total_us() / base_us
    }
}

/// Evaluates the analytical model for `approach` on one session's
/// counting variables.
///
/// The caller is responsible for passing counts measured at the matching
/// page size for [`Approach::Vm4k`] / [`Approach::Vm8k`]; the equations
/// themselves are identical for the two.
pub fn overhead(approach: Approach, c: &Counts, t: &TimingVars) -> Overhead {
    let mut ov = Overhead::default();
    match approach {
        // Figure 3.
        Approach::Nh => {
            ov.add(TimingVar::NhFaultHandler, c.hit as f64 * t.nh_fault_us);
        }
        // Figure 4.
        Approach::Vm4k | Approach::Vm8k => {
            let faults = (c.hit + c.vm_active_page_miss) as f64;
            ov.add(TimingVar::VmFaultHandler, faults * t.vm_fault_us);
            ov.add(TimingVar::SoftwareLookup, faults * t.software_lookup_us);
            let churn = (c.install + c.remove) as f64;
            ov.add(
                TimingVar::VmUnprotect,
                churn * t.vm_unprotect_us + c.vm_unprotect as f64 * t.vm_unprotect_us,
            );
            ov.add(
                TimingVar::VmProtect,
                churn * t.vm_protect_us + c.vm_protect as f64 * t.vm_protect_us,
            );
            ov.add(TimingVar::SoftwareUpdate, churn * t.software_update_us);
        }
        // Figure 5.
        Approach::Tp => {
            let checked = c.writes() as f64;
            ov.add(TimingVar::TpFaultHandler, checked * t.tp_fault_us);
            ov.add(TimingVar::SoftwareLookup, checked * t.software_lookup_us);
            ov.add(
                TimingVar::SoftwareUpdate,
                (c.install + c.remove) as f64 * t.software_update_us,
            );
        }
        // Figure 6.
        Approach::Cp => {
            ov.add(
                TimingVar::SoftwareLookup,
                c.writes() as f64 * t.software_lookup_us,
            );
            ov.add(
                TimingVar::SoftwareUpdate,
                (c.install + c.remove) as f64 * t.software_update_us,
            );
        }
    }
    ov
}

/// Section 9's loop-invariant preliminary-check adjustment to CodePatch.
///
/// `skipped_checks` is the number of dynamic body checks whose lookup was
/// elided because the loop's preliminary check missed;
/// `preheader_checks` is the number of preliminary checks executed. The
/// adjusted model charges `SoftwareLookup` only for the checks that
/// actually ran.
///
/// # Panics
///
/// Panics if `skipped_checks` exceeds the session's total checked writes.
pub fn cp_loopopt_overhead(
    c: &Counts,
    skipped_checks: u64,
    preheader_checks: u64,
    t: &TimingVars,
) -> Overhead {
    assert!(
        skipped_checks <= c.writes(),
        "cannot skip more checks than writes ({skipped_checks} > {})",
        c.writes()
    );
    let mut ov = Overhead::default();
    let lookups = c.writes() - skipped_checks + preheader_checks;
    ov.add(
        TimingVar::SoftwareLookup,
        lookups as f64 * t.software_lookup_us,
    );
    ov.add(
        TimingVar::SoftwareUpdate,
        (c.install + c.remove) as f64 * t.software_update_us,
    );
    ov
}

/// The static write-safety adjustment to CodePatch: checks the analysis
/// proved unable to hit the plan's regions pay no `SoftwareLookup`.
/// Structurally the Section 9 model with the elided sites as the skipped
/// checks and no preliminary checks (the proof is free at run time).
///
/// # Panics
///
/// Panics if `elided_checks` exceeds the session's total checked writes.
pub fn cp_staticopt_overhead(c: &Counts, elided_checks: u64, t: &TimingVars) -> Overhead {
    cp_loopopt_overhead(c, elided_checks, 0, t)
}

/// The combined SSA-optimizer adjustment to CodePatch: statically elided
/// checks (`elided_checks`) and dominator-hoisted body checks whose
/// preheader guard missed (`hoisted_checks`) both pay no
/// `SoftwareLookup`; the `preheader_checks` guards themselves do.
/// Structurally the Section 9 model with both skip classes pooled.
///
/// # Panics
///
/// Panics if the skipped checks exceed the session's total checked
/// writes.
pub fn cp_ssaopt_overhead(
    c: &Counts,
    elided_checks: u64,
    hoisted_checks: u64,
    preheader_checks: u64,
    t: &TimingVars,
) -> Overhead {
    cp_loopopt_overhead(c, elided_checks + hoisted_checks, preheader_checks, t)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_counts() -> Counts {
        Counts {
            install: 10,
            remove: 10,
            hit: 100,
            miss: 10_000,
            vm_protect: 8,
            vm_unprotect: 8,
            vm_active_page_miss: 500,
        }
    }

    #[test]
    fn nh_counts_only_hits() {
        let t = TimingVars::default();
        let ov = overhead(Approach::Nh, &sample_counts(), &t);
        assert_eq!(ov.total_us(), 100.0 * 131.0);
        assert_eq!(ov.fraction(TimingVar::NhFaultHandler), 1.0);
    }

    #[test]
    fn vm_equation_matches_figure_4() {
        let t = TimingVars::default();
        let c = sample_counts();
        let ov = overhead(Approach::Vm4k, &c, &t);
        let expected = (100.0 + 500.0) * (561.0 + 2.75)
            + 10.0 * (299.0 + 22.0 + 80.0)
            + 8.0 * 80.0
            + 10.0 * (299.0 + 22.0 + 80.0)
            + 8.0 * 299.0;
        assert!(
            (ov.total_us() - expected).abs() < 1e-9,
            "{} vs {expected}",
            ov.total_us()
        );
        // Identical equations for 8K (counts differ in practice).
        assert_eq!(overhead(Approach::Vm8k, &c, &t).total_us(), ov.total_us());
    }

    #[test]
    fn tp_equation_matches_figure_5() {
        let t = TimingVars::default();
        let c = sample_counts();
        let ov = overhead(Approach::Tp, &c, &t);
        let expected = 10_100.0 * (102.0 + 2.75) + 20.0 * 22.0;
        assert!((ov.total_us() - expected).abs() < 1e-9);
    }

    #[test]
    fn cp_equation_matches_figure_6() {
        let t = TimingVars::default();
        let c = sample_counts();
        let ov = overhead(Approach::Cp, &c, &t);
        let expected = 10_100.0 * 2.75 + 20.0 * 22.0;
        assert!((ov.total_us() - expected).abs() < 1e-9);
    }

    #[test]
    fn breakdown_fractions_sum_to_one() {
        let t = TimingVars::default();
        for a in Approach::ALL {
            let ov = overhead(a, &sample_counts(), &t);
            let sum: f64 = ov.terms().iter().map(|(v, _)| ov.fraction(*v)).sum();
            assert!((sum - 1.0).abs() < 1e-9, "{a}: fractions sum to {sum}");
        }
    }

    #[test]
    fn tp_dominated_by_fault_handler() {
        // Section 8: "TPFaultHandler consistently accounted for 97% of
        // the overhead". With Table 2 values, 102/(102+2.75) ≈ 0.9737.
        let t = TimingVars::default();
        let c = Counts {
            hit: 0,
            miss: 1_000_000,
            ..Counts::default()
        };
        let ov = overhead(Approach::Tp, &c, &t);
        let f = ov.fraction(TimingVar::TpFaultHandler);
        assert!((f - 102.0 / 104.75).abs() < 1e-6, "{f}");
    }

    #[test]
    fn relative_overhead_normalizes() {
        let t = TimingVars::default();
        let ov = overhead(Approach::Nh, &sample_counts(), &t);
        assert!((ov.relative(13_100.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "base execution time must be positive")]
    fn relative_rejects_zero_base() {
        overhead(Approach::Nh, &sample_counts(), &TimingVars::default()).relative(0.0);
    }

    #[test]
    fn loopopt_reduces_cp_lookup_cost() {
        let t = TimingVars::default();
        let c = sample_counts();
        let plain = overhead(Approach::Cp, &c, &t);
        // Half the checked writes elided, a few hundred preheader checks.
        let opt = cp_loopopt_overhead(&c, c.writes() / 2, 300, &t);
        assert!(opt.total_us() < plain.total_us());
        // No skipping at all + zero preheaders = identical to plain CP.
        let same = cp_loopopt_overhead(&c, 0, 0, &t);
        assert!((same.total_us() - plain.total_us()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "cannot skip more checks")]
    fn loopopt_rejects_overskip() {
        cp_loopopt_overhead(&sample_counts(), u64::MAX, 0, &TimingVars::default());
    }

    #[test]
    fn staticopt_charges_only_surviving_checks() {
        let t = TimingVars::default();
        let c = sample_counts();
        let plain = overhead(Approach::Cp, &c, &t);
        let opt = cp_staticopt_overhead(&c, 1_000, &t);
        let saved = 1_000.0 * t.software_lookup_us;
        assert!((plain.total_us() - opt.total_us() - saved).abs() < 1e-9);
        // Nothing elided = plain CodePatch.
        let same = cp_staticopt_overhead(&c, 0, &t);
        assert!((same.total_us() - plain.total_us()).abs() < 1e-9);
    }

    #[test]
    fn ssaopt_pools_both_skip_classes() {
        let t = TimingVars::default();
        let c = sample_counts();
        let combined = cp_ssaopt_overhead(&c, 700, 300, 40, &t);
        let pooled = cp_loopopt_overhead(&c, 1_000, 40, &t);
        assert!((combined.total_us() - pooled.total_us()).abs() < 1e-9);
        // Degenerate cases collapse to the narrower models.
        let static_only = cp_ssaopt_overhead(&c, 700, 0, 0, &t);
        assert!(
            (static_only.total_us() - cp_staticopt_overhead(&c, 700, &t).total_us()).abs() < 1e-9
        );
        let none = cp_ssaopt_overhead(&c, 0, 0, 0, &t);
        assert!((none.total_us() - overhead(Approach::Cp, &c, &t).total_us()).abs() < 1e-9);
    }

    #[test]
    fn zero_counts_zero_overhead() {
        let t = TimingVars::default();
        for a in Approach::ALL {
            assert_eq!(overhead(a, &Counts::default(), &t).total_us(), 0.0);
        }
    }
}
