//! CodePatch static space overhead (Section 8's final note).
//!
//! "For each write instruction, CodePatch must insert a call to a WMS
//! routine responsible for detecting monitor hits. For the SPARC
//! architecture this requires a minimum of two additional instructions.
//! … we estimated the code expansion … between 12% and 15%."

/// Number of instruction words CodePatch inserts per write instruction
/// (the paper's SPARC minimum; our `chk` pseudo-instruction is costed as
/// the same two words).
pub const WORDS_PER_CHECK: u32 = 2;

/// Estimates CodePatch code expansion as a fraction: inserted words over
/// original words.
///
/// `traced_stores` is the static count of write instructions that get a
/// check; `code_words` is the size of the *uninstrumented* program in
/// instruction words.
///
/// # Panics
///
/// Panics if `code_words` is zero.
///
/// # Examples
///
/// ```
/// // 6.5% of instructions are stores -> 13% expansion at 2 words/check.
/// let e = databp_models::code_expansion(65, 1000);
/// assert!((e - 0.13).abs() < 1e-12);
/// ```
pub fn code_expansion(traced_stores: u32, code_words: u32) -> f64 {
    assert!(code_words > 0, "program has no instructions");
    (traced_stores * WORDS_PER_CHECK) as f64 / code_words as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_band_examples() {
        // The paper's 12–15% band corresponds to 6–7.5% static write
        // fraction at two words per check.
        assert!((code_expansion(60, 1000) - 0.12).abs() < 1e-12);
        assert!((code_expansion(75, 1000) - 0.15).abs() < 1e-12);
    }

    #[test]
    fn zero_stores_zero_expansion() {
        assert_eq!(code_expansion(0, 100), 0.0);
    }

    #[test]
    #[should_panic(expected = "no instructions")]
    fn empty_program_rejected() {
        code_expansion(1, 0);
    }
}
