//! **databp** — a reproduction of *Efficient Data Breakpoints*
//! (Robert Wahbe, ASPLOS V, 1992) as a Rust workspace.
//!
//! The paper asks how a debugger should implement *data breakpoints*
//! (watchpoints): the write-monitor service underneath must observe every
//! store that could touch a monitored object. Four strategies are
//! compared — hardware watch registers, page protection, trap patching,
//! and code patching — by trace-driven simulation over five C programs,
//! and code patching wins on practicality.
//!
//! This crate re-exports the whole workspace:
//!
//! * [`machine`] — the simulated 32-bit RISC machine (MMU, watchpoint
//!   registers, traps, cycle accounting);
//! * [`tinyc`] — a C-subset compiler targeting it (plus a reference
//!   interpreter used as a differential oracle);
//! * [`trace`] — the program event trace (phase 1);
//! * [`core`] — the write monitor service itself: the Appendix A.5
//!   page-bitmap index and all four executable strategies;
//! * [`sessions`] — the five monitor-session types and their enumeration;
//! * [`sim`] — the one-pass phase-2 counting simulator;
//! * [`models`] — the analytical cost models (Figures 3–6, Table 2);
//! * [`workloads`] — the five synthetic benchmark programs;
//! * [`harness`] — regenerates every table and figure (`repro` binary);
//! * [`stats`] — the descriptive statistics of Table 4;
//! * [`telemetry`] — the opt-in metrics substrate (counters, gauges,
//!   histograms, span timers) threaded through all of the above.
//!
//! # Quickstart
//!
//! ```
//! use databp::core::{CodePatch, RangePlan};
//! use databp::machine::Machine;
//! use databp::tinyc::{compile, Options};
//!
//! // A program with a global counter...
//! let src = "int hits; int main() { int i; for (i = 0; i < 5; i = i + 1) hits = hits + 1; return hits; }";
//! let compiled = compile(src, &Options::codepatch()).expect("compiles");
//!
//! // ...watched by the paper's recommended strategy, CodePatch.
//! let mut m = Machine::new();
//! m.load(&compiled.program);
//! let plan = RangePlan { globals: vec![0], ..RangePlan::default() };
//! let report = CodePatch::default()
//!     .run(&mut m, &compiled.debug, &plan, 1_000_000)
//!     .expect("runs");
//! assert_eq!(report.notification_count, 5); // one per write to `hits`
//! ```

pub use databp_core as core;
pub use databp_harness as harness;
pub use databp_machine as machine;
pub use databp_models as models;
pub use databp_server as server;
pub use databp_sessions as sessions;
pub use databp_sim as sim;
pub use databp_stats as stats;
pub use databp_telemetry as telemetry;
pub use databp_tinyc as tinyc;
pub use databp_trace as trace;
pub use databp_workloads as workloads;
